"""Element matchers: localized and structural similarity between schema elements.

The paper's architecture (Fig. 2) compares every personal-schema element with
every repository element using one or more *element matchers*, each producing a
similarity index in ``[0, 1]``; the indexes are combined (e.g. by weighted
average) and element pairs with a sufficiently high combined index become
*mapping elements*.

Bellflower itself uses a single name matcher based on the commercial
``CompareStringFuzzy`` routine; this package provides an open reimplementation
(:func:`~repro.matchers.string_metrics.fuzzy_similarity`, a normalized
Damerau–Levenshtein similarity over the same edit operations) plus the other
matcher families the paper's survey of related systems describes, so the full
Fig. 2 architecture is available: token/synonym name matching (COMA-style),
data-type compatibility, and structural context matching (Cupid-style).
"""

from repro.matchers.base import BatchElementMatcher, ElementMatcher, MatchContext
from repro.matchers.combiner import AverageCombiner, MatcherCombination, MaxCombiner, WeightedCombiner
from repro.matchers.datatype import DataTypeMatcher
from repro.matchers.index import LRUMemo, RepositoryNameIndex
from repro.matchers.name import FuzzyNameMatcher, NGramNameMatcher, TokenNameMatcher
from repro.matchers.selection import MappingElement, MappingElementSelector, MappingElementSets
from repro.matchers.string_metrics import (
    bounded_damerau_levenshtein,
    damerau_levenshtein_distance,
    fuzzy_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    ngram_similarity,
)
from repro.matchers.structure import StructuralContextMatcher
from repro.matchers.synonyms import SynonymDictionary, default_synonyms
from repro.matchers.tokenize import expand_abbreviations, normalize_name, tokenize_name

__all__ = [
    "AverageCombiner",
    "BatchElementMatcher",
    "DataTypeMatcher",
    "ElementMatcher",
    "FuzzyNameMatcher",
    "LRUMemo",
    "MappingElement",
    "MappingElementSelector",
    "MappingElementSets",
    "MatchContext",
    "MatcherCombination",
    "MaxCombiner",
    "NGramNameMatcher",
    "RepositoryNameIndex",
    "StructuralContextMatcher",
    "SynonymDictionary",
    "TokenNameMatcher",
    "WeightedCombiner",
    "bounded_damerau_levenshtein",
    "damerau_levenshtein_distance",
    "default_synonyms",
    "expand_abbreviations",
    "fuzzy_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "ngram_similarity",
    "normalize_name",
    "tokenize_name",
]

"""Element-name tokenization and normalization.

Schema element names harvested from the web mix naming conventions:
``authorName``, ``author_name``, ``AUTHOR-NAME``, ``authname``.  The token
matcher and the synonym dictionary operate on normalized token lists so that
these spellings compare as equal or near-equal.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_NON_ALNUM = re.compile(r"[^0-9a-zA-Z]+")
_DIGIT_BOUNDARY = re.compile(r"(?<=[a-zA-Z])(?=\d)|(?<=\d)(?=[a-zA-Z])")

#: Common abbreviations seen in real-world schema element names.  The table is
#: intentionally small and conservative; it can be extended per deployment.
DEFAULT_ABBREVIATIONS: Dict[str, str] = {
    "addr": "address",
    "amt": "amount",
    "auth": "author",
    "cat": "category",
    "cfg": "configuration",
    "cnt": "count",
    "cust": "customer",
    "desc": "description",
    "dept": "department",
    "dob": "birthdate",
    "doc": "document",
    "emp": "employee",
    "fname": "firstname",
    "id": "identifier",
    "img": "image",
    "info": "information",
    "lang": "language",
    "lname": "lastname",
    "loc": "location",
    "msg": "message",
    "no": "number",
    "num": "number",
    "org": "organization",
    "pub": "publisher",
    "qty": "quantity",
    "ref": "reference",
    "tel": "telephone",
    "uid": "identifier",
    "zip": "zipcode",
}


def split_camel_case(name: str) -> List[str]:
    """Split ``camelCase``/``PascalCase`` boundaries without lowercasing."""
    if not name:
        return []
    return [part for part in _CAMEL_BOUNDARY.split(name) if part]


def tokenize_name(name: str) -> List[str]:
    """Split an element name into lowercase tokens.

    Handles delimiter characters (``_``, ``-``, ``.``, whitespace), camelCase
    boundaries and letter/digit boundaries:

    >>> tokenize_name("authorFirstName")
    ['author', 'first', 'name']
    >>> tokenize_name("ship_to-address2")
    ['ship', 'to', 'address', '2']
    """
    if not name:
        return []
    pieces = [piece for piece in _NON_ALNUM.split(name) if piece]
    tokens: List[str] = []
    for piece in pieces:
        for camel_part in split_camel_case(piece):
            for part in _DIGIT_BOUNDARY.split(camel_part):
                if part:
                    tokens.append(part.lower())
    return tokens


def expand_abbreviations(tokens: Sequence[str], table: Dict[str, str] | None = None) -> List[str]:
    """Replace known abbreviations in a token list with their expansions."""
    mapping = DEFAULT_ABBREVIATIONS if table is None else table
    return [mapping.get(token, token) for token in tokens]


def normalize_name(name: str, expand: bool = True) -> str:
    """Canonical single-string form of a name: tokenized, expanded, joined.

    >>> normalize_name("custAddr")
    'customer address'
    """
    tokens = tokenize_name(name)
    if expand:
        tokens = expand_abbreviations(tokens)
    return " ".join(tokens)

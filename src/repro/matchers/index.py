"""Repository name index and lossless candidate blocking for batch matching.

Element matching is the pipeline's hottest path: the naive selector runs one
string comparison per (personal node, repository node) pair.  Web-harvested
repositories repeat element names heavily, so this module deduplicates the
work at the *name* level: :class:`RepositoryNameIndex` groups repository nodes
by (optionally case-folded) name, each unique ``(personal name, repository
name)`` pair is scored once and fanned out to every node sharing the name, and
a trigram/length prefilter removes names that provably cannot clear the
selection threshold before any edit-distance DP runs.

Prefilter invariants (losslessness proof sketch)
------------------------------------------------

The selector keeps a pair when ``sim(a, b) = 1 - d(a, b) / max(|a|, |b|)`` is
at least the threshold ``t``, where ``d`` is the unrestricted
Damerau–Levenshtein distance.  Both filters are derived from the per-pair edit
budget ``limit = edit_budget(t, max(|a|, |b|)) = int((1 - t) * max(|a|, |b|)) + 1``
(the same helper the kernel path in ``fuzzy_similarity`` uses), which satisfies
``limit > (1 - t) * max(|a|, |b|)``; hence ``sim(a, b) >= t`` implies
``d(a, b) <= limit`` with at least one full edit operation of slack, so no
floating-point rounding of the threshold comparison can be affected.

1. **Length bound** — every edit operation changes the string length by at
   most one, so ``d(a, b) >= ||a| - |b||``.  Names whose length difference
   exceeds ``limit`` cannot score ``>= t`` and are pruned without scoring.

2. **Trigram bound** — let ``G(x)`` be the set of padded character trigrams of
   ``x`` (:func:`~repro.matchers.string_metrics._ngrams` with ``size=3``).  A
   single Levenshtein operation destroys at most ``q = 3`` padded q-gram
   occurrences (the grams overlapping the edited position), and a
   Damerau–Levenshtein script of cost ``d`` can be rewritten as a Levenshtein
   script of cost at most ``2 d`` (each transposition step of cost ``c``
   becomes at most ``c + 1 <= 2 c`` substitutions/insertions/deletions).  A
   trigram of ``a`` that appears nowhere in ``b`` must have had every one of
   its occurrences destroyed, so the number of *distinct* trigrams of ``a``
   missing from ``b`` is at most ``2 q d``.  Therefore
   ``d(a, b) <= limit`` implies
   ``|G(a) ∩ G(b)| >= |G(a)| - 2 q * limit``, and a name can be pruned when
   its posting-list overlap count falls below that bound.  When the bound is
   ``<= 0`` nothing is pruned (the filter degrades gracefully instead of
   dropping candidates).

Both filters only ever *remove* pairs whose similarity is provably below the
threshold, so the batch path's surviving pairs — and, because the survivors
are scored with the exact kernel — the resulting ``MappingElementSets`` are
identical to the naive all-pairs loop.

Banded candidate generation (sublinear scan, same losslessness)
---------------------------------------------------------------

The linear prefilter still *visits* every length-compatible unique name.  The
banded path (:meth:`RepositoryNameIndex._banded_candidates`, opt-in via
:meth:`RepositoryNameIndex.enable_banded`, always on for frozen-snapshot
indexes) is a prefix-filter over the same trigram postings: let ``g`` be the
query's gram count and ``m`` the *weakest* overlap bound over every length
that can pass the length filter (``m = g - limit_max * 2q`` with ``limit_max``
the largest per-pair edit budget among admissible lengths — admissibility of
lengths above the query's is monotone, so ``limit_max`` is found by a short
upward scan).  Any name with overlap ``>= m`` must contain at least one gram
of **any** ``g - m + 1``-subset of the query's grams (missing all of them
caps the overlap at ``m - 1``), so the union of the ``g - m + 1`` *rarest*
query grams' posting lists is a lossless candidate band whenever ``m >= 2``.
Each banded candidate is then re-checked with the exact per-length bounds the
linear scan applies, so the surviving name set — and therefore every score,
ranking and counter downstream — is identical to the linear scan's.  When the
bound cannot be proven useful (``m <= 1``: low thresholds, tiny queries) the
index falls back to the linear scan unchanged.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.matchers.string_metrics import _ngrams, edit_budget

#: Size of the character q-grams in the blocking index (padded trigrams).
_GRAM_SIZE = 3

#: Distinct query q-grams that one unit of Damerau–Levenshtein cost can make
#: disappear (see the module docstring's proof sketch): ``2 * gram size``.
#: Derived, not hardcoded — the prefilter's losslessness depends on the two
#: staying in lockstep.
_GRAM_SLACK_PER_EDIT = 2 * _GRAM_SIZE

_VERSION_COUNTER = itertools.count(1)


class LRUMemo:
    """A tiny bounded least-recently-used memo (insertion-ordered dict based).

    Batch matchers use it to reuse per-query score tables across personal
    schemas — the paper's repeated-query / heavy-traffic scenario — without
    unbounded growth on adversarial workloads.  A lock guards the recency
    bookkeeping so matchers can be shared across concurrent matching runs
    (the memo ops are rare next to the kernel work they save).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError(f"memo capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # -- pickling (process executors) -----------------------------------------
    # Shard fan-out tasks ship whole MatchingService objects (which hold memos
    # through their matcher and query cache) to worker processes.  Locks do not
    # pickle, and the cached tables would dominate the payload for no
    # correctness benefit (worker-side cache writes never travel back), so a
    # pickled memo is an *empty* copy with the same capacity.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        state["_entries"] = OrderedDict()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class RepositoryNameIndex:
    """Repository nodes grouped by (case-folded) name, with blocking indexes.

    The index stores, per unique name key:

    * the list of :class:`RepositoryNodeRef` sharing the name, in global-id
      order (so fanned-out mapping elements sort exactly like the naive scan);
    * a length bucket (for the length-difference bound);
    * trigram posting lists (for the overlap bound).

    Instances are immutable snapshots; ``version`` is a process-unique token
    used as a memo key, and ``node_count`` lets caches detect a repository
    that has grown since the index was built.
    """

    gram_size = _GRAM_SIZE

    def __init__(self, repository: SchemaRepository, case_sensitive: bool = False) -> None:
        self.case_sensitive = case_sensitive
        self.version = next(_VERSION_COUNTER)
        self.repository_version = getattr(repository, "version", 0)
        self.node_count = repository.node_count
        keys: List[str] = []
        refs: List[List[RepositoryNodeRef]] = []
        key_to_id: Dict[str, int] = {}
        for ref, node in repository.iter_nodes():
            key = node.name if case_sensitive else node.name.lower()
            name_id = key_to_id.get(key)
            if name_id is None:
                key_to_id[key] = len(keys)
                keys.append(key)
                refs.append([ref])
            else:
                refs[name_id].append(ref)
        self.keys = keys
        self._refs = refs
        self._key_to_id = key_to_id

        # The blocking structures (length buckets + trigram posting lists) are
        # only needed by the fuzzy/n-gram prefilter paths; exact-name lookups
        # (find_by_name) and the token matcher never read them, so they are
        # built lazily on first use.
        self._ids_by_length: Optional[Dict[int, List[int]]] = None
        self._pairs_by_length: Dict[int, int] = {}
        self._gram_counts: List[int] = []
        self._postings: Dict[str, List[int]] = {}
        self._banded_enabled = False

    def _ensure_blocking(self) -> Dict[int, List[int]]:
        ids_by_length = self._ids_by_length
        if ids_by_length is not None:
            return ids_by_length
        ids_by_length = {}
        pairs_by_length: Dict[int, int] = {}
        gram_counts: List[int] = []
        postings: Dict[str, List[int]] = {}
        refs = self._refs
        for name_id, key in enumerate(self.keys):
            length = len(key)
            ids_by_length.setdefault(length, []).append(name_id)
            pairs_by_length[length] = pairs_by_length.get(length, 0) + len(refs[name_id])
            grams = _ngrams(key, self.gram_size)
            gram_counts.append(len(grams))
            for gram in grams:
                postings.setdefault(gram, []).append(name_id)
        self._pairs_by_length = pairs_by_length
        self._gram_counts = gram_counts
        self._postings = postings
        self._ids_by_length = ids_by_length
        return ids_by_length

    # -- construction / caching -------------------------------------------------

    @classmethod
    def for_repository(
        cls, repository: SchemaRepository, case_sensitive: bool = False
    ) -> "RepositoryNameIndex":
        """The repository's cached index, (re)built when the repository mutated.

        The cache lives on the repository object itself (one entry per case
        mode), is invalidated by every repository mutation (``add_tree`` /
        ``remove_tree``), and staleness is detected through the repository's
        mutation :attr:`~repro.schema.repository.SchemaRepository.version` —
        not the node count, which cannot see equal-size mutations (remove one
        tree, add another with the same number of nodes).
        """
        cache = repository._name_index_cache
        key = bool(case_sensitive)
        index = cache.get(key)
        if index is None or index.repository_version != getattr(repository, "version", 0):
            index = cls(repository, case_sensitive=case_sensitive)
            cache[key] = index
        return index

    @classmethod
    def from_serialized(
        cls,
        repository: SchemaRepository,
        case_sensitive: bool,
        keys: List[str],
        node_name_ids: Sequence[int],
    ) -> "RepositoryNameIndex":
        """Rebuild an index from its snapshot payload without scanning names.

        ``node_name_ids`` holds one name id per repository node in global-id
        order (the shape written by :mod:`repro.service.snapshot`), so the
        per-name ref lists fall out of a single pass over the repository's
        node refs — no name folding, no dict probing, and the global-id
        ordering within each list holds by construction.  Blocking structures
        stay lazy unless the snapshot installs them too.
        """
        if len(node_name_ids) != repository.node_count:
            raise ValueError(
                f"serialized name index covers {len(node_name_ids)} nodes but repository "
                f"{repository.name!r} has {repository.node_count}"
            )
        if node_name_ids and not 0 <= min(node_name_ids) <= max(node_name_ids) < len(keys):
            # A corrupt payload must fail loudly — negative ids would silently
            # file nodes under the wrong name via Python's tail indexing.
            raise ValueError(
                f"serialized name index references name ids outside [0, {len(keys)})"
            )
        clone = cls.__new__(cls)
        clone.case_sensitive = case_sensitive
        clone.version = next(_VERSION_COUNTER)
        clone.repository_version = getattr(repository, "version", 0)
        clone.node_count = repository.node_count
        refs: List[List[RepositoryNodeRef]] = [[] for _ in keys]
        for ref, name_id in zip(repository.node_refs(), node_name_ids):
            refs[name_id].append(ref)
        clone.keys = list(keys)
        clone._refs = refs
        clone._key_to_id = {key: name_id for name_id, key in enumerate(clone.keys)}
        clone._banded_enabled = False
        clone._reset_blocking()
        return clone

    def node_name_ids(self) -> List[int]:
        """Per-node name ids in global-id order (the snapshot wire form)."""
        ids = [0] * self.node_count
        for name_id, refs in enumerate(self._refs):
            for ref in refs:
                ids[ref.global_id] = name_id
        return ids

    def packed_name_table(self):
        """Lazily built code-point matrix of the keys for the batch DL kernel.

        ``None`` when the kernel cannot be used (no numpy, an over-long or
        unencodable key).  Index instances are immutable snapshots, so the
        table is built at most once; incremental clones
        (:meth:`with_tree_added` / :meth:`with_tree_removed`) start without
        one and rebuild lazily against their own key list.
        """
        packed = getattr(self, "_packed_names", None)
        if packed is None:
            from repro.kernels.strings import PackedNameTable

            built = PackedNameTable.build(self.keys)
            # Cache the failure too (False) so unsupported key sets do not
            # retry the packing scan on every query.
            packed = self._packed_names = built if built is not None else False
        return packed or None

    # -- pickling -----------------------------------------------------------------
    # Name indexes travel inside snapshots and (rarely) pickled repositories;
    # the packed matrix is derived state and rebuilds lazily, so it never
    # rides along (numpy arrays would bloat the payload and tie the wire
    # format to numpy's).

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_packed_names", None)
        return state

    # -- blocking persistence ----------------------------------------------------

    def ensure_blocking(self) -> None:
        """Force the lazy blocking structures (service warm-up / snapshot write)."""
        self._ensure_blocking()

    def blocking_payload(self) -> Optional[Dict[str, object]]:
        """Raw blocking structures for snapshots, ``None`` when not yet built."""
        if self._ids_by_length is None:
            return None
        return {"gram_counts": list(self._gram_counts), "postings": dict(self._postings)}

    def install_blocking(self, gram_counts: List[int], postings: Dict[str, List[int]]) -> None:
        """Install deserialized blocking structures (snapshot load).

        The cheap length buckets are recomputed from the keys; only the
        trigram structures — the expensive part — come from the payload.
        """
        if len(gram_counts) != len(self.keys):
            raise ValueError(
                f"blocking payload has {len(gram_counts)} gram counts for "
                f"{len(self.keys)} names"
            )
        self._gram_counts = list(gram_counts)
        self._postings = {gram: list(ids) for gram, ids in postings.items()}
        self._rebuild_length_buckets()

    # -- incremental updates -----------------------------------------------------

    def with_tree_added(self, repository: SchemaRepository, tree_id: int) -> "RepositoryNameIndex":
        """A new index equal to a fresh build after ``tree_id`` was added.

        Only the postings touched by the new tree are recomputed: the new
        tree's nodes are folded and appended to the existing per-name ref
        lists (copy-on-write — this index is immutable and stays valid), and
        trigram posting lists gain entries only for names first introduced by
        the new tree.  Because the new tree's global ids are larger than every
        existing id and its nodes are scanned in node-id order, the result is
        *identical* to rebuilding the index from scratch — same key order,
        same name ids, same ref order, same postings.
        """
        clone = RepositoryNameIndex.__new__(RepositoryNameIndex)
        clone.case_sensitive = self.case_sensitive
        clone.version = next(_VERSION_COUNTER)
        clone.repository_version = getattr(repository, "version", 0)
        clone.node_count = repository.node_count

        keys = list(self.keys)
        refs = list(self._refs)
        key_to_id = dict(self._key_to_id)
        touched: set = set()
        new_name_ids: List[int] = []
        tree = repository.tree(tree_id)
        offset = repository.tree_offset(tree_id)
        case_sensitive = self.case_sensitive
        for node_id in tree.node_ids():
            name = tree.node(node_id).name
            key = name if case_sensitive else name.lower()
            ref = RepositoryNodeRef(global_id=offset + node_id, tree_id=tree_id, node_id=node_id)
            name_id = key_to_id.get(key)
            if name_id is None:
                name_id = len(keys)
                key_to_id[key] = name_id
                keys.append(key)
                refs.append([ref])
                new_name_ids.append(name_id)
            else:
                if name_id not in touched:
                    refs[name_id] = list(refs[name_id])
                    touched.add(name_id)
                refs[name_id].append(ref)
        clone.keys = keys
        clone._refs = refs
        clone._key_to_id = key_to_id
        clone._banded_enabled = getattr(self, "_banded_enabled", False)

        if self._ids_by_length is None:
            clone._reset_blocking()
        else:
            gram_counts = list(self._gram_counts)
            postings = dict(self._postings)
            for name_id in new_name_ids:
                grams = _ngrams(keys[name_id], self.gram_size)
                gram_counts.append(len(grams))
                for gram in grams:
                    existing = postings.get(gram)
                    postings[gram] = [*existing, name_id] if existing else [name_id]
            clone._gram_counts = gram_counts
            clone._postings = postings
            clone._rebuild_length_buckets()
        return clone

    def with_tree_removed(
        self, repository: SchemaRepository, removed_tree_id: int, removed_node_count: int
    ) -> "RepositoryNameIndex":
        """A new index valid after ``removed_tree_id`` was removed.

        Per-name ref lists are filtered and shifted (trees after the removed
        one slid down by one tree id and ``removed_node_count`` global ids);
        names that only occurred in the removed tree are dropped and the
        surviving name ids are compacted *in their existing order*, so trigram
        postings and gram counts are remapped without recomputing a single
        n-gram.  The result is observably equivalent to a fresh build — same
        name → refs mapping, same blocking decisions — though the internal
        name-id numbering may differ from a from-scratch scan (fresh builds
        number names by first occurrence over the surviving nodes; every
        consumer sorts its output, so this is invisible downstream).
        """
        clone = RepositoryNameIndex.__new__(RepositoryNameIndex)
        clone.case_sensitive = self.case_sensitive
        clone.version = next(_VERSION_COUNTER)
        clone.repository_version = getattr(repository, "version", 0)
        clone.node_count = repository.node_count

        keys: List[str] = []
        refs: List[List[RepositoryNodeRef]] = []
        key_to_id: Dict[str, int] = {}
        id_map: Dict[int, int] = {}
        for old_id, old_refs in enumerate(self._refs):
            survivors = [
                ref
                if ref.tree_id < removed_tree_id
                else RepositoryNodeRef(
                    global_id=ref.global_id - removed_node_count,
                    tree_id=ref.tree_id - 1,
                    node_id=ref.node_id,
                )
                for ref in old_refs
                if ref.tree_id != removed_tree_id
            ]
            if not survivors:
                continue
            new_id = len(keys)
            id_map[old_id] = new_id
            key_to_id[self.keys[old_id]] = new_id
            keys.append(self.keys[old_id])
            refs.append(survivors)
        clone.keys = keys
        clone._refs = refs
        clone._key_to_id = key_to_id
        clone._banded_enabled = getattr(self, "_banded_enabled", False)

        if self._ids_by_length is None:
            clone._reset_blocking()
        else:
            clone._gram_counts = [
                count for old_id, count in enumerate(self._gram_counts) if old_id in id_map
            ]
            postings: Dict[str, List[int]] = {}
            for gram, name_ids in self._postings.items():
                remapped = [id_map[name_id] for name_id in name_ids if name_id in id_map]
                if remapped:
                    postings[gram] = remapped
            clone._postings = postings
            clone._rebuild_length_buckets()
        return clone

    def _reset_blocking(self) -> None:
        self._ids_by_length = None
        self._pairs_by_length = {}
        self._gram_counts = []
        self._postings = {}

    def _rebuild_length_buckets(self) -> None:
        """Recompute the (cheap) length-bucket structures from keys and refs.

        Called by the incremental constructors after the expensive trigram
        structures have been updated in place; a fresh pass over the unique
        names costs O(#names), far below re-deriving n-grams.
        """
        ids_by_length: Dict[int, List[int]] = {}
        pairs_by_length: Dict[int, int] = {}
        for name_id, key in enumerate(self.keys):
            length = len(key)
            ids_by_length.setdefault(length, []).append(name_id)
            pairs_by_length[length] = pairs_by_length.get(length, 0) + len(self._refs[name_id])
        self._pairs_by_length = pairs_by_length
        self._ids_by_length = ids_by_length

    # -- lookups ----------------------------------------------------------------

    @property
    def unique_name_count(self) -> int:
        return len(self.keys)

    def id_for(self, key: str) -> Optional[int]:
        """Name id of an exact (already folded) name key, or ``None``."""
        return self._key_to_id.get(key)

    def refs_for_id(self, name_id: int) -> List[RepositoryNodeRef]:
        """Node refs sharing a name, in global-id order (treat as read-only)."""
        return self._refs[name_id]

    def fanout(self, name_id: int) -> int:
        return len(self._refs[name_id])

    def gram_count(self, name_id: int) -> int:
        self._ensure_blocking()
        return self._gram_counts[name_id]

    def query_grams(self, query: str):
        """Padded trigram set of a (folded) query string."""
        return _ngrams(query, self.gram_size)

    def gram_overlap_counts(self, query_grams) -> Dict[int, int]:
        """``name_id -> |G(query) ∩ G(name)|`` for names sharing any trigram."""
        self._ensure_blocking()
        counts: Dict[int, int] = {}
        postings = self._postings
        get = counts.get
        for gram in query_grams:
            for name_id in postings.get(gram, ()):
                counts[name_id] = get(name_id, 0) + 1
        return counts

    # -- fuzzy-name blocking -----------------------------------------------------

    def fuzzy_candidates(self, query: str, threshold: float) -> Tuple[List[int], int]:
        """Name ids that may score ``>= threshold`` against ``query``.

        Applies the length-difference bound and the trigram overlap bound from
        the module docstring; both are lossless, so every name scoring at or
        above the threshold survives.  Returns ``(surviving name ids,
        pruned pair count)`` where the pair count weights each pruned name by
        its node fanout (for the ``comparisons_pruned`` counter).
        """
        query_length = len(query)
        query_grams = self.query_grams(query) if threshold > 0.0 else ()
        query_gram_count = len(query_grams)
        if getattr(self, "_banded_enabled", False) and query_gram_count:
            banded = self._banded_candidates(query_length, query_grams, threshold)
            if banded is not None:
                return banded
        ids_by_length = self._ensure_blocking()

        survivors: List[int] = []
        pruned_pairs = 0
        # The posting-list scan is only paid for once some length bucket can
        # actually use the trigram bound (``min_overlap > 0`` needs a high
        # threshold); at typical thresholds the length bound does all the
        # pruning and the overlap counts would be discarded unread.
        counts: Optional[Dict[int, int]] = None
        for length, name_ids in ids_by_length.items():
            longest = length if length > query_length else query_length
            limit = edit_budget(threshold, longest)
            if abs(length - query_length) > limit:
                pruned_pairs += self._pairs_by_length[length]
                continue
            min_overlap = query_gram_count - limit * _GRAM_SLACK_PER_EDIT
            if min_overlap > 0:
                if counts is None:
                    counts = self.gram_overlap_counts(query_grams)
                counts_get = counts.get
                for name_id in name_ids:
                    if counts_get(name_id, 0) < min_overlap:
                        pruned_pairs += len(self._refs[name_id])
                    else:
                        survivors.append(name_id)
            else:
                survivors.extend(name_ids)
        return survivors, pruned_pairs

    # -- banded (prefix-filter) candidate generation ------------------------------

    @property
    def banded_enabled(self) -> bool:
        """Whether the sublinear banded candidate path may engage."""
        return getattr(self, "_banded_enabled", False)

    def enable_banded(self) -> "RepositoryNameIndex":
        """Opt this index into the banded candidate path (returns ``self``).

        Purely an access-path switch: whenever the band bound is provable the
        banded scan returns the exact same surviving name set (hence the same
        scores, rankings and counters) as the linear scan, and it silently
        falls back to the linear scan otherwise — see the module docstring's
        losslessness argument.  Incremental clones inherit the setting.
        """
        self._banded_enabled = True
        return self

    # The four hooks below are the banded scan's only view of the index data,
    # so a subclass backed by different storage (the frozen mmap index) can
    # reuse the algorithm — and its losslessness proof — unchanged.

    def _banded_prepare(self) -> None:
        """Make postings/length structures available for the banded scan."""
        self._ensure_blocking()

    def _banded_max_key_length(self) -> int:
        ids_by_length = self._ids_by_length
        return max(ids_by_length) if ids_by_length else 0

    def _banded_posting(self, gram: str):
        """Posting list of one gram (any int sequence; empty for unknown)."""
        return self._postings.get(gram, ())

    def _banded_name_length(self, name_id: int) -> int:
        return len(self.keys[name_id])

    def _banded_name_grams(self, name_id: int):
        return _ngrams(self.keys[name_id], self.gram_size)

    def _banded_candidates(
        self, query_length: int, query_grams, threshold: float
    ) -> Optional[Tuple[List[int], int]]:
        """Prefix-filter band scan, or ``None`` when the bound is unprovable.

        Computes ``limit_max``, the largest per-pair edit budget over every
        name length that can pass the length filter: lengths at or below the
        query's share ``edit_budget(threshold, query_length)``, and for longer
        lengths admissibility (``length - query_length <= edit_budget``) is
        monotone — the budget grows by less than one per unit of length — so
        one upward scan to the first violation finds the maximum.  With
        ``m = g - limit_max * 2q`` at least 2, every linear-scan survivor
        shares >= ``m`` grams with the query and is therefore found in the
        posting lists of the ``g - m + 1`` rarest query grams; each candidate
        is re-verified with the exact per-length bounds, so the survivor set
        is identical to the linear scan's.  Pruned pair accounting uses the
        identity ``sum(fanout) over all names == node_count``.
        """
        if threshold <= 0.0:
            return None
        self._banded_prepare()
        max_length = self._banded_max_key_length()
        if max_length <= 0:
            return None
        query_gram_count = len(query_grams)
        limit_max = edit_budget(threshold, query_length)
        length = query_length + 1
        while length <= max_length:
            limit = edit_budget(threshold, length)
            if length - query_length > limit:
                break
            if limit > limit_max:
                limit_max = limit
            length += 1
        min_required = query_gram_count - limit_max * _GRAM_SLACK_PER_EDIT
        if min_required <= 1:
            # m == 1 would make the band the union of *all* query grams'
            # postings — no better than the linear overlap scan; m <= 0 means
            # some admissible length cannot be pruned by overlap at all.
            return None
        prefix_size = query_gram_count - min_required + 1
        posting = self._banded_posting
        ranked = sorted(query_grams, key=lambda gram: (len(posting(gram)), gram))
        candidates: set = set()
        for gram in ranked[:prefix_size]:
            candidates.update(posting(gram))
        survivors: List[int] = []
        kept_pairs = 0
        name_length = self._banded_name_length
        name_grams = self._banded_name_grams
        fanout = self.fanout
        for name_id in sorted(candidates):
            length = name_length(name_id)
            longest = length if length > query_length else query_length
            limit = edit_budget(threshold, longest)
            if abs(length - query_length) > limit:
                continue
            min_overlap = query_gram_count - limit * _GRAM_SLACK_PER_EDIT
            if min_overlap > 0 and len(query_grams & name_grams(name_id)) < min_overlap:
                continue
            survivors.append(name_id)
            kept_pairs += fanout(name_id)
        return survivors, self.node_count - kept_pairs

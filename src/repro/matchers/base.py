"""The element-matcher interface.

An element matcher computes ``sim(n, n') -> [0, 1]`` for a personal-schema node
``n`` and a repository node ``n'``.  Localized matchers only look at the two
nodes' own properties; structural matchers may also consult the surrounding
trees, which they receive through :class:`MatchContext`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.schema.node import SchemaNode
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.schema.tree import SchemaTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matchers.index import RepositoryNameIndex
    from repro.utils.counters import CounterSet


@dataclass(frozen=True)
class MatchContext:
    """Everything a structural matcher may need besides the two nodes.

    Attributes
    ----------
    personal_schema:
        The personal schema tree that ``personal_node_id`` belongs to.
    repository:
        The repository the candidate node comes from.
    personal_node_id:
        Node id of the personal-schema element being matched.
    repository_ref:
        Repository reference of the candidate element.
    """

    personal_schema: SchemaTree
    repository: SchemaRepository
    personal_node_id: int
    repository_ref: RepositoryNodeRef


class ElementMatcher(abc.ABC):
    """Base class for all element matchers.

    Subclasses implement :meth:`similarity`; scores outside ``[0, 1]`` are a
    programming error and are clamped (with an assertion in tests).
    """

    #: Human-readable matcher name used in reports and combiner weights.
    name: str = "matcher"

    #: Localized matchers only inspect the two nodes; structural matchers also
    #: consult the context.  The clustered matching variant that splits matchers
    #: around the clusterer (Sec. 2.3) uses this flag.
    is_structural: bool = False

    @abc.abstractmethod
    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        """Similarity index of the two elements in ``[0, 1]``."""

    def __call__(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        score = self.similarity(personal_node, repository_node, context)
        if score < 0.0:
            return 0.0
        if score > 1.0:
            return 1.0
        return score

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class BatchElementMatcher(ElementMatcher):
    """An element matcher that can score a personal node against a whole
    repository through a :class:`~repro.matchers.index.RepositoryNameIndex`.

    Name-based (localized) matchers depend on the two nodes only through their
    names, so a matching run can score each *unique* repository name once and
    fan the score out to every node sharing the name.
    :class:`~repro.matchers.selection.MappingElementSelector` dispatches to
    :meth:`batch_scores` when a matcher subclasses this interface (and
    ``supports_batch`` is true); the resulting mapping-element sets are
    required to be identical — same pairs, same similarity floats — to the
    per-pair loop over :meth:`ElementMatcher.similarity`.
    """

    #: Subclasses may turn this into a property when batch support depends on
    #: configuration (e.g. an n-gram size the shared index does not carry).
    supports_batch: bool = True

    @abc.abstractmethod
    def name_index(self, repository: SchemaRepository) -> "RepositoryNameIndex":
        """The (cached) repository name index this matcher scores against.

        Matchers choose the case mode here: a case-insensitive matcher indexes
        folded names, a case-sensitive one indexes raw names.
        """

    @abc.abstractmethod
    def batch_scores(
        self,
        personal_name: str,
        index: "RepositoryNameIndex",
        threshold: float,
        counters: Optional["CounterSet"] = None,
    ) -> Mapping[int, float]:
        """Similarity per surviving index name id for one personal name.

        The returned mapping must contain every name id whose similarity is
        ``>= threshold`` *and* ``> 0`` (with its exact score, equal to what
        :meth:`ElementMatcher.similarity` would produce) — exact-zero scores
        never become mapping elements and may be dropped, mirroring the naive
        loop's ``score >= threshold and score > 0.0`` filter; ids scoring
        below the threshold may be omitted or included — the selector
        re-applies the threshold test either way.  Implementations update the
        ``comparisons_pruned`` / ``index_hits`` counters when given.
        """

"""The element-matcher interface.

An element matcher computes ``sim(n, n') -> [0, 1]`` for a personal-schema node
``n`` and a repository node ``n'``.  Localized matchers only look at the two
nodes' own properties; structural matchers may also consult the surrounding
trees, which they receive through :class:`MatchContext`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.schema.node import SchemaNode
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.schema.tree import SchemaTree


@dataclass(frozen=True)
class MatchContext:
    """Everything a structural matcher may need besides the two nodes.

    Attributes
    ----------
    personal_schema:
        The personal schema tree that ``personal_node_id`` belongs to.
    repository:
        The repository the candidate node comes from.
    personal_node_id:
        Node id of the personal-schema element being matched.
    repository_ref:
        Repository reference of the candidate element.
    """

    personal_schema: SchemaTree
    repository: SchemaRepository
    personal_node_id: int
    repository_ref: RepositoryNodeRef


class ElementMatcher(abc.ABC):
    """Base class for all element matchers.

    Subclasses implement :meth:`similarity`; scores outside ``[0, 1]`` are a
    programming error and are clamped (with an assertion in tests).
    """

    #: Human-readable matcher name used in reports and combiner weights.
    name: str = "matcher"

    #: Localized matchers only inspect the two nodes; structural matchers also
    #: consult the context.  The clustered matching variant that splits matchers
    #: around the clusterer (Sec. 2.3) uses this flag.
    is_structural: bool = False

    @abc.abstractmethod
    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        """Similarity index of the two elements in ``[0, 1]``."""

    def __call__(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        score = self.similarity(personal_node, repository_node, context)
        if score < 0.0:
            return 0.0
        if score > 1.0:
            return 1.0
        return score

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"

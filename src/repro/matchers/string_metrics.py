"""String similarity metrics.

Bellflower's only element matcher compares element names with the commercial
``CompareStringFuzzy`` function, described in the paper as "a normalized string
similarity based on character substitution, insertion, exclusion, and
transposition".  That operation set is exactly the Damerau–Levenshtein edit
distance; :func:`fuzzy_similarity` normalizes it to ``[0, 1]``.

Additional metrics (plain Levenshtein, Jaro–Winkler, character n-grams) are
provided because the token-based name matcher and the ablation benchmarks use
them, and because schema matching systems commonly combine several string
measures.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Set

#: Barrier value used in place of per-call ``infinity`` borders.  Any value
#: larger than every achievable edit cost behaves identically inside ``min``.
_BIG = 1 << 30

#: Per-thread reusable buffers for :func:`bounded_damerau_levenshtein`: the
#: all-barrier border row (the DP table's row 0) and the row pool.  Reusing
#: rows across calls removes the per-call table allocation that dominates the
#: cost of comparing short element names; keeping the pool thread-local makes
#: the kernel safe under concurrent matching runs.
_KERNEL_BUFFERS = threading.local()

#: Strings longer than this bypass the pooled buffers (fresh per-call rows):
#: element names are short, and one adversarially long pair must not pin an
#: O(len(a) * len(b)) pool for the rest of the process.
_MAX_POOLED_LEN = 512


def levenshtein_distance(first: str, second: str) -> int:
    """Classic edit distance (substitution, insertion, deletion)."""
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    # Keep the shorter string in the inner dimension to minimize memory.
    if len(second) > len(first):
        first, second = second, first
    previous = list(range(len(second) + 1))
    for i, first_char in enumerate(first, start=1):
        current = [i] + [0] * len(second)
        for j, second_char in enumerate(second, start=1):
            cost = 0 if first_char == second_char else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost,  # substitution
            )
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(first: str, second: str) -> int:
    """Edit distance with substitution, insertion, deletion and transposition.

    This is the unrestricted Damerau–Levenshtein distance (transpositions of
    adjacent characters count as one operation even when further edits occur
    between them), matching the operation set of ``CompareStringFuzzy``.
    """
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)

    alphabet: Dict[str, int] = {}
    for char in first + second:
        alphabet.setdefault(char, 0)

    infinity = len(first) + len(second)
    # Matrix with an extra border row/column for the transposition recurrence.
    height = len(first) + 2
    width = len(second) + 2
    table: List[List[int]] = [[0] * width for _ in range(height)]
    table[0][0] = infinity
    for i in range(len(first) + 1):
        table[i + 1][1] = i
        table[i + 1][0] = infinity
    for j in range(len(second) + 1):
        table[1][j + 1] = j
        table[0][j + 1] = infinity

    last_row: Dict[str, int] = dict.fromkeys(alphabet, 0)
    for i in range(1, len(first) + 1):
        last_match_column = 0
        for j in range(1, len(second) + 1):
            row_of_last_match = last_row[second[j - 1]]
            column_of_last_match = last_match_column
            if first[i - 1] == second[j - 1]:
                cost = 0
                last_match_column = j
            else:
                cost = 1
            table[i + 1][j + 1] = min(
                table[i][j] + cost,                      # substitution / match
                table[i + 1][j] + 1,                     # insertion
                table[i][j + 1] + 1,                     # deletion (exclusion)
                table[row_of_last_match][column_of_last_match]
                + (i - row_of_last_match - 1)
                + 1
                + (j - column_of_last_match - 1),        # transposition
            )
        last_row[first[i - 1]] = i
    return table[len(first) + 1][len(second) + 1]


def edit_budget(threshold: float, longest: int) -> int:
    """Per-pair Damerau–Levenshtein budget for a similarity threshold.

    ``sim(a, b) >= threshold`` implies ``d(a, b) <= edit_budget(threshold,
    max(|a|, |b|))``, with at least one full edit operation of slack
    (``budget > (1 - threshold) * longest`` by construction), so no
    floating-point rounding of the threshold comparison can be affected.

    The trigram/length prefilter (:mod:`repro.matchers.index`) and the pruned
    kernel path in :func:`fuzzy_similarity` must derive their limits from this
    one helper: prefilter losslessness requires the prefilter's budget to be
    at least the kernel's.
    """
    return int((1.0 - threshold) * longest) + 1


def bounded_damerau_levenshtein(first: str, second: str, limit: int) -> int:
    """Unrestricted Damerau–Levenshtein distance with an early-abandon budget.

    Returns the *exact* distance (identical to
    :func:`damerau_levenshtein_distance`) whenever it is ``<= limit``, and
    ``limit + 1`` as soon as the distance provably exceeds ``limit``.  Three
    optimizations make this the batch-matching kernel:

    * **fast paths** for equal strings, empty strings, length differences
      beyond the budget, and prefix pairs (``d(a, ab') = |b'|`` exactly,
      because edit distance is bounded below by the length difference and
      above by appending the missing suffix);
    * **reusable row buffers**: the DP rows live in a thread-local pool, so a
      matching run performs no per-call row-table allocations (only the small
      last-match-row dict is allocated per call).
      Every cell that a call can read is written first, so stale values from
      earlier calls are never observed, and each thread owns its buffers;
    * **early abandon**: after filling the row for prefix length ``i`` the
      kernel gives up when ``min_j d(a[:i], b[:j]) > limit`` (the row minimum
      including the ``j = 0`` border).  This is sound for the *unrestricted*
      recurrence, transposition look-back included: a later cell derived from
      a look-back row ``r <= i`` costs at least ``d(a[:r], b[:c]) + (i' - r)``
      for a row ``i' > i``, and ``d(a[:i], b[:c]) <= d(a[:r], b[:c]) + (i - r)``
      (delete the extra characters), so every such cell is bounded below by
      the row-``i`` minimum; cells derived from rows ``> i`` follow by
      induction because all recurrence increments are non-negative.
    """
    if limit < 0:
        raise ValueError(f"edit budget must be non-negative, got {limit}")
    if first == second:
        return 0
    len_first = len(first)
    len_second = len(second)
    if abs(len_first - len_second) > limit:
        return limit + 1
    if not first or not second:
        return max(len_first, len_second)
    if first.startswith(second) or second.startswith(first):
        return abs(len_first - len_second)

    width = len_second + 2
    if len_first <= _MAX_POOLED_LEN and len_second <= _MAX_POOLED_LEN:
        try:
            border_row = _KERNEL_BUFFERS.border_row
            row_pool = _KERNEL_BUFFERS.row_pool
        except AttributeError:
            border_row = _KERNEL_BUFFERS.border_row = []
            row_pool = _KERNEL_BUFFERS.row_pool = []
        if len(border_row) < width:
            border_row.extend([_BIG] * (width - len(border_row)))
        while len(row_pool) < len_first + 1:
            row_pool.append([])
        rows: List[List[int]] = [border_row]
        for pooled in row_pool[: len_first + 1]:
            if len(pooled) < width:
                pooled.extend([0] * (width - len(pooled)))
            rows.append(pooled)
    else:
        rows = [[_BIG] * width]
        for _ in range(len_first + 1):
            rows.append([0] * width)

    row_one = rows[1]
    row_one[0] = _BIG
    for j in range(len_second + 1):
        row_one[j + 1] = j

    last_row: Dict[str, int] = {}
    for i in range(1, len_first + 1):
        first_char = first[i - 1]
        previous = rows[i]
        current = rows[i + 1]
        current[0] = _BIG
        current[1] = i
        row_min = i
        last_match_column = 0
        for j in range(1, len_second + 1):
            second_char = second[j - 1]
            row_of_last_match = last_row.get(second_char, 0)
            column_of_last_match = last_match_column
            if first_char == second_char:
                cost = 0
                last_match_column = j
            else:
                cost = 1
            value = previous[j] + cost
            insertion = current[j] + 1
            if insertion < value:
                value = insertion
            deletion = previous[j + 1] + 1
            if deletion < value:
                value = deletion
            transposition = (
                rows[row_of_last_match][column_of_last_match]
                + (i - row_of_last_match - 1)
                + 1
                + (j - column_of_last_match - 1)
            )
            if transposition < value:
                value = transposition
            current[j + 1] = value
            if value < row_min:
                row_min = value
        last_row[first_char] = i
        if row_min > limit:
            return limit + 1
    distance = rows[len_first + 1][len_second + 1]
    return distance if distance <= limit else limit + 1


def fuzzy_similarity(
    first: str,
    second: str,
    case_sensitive: bool = False,
    min_similarity: float = 0.0,
) -> float:
    """Normalized Damerau–Levenshtein similarity in ``[0, 1]``.

    ``1.0`` means identical strings (after optional case folding); ``0.0`` means
    the edit distance equals the longer string's length (no shared structure).
    This is the library's stand-in for the paper's ``CompareStringFuzzy``.

    ``min_similarity`` is a prune hint for callers that discard scores below a
    threshold: when the length-difference bound
    (``distance >= |len(a) - len(b)|``) already caps the achievable similarity
    below ``min_similarity``, the DP is skipped entirely, and otherwise the
    pruned :func:`bounded_damerau_levenshtein` kernel runs with the matching
    edit budget.  Scores ``>= min_similarity`` are always exact (bit-identical
    to the default path); scores below the hint may be reported as ``0.0``.
    """
    if not case_sensitive:
        first = first.lower()
        second = second.lower()
    if first == second:
        return 1.0
    longest = max(len(first), len(second))
    shortest = min(len(first), len(second))
    if longest == 0:
        return 1.0
    if shortest == 0:
        # Length bound as an equality: against an empty string the distance is
        # exactly ``longest``, which forces the normalized similarity to 0.
        return 0.0
    if min_similarity > 0.0:
        if 1.0 - (longest - shortest) / longest < min_similarity:
            return 0.0
        limit = edit_budget(min_similarity, longest)
        distance = bounded_damerau_levenshtein(first, second, limit)
        if distance > limit:
            return 0.0
        return max(0.0, 1.0 - distance / longest)
    distance = damerau_levenshtein_distance(first, second)
    return max(0.0, 1.0 - distance / longest)


def jaro_similarity(first: str, second: str) -> float:
    """Jaro similarity in ``[0, 1]``."""
    if first == second:
        return 1.0
    if not first or not second:
        return 0.0
    match_window = max(len(first), len(second)) // 2 - 1
    match_window = max(match_window, 0)
    first_matches = [False] * len(first)
    second_matches = [False] * len(second)

    matches = 0
    for i, char in enumerate(first):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(second))
        for j in range(start, end):
            if second_matches[j] or second[j] != char:
                continue
            first_matches[i] = True
            second_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, matched in enumerate(first_matches):
        if not matched:
            continue
        while not second_matches[j]:
            j += 1
        if first[i] != second[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(first) + matches / len(second) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(first: str, second: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity: Jaro boosted by the length of the common prefix."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    jaro = jaro_similarity(first, second)
    prefix = 0
    for a, b in zip(first, second):
        if a != b or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def _ngrams(text: str, size: int) -> Set[str]:
    padded = f"{'#' * (size - 1)}{text}{'#' * (size - 1)}" if size > 1 else text
    return {padded[i : i + size] for i in range(len(padded) - size + 1)} if padded else set()


def ngram_similarity(first: str, second: str, size: int = 3, case_sensitive: bool = False) -> float:
    """Dice coefficient over character n-grams (default trigrams)."""
    if size < 1:
        raise ValueError(f"n-gram size must be positive, got {size}")
    if not case_sensitive:
        first = first.lower()
        second = second.lower()
    if first == second:
        return 1.0
    first_grams = _ngrams(first, size)
    second_grams = _ngrams(second, size)
    if not first_grams or not second_grams:
        return 0.0
    overlap = len(first_grams & second_grams)
    return 2.0 * overlap / (len(first_grams) + len(second_grams))


def longest_common_prefix(first: str, second: str) -> int:
    """Length of the longest common prefix of two strings."""
    length = 0
    for a, b in zip(first, second):
        if a != b:
            break
        length += 1
    return length

"""String similarity metrics.

Bellflower's only element matcher compares element names with the commercial
``CompareStringFuzzy`` function, described in the paper as "a normalized string
similarity based on character substitution, insertion, exclusion, and
transposition".  That operation set is exactly the Damerau–Levenshtein edit
distance; :func:`fuzzy_similarity` normalizes it to ``[0, 1]``.

Additional metrics (plain Levenshtein, Jaro–Winkler, character n-grams) are
provided because the token-based name matcher and the ablation benchmarks use
them, and because schema matching systems commonly combine several string
measures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set


def levenshtein_distance(first: str, second: str) -> int:
    """Classic edit distance (substitution, insertion, deletion)."""
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    # Keep the shorter string in the inner dimension to minimize memory.
    if len(second) > len(first):
        first, second = second, first
    previous = list(range(len(second) + 1))
    for i, first_char in enumerate(first, start=1):
        current = [i] + [0] * len(second)
        for j, second_char in enumerate(second, start=1):
            cost = 0 if first_char == second_char else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost,  # substitution
            )
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(first: str, second: str) -> int:
    """Edit distance with substitution, insertion, deletion and transposition.

    This is the unrestricted Damerau–Levenshtein distance (transpositions of
    adjacent characters count as one operation even when further edits occur
    between them), matching the operation set of ``CompareStringFuzzy``.
    """
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)

    alphabet: Dict[str, int] = {}
    for char in first + second:
        alphabet.setdefault(char, 0)

    infinity = len(first) + len(second)
    # Matrix with an extra border row/column for the transposition recurrence.
    height = len(first) + 2
    width = len(second) + 2
    table: List[List[int]] = [[0] * width for _ in range(height)]
    table[0][0] = infinity
    for i in range(len(first) + 1):
        table[i + 1][1] = i
        table[i + 1][0] = infinity
    for j in range(len(second) + 1):
        table[1][j + 1] = j
        table[0][j + 1] = infinity

    last_row: Dict[str, int] = dict.fromkeys(alphabet, 0)
    for i in range(1, len(first) + 1):
        last_match_column = 0
        for j in range(1, len(second) + 1):
            row_of_last_match = last_row[second[j - 1]]
            column_of_last_match = last_match_column
            if first[i - 1] == second[j - 1]:
                cost = 0
                last_match_column = j
            else:
                cost = 1
            table[i + 1][j + 1] = min(
                table[i][j] + cost,                      # substitution / match
                table[i + 1][j] + 1,                     # insertion
                table[i][j + 1] + 1,                     # deletion (exclusion)
                table[row_of_last_match][column_of_last_match]
                + (i - row_of_last_match - 1)
                + 1
                + (j - column_of_last_match - 1),        # transposition
            )
        last_row[first[i - 1]] = i
    return table[len(first) + 1][len(second) + 1]


def fuzzy_similarity(first: str, second: str, case_sensitive: bool = False) -> float:
    """Normalized Damerau–Levenshtein similarity in ``[0, 1]``.

    ``1.0`` means identical strings (after optional case folding); ``0.0`` means
    the edit distance equals the longer string's length (no shared structure).
    This is the library's stand-in for the paper's ``CompareStringFuzzy``.
    """
    if not case_sensitive:
        first = first.lower()
        second = second.lower()
    if not first and not second:
        return 1.0
    longest = max(len(first), len(second))
    if longest == 0:
        return 1.0
    distance = damerau_levenshtein_distance(first, second)
    return max(0.0, 1.0 - distance / longest)


def jaro_similarity(first: str, second: str) -> float:
    """Jaro similarity in ``[0, 1]``."""
    if first == second:
        return 1.0
    if not first or not second:
        return 0.0
    match_window = max(len(first), len(second)) // 2 - 1
    match_window = max(match_window, 0)
    first_matches = [False] * len(first)
    second_matches = [False] * len(second)

    matches = 0
    for i, char in enumerate(first):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(second))
        for j in range(start, end):
            if second_matches[j] or second[j] != char:
                continue
            first_matches[i] = True
            second_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, matched in enumerate(first_matches):
        if not matched:
            continue
        while not second_matches[j]:
            j += 1
        if first[i] != second[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(first) + matches / len(second) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(first: str, second: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity: Jaro boosted by the length of the common prefix."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    jaro = jaro_similarity(first, second)
    prefix = 0
    for a, b in zip(first, second):
        if a != b or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def _ngrams(text: str, size: int) -> Set[str]:
    padded = f"{'#' * (size - 1)}{text}{'#' * (size - 1)}" if size > 1 else text
    return {padded[i : i + size] for i in range(len(padded) - size + 1)} if padded else set()


def ngram_similarity(first: str, second: str, size: int = 3, case_sensitive: bool = False) -> float:
    """Dice coefficient over character n-grams (default trigrams)."""
    if size < 1:
        raise ValueError(f"n-gram size must be positive, got {size}")
    if not case_sensitive:
        first = first.lower()
        second = second.lower()
    if first == second:
        return 1.0
    first_grams = _ngrams(first, size)
    second_grams = _ngrams(second, size)
    if not first_grams or not second_grams:
        return 0.0
    overlap = len(first_grams & second_grams)
    return 2.0 * overlap / (len(first_grams) + len(second_grams))


def longest_common_prefix(first: str, second: str) -> int:
    """Length of the longest common prefix of two strings."""
    length = 0
    for a, b in zip(first, second):
        if a != b:
            break
        length += 1
    return length

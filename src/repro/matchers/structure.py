"""Structural-context element matcher.

A simplified Cupid-style ``TreeMatch``: the structural context of an element is
approximated by the names of its parent, its children and its root path, and
two elements are similar when these neighborhoods are similar.  The matcher is
*structural* — it needs the surrounding trees, which it obtains from the
:class:`~repro.matchers.base.MatchContext` — and is used by the non-generic
clustered-matching variant discussed in Sec. 2.3 of the paper (localized
matchers before clustering, structural matchers after) and by the ablation
benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import MatcherError
from repro.matchers.base import ElementMatcher, MatchContext
from repro.matchers.string_metrics import fuzzy_similarity
from repro.schema.node import SchemaNode
from repro.schema.tree import SchemaTree


def _best_alignment_score(first: Sequence[str], second: Sequence[str]) -> float:
    """Greedy best-pair alignment of two name lists, averaged over the shorter list."""
    if not first or not second:
        return 0.0
    shorter, longer = (first, second) if len(first) <= len(second) else (second, first)
    available = [name.lower() for name in longer]
    total = 0.0
    for name in shorter:
        lowered = name.lower()
        best_index = -1
        best_score = 0.0
        for index, candidate in enumerate(available):
            score = fuzzy_similarity(lowered, candidate, case_sensitive=True)
            if score > best_score:
                best_score = score
                best_index = index
        total += best_score
        if best_index >= 0:
            available.pop(best_index)
    return total / len(shorter)


class StructuralContextMatcher(ElementMatcher):
    """Compares the tree neighborhoods of two elements.

    The score is a weighted mix of three components:

    * parent-name similarity (weight ``parent_weight``),
    * greedy alignment of children names (weight ``children_weight``),
    * greedy alignment of root-path names (weight ``path_weight``).

    Weights must sum to 1.  Elements lacking a component (e.g. the root has no
    parent) redistribute its weight over the remaining components.
    """

    name = "structure"
    is_structural = True

    def __init__(self, parent_weight: float = 0.3, children_weight: float = 0.4, path_weight: float = 0.3) -> None:
        total = parent_weight + children_weight + path_weight
        if abs(total - 1.0) > 1e-9:
            raise MatcherError(
                f"structure matcher weights must sum to 1.0, got {total:.4f}"
            )
        if min(parent_weight, children_weight, path_weight) < 0:
            raise MatcherError("structure matcher weights must be non-negative")
        self.parent_weight = parent_weight
        self.children_weight = children_weight
        self.path_weight = path_weight

    @staticmethod
    def _parent_name(tree: SchemaTree, node_id: int) -> Optional[str]:
        parent_id = tree.parent_id(node_id)
        return None if parent_id is None else tree.node(parent_id).name

    @staticmethod
    def _children_names(tree: SchemaTree, node_id: int) -> List[str]:
        return [tree.node(child_id).name for child_id in tree.children_ids(node_id)]

    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        if context is None:
            # Without tree context the matcher can only fall back to comparing
            # the two names, which at least keeps it usable standalone.
            return fuzzy_similarity(personal_node.name, repository_node.name)

        personal_tree = context.personal_schema
        repository_tree = context.repository.tree(context.repository_ref.tree_id)
        personal_id = context.personal_node_id
        repository_id = context.repository_ref.node_id

        components: List[tuple[float, float]] = []  # (weight, score)

        personal_parent = self._parent_name(personal_tree, personal_id)
        repository_parent = self._parent_name(repository_tree, repository_id)
        if personal_parent is not None and repository_parent is not None:
            components.append((self.parent_weight, fuzzy_similarity(personal_parent, repository_parent)))

        personal_children = self._children_names(personal_tree, personal_id)
        repository_children = self._children_names(repository_tree, repository_id)
        if personal_children and repository_children:
            components.append((self.children_weight, _best_alignment_score(personal_children, repository_children)))
        elif not personal_children and not repository_children:
            # Both leaves: structurally compatible.
            components.append((self.children_weight, 1.0))

        personal_path = personal_tree.root_path_names(personal_id)[:-1]
        repository_path = repository_tree.root_path_names(repository_id)[:-1]
        if personal_path and repository_path:
            components.append((self.path_weight, _best_alignment_score(personal_path, repository_path)))

        if not components:
            return 0.0
        total_weight = sum(weight for weight, _ in components)
        return sum(weight * score for weight, score in components) / total_weight

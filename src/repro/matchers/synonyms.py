"""A small synonym dictionary for element-name matching.

COMA and similar systems consult synonym dictionaries as one of their name
hints.  This module provides a symmetric, group-based dictionary with a default
vocabulary tuned to the domains used by the workload generator (bibliographic,
commerce, contact data), plus lookup helpers used by the token name matcher.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

#: Groups of mutually synonymous tokens.  Kept lowercase; tokens are compared
#: after :func:`repro.matchers.tokenize.normalize_name` style normalization.
_DEFAULT_GROUPS: List[Set[str]] = [
    {"author", "writer", "creator"},
    {"book", "publication", "title", "volume"},
    {"name", "label", "designation"},
    {"address", "location", "residence"},
    {"email", "mail", "e-mail", "electronicmail"},
    {"phone", "telephone", "tel"},
    {"price", "cost", "amount", "charge"},
    {"customer", "client", "buyer", "purchaser"},
    {"order", "purchase"},
    {"item", "product", "article", "good"},
    {"quantity", "count", "number", "amount"},
    {"shipment", "delivery", "shipping"},
    {"person", "individual", "people"},
    {"company", "organization", "firm", "business"},
    {"employee", "worker", "staff"},
    {"date", "day"},
    {"identifier", "id", "key", "code"},
    {"city", "town"},
    {"country", "nation", "state"},
    {"zipcode", "postcode", "postalcode", "zip"},
    {"publisher", "press"},
    {"journal", "magazine", "periodical"},
    {"library", "repository", "collection", "archive"},
    {"chapter", "section"},
    {"summary", "abstract", "description"},
    {"subject", "topic", "category", "genre"},
    {"page", "sheet"},
    {"first", "given"},
    {"last", "family", "sur"},
    {"street", "road", "avenue"},
    {"department", "division", "unit"},
    {"salary", "wage", "pay"},
    {"invoice", "bill", "receipt"},
]


class SynonymDictionary:
    """A symmetric synonym lookup built from groups of equivalent tokens."""

    def __init__(self, groups: Iterable[Iterable[str]] = ()) -> None:
        self._group_of: Dict[str, int] = {}
        self._groups: List[Set[str]] = []
        for group in groups:
            self.add_group(group)

    def add_group(self, tokens: Iterable[str]) -> None:
        """Register a group of mutually synonymous tokens (merged if overlapping)."""
        normalized = {token.strip().lower() for token in tokens if token and token.strip()}
        if len(normalized) < 2:
            return
        overlapping = {self._group_of[token] for token in normalized if token in self._group_of}
        if overlapping:
            # Merge all touched groups plus the new tokens into one.
            merged: Set[str] = set(normalized)
            for index in overlapping:
                merged |= self._groups[index]
                self._groups[index] = set()
            self._groups.append(merged)
        else:
            self._groups.append(normalized)
        new_index = len(self._groups) - 1
        for token in self._groups[new_index]:
            self._group_of[token] = new_index

    def are_synonyms(self, first: str, second: str) -> bool:
        """True when the two tokens belong to the same synonym group."""
        first = first.strip().lower()
        second = second.strip().lower()
        if first == second:
            return True
        first_group = self._group_of.get(first)
        return first_group is not None and first_group == self._group_of.get(second)

    def synonyms_of(self, token: str) -> FrozenSet[str]:
        """All synonyms of a token (excluding the token itself)."""
        token = token.strip().lower()
        index = self._group_of.get(token)
        if index is None:
            return frozenset()
        return frozenset(self._groups[index] - {token})

    def __contains__(self, token: str) -> bool:
        return token.strip().lower() in self._group_of

    def __len__(self) -> int:
        return sum(1 for group in self._groups if group)


def default_synonyms() -> SynonymDictionary:
    """The built-in synonym dictionary used by examples and the token matcher."""
    return SynonymDictionary(_DEFAULT_GROUPS)

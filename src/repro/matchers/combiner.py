"""Combining several element matchers into one similarity index.

Systems like COMA and LSD run many matchers per element pair and combine the
individual indexes into one — most commonly by weighted average, sometimes by
max.  :class:`MatcherCombination` bundles a set of matchers with a combiner and
behaves like a single :class:`~repro.matchers.base.ElementMatcher`, so the rest
of the pipeline does not care how many hints are in play.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MatcherError
from repro.matchers.base import ElementMatcher, MatchContext
from repro.schema.node import SchemaNode


class ScoreCombiner(abc.ABC):
    """Reduces a list of per-matcher scores into a single similarity index."""

    @abc.abstractmethod
    def combine(self, scores: Sequence[Tuple[str, float]]) -> float:
        """Combine ``(matcher name, score)`` pairs into one index in [0, 1]."""


class AverageCombiner(ScoreCombiner):
    """Unweighted mean of all matcher scores."""

    def combine(self, scores: Sequence[Tuple[str, float]]) -> float:
        if not scores:
            return 0.0
        return sum(score for _, score in scores) / len(scores)


class MaxCombiner(ScoreCombiner):
    """Maximum matcher score (optimistic combination)."""

    def combine(self, scores: Sequence[Tuple[str, float]]) -> float:
        if not scores:
            return 0.0
        return max(score for _, score in scores)


class WeightedCombiner(ScoreCombiner):
    """Weighted average with per-matcher weights.

    Weights need not sum to 1; they are normalized.  Matchers missing from the
    weight table get weight 0 (i.e. are ignored), which makes it easy to switch
    hints on and off in ablations without rebuilding the matcher list.
    """

    def __init__(self, weights: Dict[str, float]) -> None:
        if not weights:
            raise MatcherError("WeightedCombiner requires at least one weight")
        if any(weight < 0 for weight in weights.values()):
            raise MatcherError("matcher weights must be non-negative")
        if sum(weights.values()) <= 0:
            raise MatcherError("at least one matcher weight must be positive")
        self.weights = dict(weights)

    def combine(self, scores: Sequence[Tuple[str, float]]) -> float:
        weighted = [(self.weights.get(name, 0.0), score) for name, score in scores]
        total_weight = sum(weight for weight, _ in weighted)
        if total_weight <= 0:
            return 0.0
        return sum(weight * score for weight, score in weighted) / total_weight


class MatcherCombination(ElementMatcher):
    """A set of element matchers fused by a :class:`ScoreCombiner`.

    The combination reports itself as structural when any member matcher is
    structural, so the pipeline knows whether tree context must be supplied.
    """

    name = "combination"

    def __init__(self, matchers: Sequence[ElementMatcher], combiner: Optional[ScoreCombiner] = None) -> None:
        if not matchers:
            raise MatcherError("a matcher combination needs at least one matcher")
        names = [matcher.name for matcher in matchers]
        if len(set(names)) != len(names):
            raise MatcherError(f"matcher names must be unique within a combination, got {names}")
        self.matchers = list(matchers)
        self.combiner = combiner or AverageCombiner()
        self.is_structural = any(matcher.is_structural for matcher in matchers)

    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        scores = [
            (matcher.name, matcher(personal_node, repository_node, context))
            for matcher in self.matchers
        ]
        return self.combiner.combine(scores)

    def breakdown(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> Dict[str, float]:
        """Per-matcher scores for one element pair (useful in reports and debugging)."""
        return {
            matcher.name: matcher(personal_node, repository_node, context)
            for matcher in self.matchers
        }

"""Name-based (localized) element matchers.

:class:`FuzzyNameMatcher` is the matcher Bellflower uses in the paper: a
normalized fuzzy string similarity over raw element names.

:class:`TokenNameMatcher` is a COMA-style refinement: names are tokenized,
abbreviations expanded and tokens aligned greedily, with an optional synonym
dictionary granting full credit to synonymous tokens.  It is not needed to
reproduce the paper's numbers but completes the Fig. 2 architecture and is used
by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MatcherError
from repro.matchers.base import ElementMatcher, MatchContext
from repro.matchers.string_metrics import fuzzy_similarity
from repro.matchers.synonyms import SynonymDictionary
from repro.matchers.tokenize import expand_abbreviations, tokenize_name
from repro.schema.node import SchemaNode


class FuzzyNameMatcher(ElementMatcher):
    """Bellflower's ``sim(n, n')``: normalized fuzzy similarity of element names.

    Parameters
    ----------
    case_sensitive:
        Whether name comparison distinguishes case (the paper's web schemas mix
        conventions, so the default is case-insensitive).
    cache_size:
        Name pairs are memoized because a matching run compares each personal
        node name against every repository name, and repositories repeat names
        heavily; the cache is bounded to avoid unbounded growth on adversarial
        inputs.
    """

    name = "fuzzy-name"
    is_structural = False

    def __init__(self, case_sensitive: bool = False, cache_size: int = 200_000) -> None:
        if cache_size < 0:
            raise MatcherError("cache_size must be non-negative")
        self.case_sensitive = case_sensitive
        self._cache_size = cache_size
        self._cache: Dict[Tuple[str, str], float] = {}

    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        first = personal_node.name if self.case_sensitive else personal_node.name.lower()
        second = repository_node.name if self.case_sensitive else repository_node.name.lower()
        key = (first, second)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        score = fuzzy_similarity(first, second, case_sensitive=True)
        if self._cache_size and len(self._cache) < self._cache_size:
            self._cache[key] = score
        return score


class TokenNameMatcher(ElementMatcher):
    """Token-level name matcher with abbreviation expansion and synonyms.

    The similarity is a greedy best-pair alignment of the two token lists: each
    token of the shorter list is matched to its most similar unused token of the
    other list (synonyms score 1.0, otherwise fuzzy similarity), and the mean
    alignment score is scaled by the token-count overlap so that
    ``authorName`` vs ``author`` scores high but not 1.0.
    """

    name = "token-name"
    is_structural = False

    def __init__(
        self,
        synonyms: Optional[SynonymDictionary] = None,
        expand: bool = True,
        coverage_weight: float = 0.5,
    ) -> None:
        if not 0.0 <= coverage_weight <= 1.0:
            raise MatcherError(f"coverage_weight must be in [0, 1], got {coverage_weight}")
        self.synonyms = synonyms
        self.expand = expand
        self.coverage_weight = coverage_weight

    def _tokens(self, name: str) -> List[str]:
        tokens = tokenize_name(name)
        if self.expand:
            tokens = expand_abbreviations(tokens)
        return tokens

    def _token_similarity(self, first: str, second: str) -> float:
        if first == second:
            return 1.0
        if self.synonyms is not None and self.synonyms.are_synonyms(first, second):
            return 1.0
        return fuzzy_similarity(first, second, case_sensitive=True)

    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        first_tokens = self._tokens(personal_node.name)
        second_tokens = self._tokens(repository_node.name)
        if not first_tokens or not second_tokens:
            return 0.0
        if first_tokens == second_tokens:
            return 1.0

        shorter, longer = (first_tokens, second_tokens) if len(first_tokens) <= len(second_tokens) else (second_tokens, first_tokens)
        available = list(longer)
        alignment_scores: List[float] = []
        for token in shorter:
            best_index = -1
            best_score = 0.0
            for index, candidate in enumerate(available):
                score = self._token_similarity(token, candidate)
                if score > best_score:
                    best_score = score
                    best_index = index
            alignment_scores.append(best_score)
            if best_index >= 0 and best_score > 0.0:
                available.pop(best_index)

        alignment = sum(alignment_scores) / len(alignment_scores)
        coverage = len(shorter) / len(longer)
        return alignment * (1.0 - self.coverage_weight + self.coverage_weight * coverage)

"""Name-based (localized) element matchers.

:class:`FuzzyNameMatcher` is the matcher Bellflower uses in the paper: a
normalized fuzzy string similarity over raw element names.

:class:`TokenNameMatcher` is a COMA-style refinement: names are tokenized,
abbreviations expanded and tokens aligned greedily, with an optional synonym
dictionary granting full credit to synonymous tokens.  It is not needed to
reproduce the paper's numbers but completes the Fig. 2 architecture and is used
by the ablation benchmarks.

:class:`NGramNameMatcher` scores names by the Dice coefficient over padded
character trigrams, the classic blocking-friendly measure from the
approximate-string-join literature.

All three are :class:`~repro.matchers.base.BatchElementMatcher`\\ s: they score
each *unique* repository name once per personal name (fanning the score out to
every node sharing the name through the
:class:`~repro.matchers.index.RepositoryNameIndex`), memoize per-query score
tables across personal schemas, and — where the metric admits a lossless bound
— prune candidates before running any dynamic program.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import MatcherError
from repro.kernels.strings import batch_fuzzy_scores
from repro.matchers.base import BatchElementMatcher, MatchContext
from repro.matchers.index import LRUMemo, RepositoryNameIndex
from repro.matchers.string_metrics import _ngrams, fuzzy_similarity, ngram_similarity
from repro.matchers.synonyms import SynonymDictionary
from repro.matchers.tokenize import expand_abbreviations, tokenize_name
from repro.schema.node import SchemaNode
from repro.schema.repository import SchemaRepository
from repro.utils.counters import CounterSet


class FuzzyNameMatcher(BatchElementMatcher):
    """Bellflower's ``sim(n, n')``: normalized fuzzy similarity of element names.

    Parameters
    ----------
    case_sensitive:
        Whether name comparison distinguishes case (the paper's web schemas mix
        conventions, so the default is case-insensitive).
    cache_size:
        Name pairs are memoized because a matching run compares each personal
        node name against every repository name, and repositories repeat names
        heavily; the cache is bounded to avoid unbounded growth on adversarial
        inputs.
    memo_size:
        Batch queries additionally memoize the whole per-query score table
        (keyed by index version, query name and threshold), which serves the
        repeated-query scenario — many personal schemas probing one repository
        — without recomputing a single kernel call.
    """

    name = "fuzzy-name"
    is_structural = False

    def __init__(
        self,
        case_sensitive: bool = False,
        cache_size: int = 200_000,
        memo_size: int = 4096,
    ) -> None:
        if cache_size < 0:
            raise MatcherError("cache_size must be non-negative")
        self.case_sensitive = case_sensitive
        self._cache_size = cache_size
        self._cache: Dict[Tuple[str, str], float] = {}
        self._batch_memo = LRUMemo(memo_size)

    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        first = personal_node.name if self.case_sensitive else personal_node.name.lower()
        second = repository_node.name if self.case_sensitive else repository_node.name.lower()
        key = (first, second)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        score = fuzzy_similarity(first, second, case_sensitive=True)
        if self._cache_size and len(self._cache) < self._cache_size:
            self._cache[key] = score
        return score

    # -- batch interface ---------------------------------------------------------

    def name_index(self, repository: SchemaRepository) -> RepositoryNameIndex:
        return RepositoryNameIndex.for_repository(repository, case_sensitive=self.case_sensitive)

    def batch_scores(
        self,
        personal_name: str,
        index: RepositoryNameIndex,
        threshold: float,
        counters: Optional[CounterSet] = None,
    ) -> Mapping[int, float]:
        query = personal_name if self.case_sensitive else personal_name.lower()
        memo_key = (index.version, query, threshold)
        cached = self._batch_memo.get(memo_key)
        if cached is not None:
            if counters is not None:
                counters.increment("index_hits", index.node_count)
            return cached

        candidate_ids, pruned_pairs = index.fuzzy_candidates(query, threshold)
        keys = index.keys
        kernel_runs = len(candidate_ids)
        # The vectorized kernel scores all survivors in one DP sweep; it is
        # bit-identical to the scalar loop (tests/kernels pins this) and
        # declines — returning None — for tiny batches or unusual inputs.
        scores = batch_fuzzy_scores(
            query, index.packed_name_table(), candidate_ids, threshold
        )
        if scores is None:
            scores = {}
            for name_id in candidate_ids:
                score = fuzzy_similarity(
                    query, keys[name_id], case_sensitive=True, min_similarity=threshold
                )
                if score > 0.0:
                    scores[name_id] = score
        if counters is not None:
            counters.increment("comparisons_pruned", pruned_pairs)
            counters.increment("index_hits", index.node_count - pruned_pairs - kernel_runs)
            counters.increment("similarity_kernel_calls", kernel_runs)
        self._batch_memo.put(memo_key, scores)
        return scores


class TokenNameMatcher(BatchElementMatcher):
    """Token-level name matcher with abbreviation expansion and synonyms.

    The similarity is a greedy best-pair alignment of the two token lists: each
    token of the shorter list is matched to its most similar unused token of the
    other list (synonyms score 1.0, otherwise fuzzy similarity), and the mean
    alignment score is scaled by the token-count overlap so that
    ``authorName`` vs ``author`` scores high but not 1.0.

    The batch path indexes *raw* names (tokenization is case-normalizing but
    not case-invariant, so folding keys here could merge names that tokenize
    differently); it deduplicates and memoizes but — the alignment score
    admitting no edit-distance bound — does not prefilter.
    """

    name = "token-name"
    is_structural = False

    def __init__(
        self,
        synonyms: Optional[SynonymDictionary] = None,
        expand: bool = True,
        coverage_weight: float = 0.5,
        memo_size: int = 1024,
    ) -> None:
        if not 0.0 <= coverage_weight <= 1.0:
            raise MatcherError(f"coverage_weight must be in [0, 1], got {coverage_weight}")
        self.synonyms = synonyms
        self.expand = expand
        self.coverage_weight = coverage_weight
        self._batch_memo = LRUMemo(memo_size)
        # Token lists of an index's unique keys, computed once per index
        # snapshot (keyed by version) instead of once per query.
        self._key_tokens_memo = LRUMemo(4)

    def _tokens(self, name: str) -> List[str]:
        tokens = tokenize_name(name)
        if self.expand:
            tokens = expand_abbreviations(tokens)
        return tokens

    def _token_similarity(self, first: str, second: str) -> float:
        if first == second:
            return 1.0
        if self.synonyms is not None and self.synonyms.are_synonyms(first, second):
            return 1.0
        return fuzzy_similarity(first, second, case_sensitive=True)

    def _score_names(self, first_name: str, second_name: str) -> float:
        return self._score_token_lists(self._tokens(first_name), self._tokens(second_name))

    def _score_token_lists(self, first_tokens: List[str], second_tokens: List[str]) -> float:
        if not first_tokens or not second_tokens:
            return 0.0
        if first_tokens == second_tokens:
            return 1.0

        shorter, longer = (first_tokens, second_tokens) if len(first_tokens) <= len(second_tokens) else (second_tokens, first_tokens)
        available = list(longer)
        alignment_scores: List[float] = []
        for token in shorter:
            best_index = -1
            best_score = 0.0
            for index, candidate in enumerate(available):
                score = self._token_similarity(token, candidate)
                if score > best_score:
                    best_score = score
                    best_index = index
            alignment_scores.append(best_score)
            if best_index >= 0 and best_score > 0.0:
                available.pop(best_index)

        alignment = sum(alignment_scores) / len(alignment_scores)
        coverage = len(shorter) / len(longer)
        return alignment * (1.0 - self.coverage_weight + self.coverage_weight * coverage)

    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        return self._score_names(personal_node.name, repository_node.name)

    # -- batch interface ---------------------------------------------------------

    def name_index(self, repository: SchemaRepository) -> RepositoryNameIndex:
        return RepositoryNameIndex.for_repository(repository, case_sensitive=True)

    def batch_scores(
        self,
        personal_name: str,
        index: RepositoryNameIndex,
        threshold: float,
        counters: Optional[CounterSet] = None,
    ) -> Mapping[int, float]:
        memo_key = (index.version, personal_name)
        cached = self._batch_memo.get(memo_key)
        if cached is not None:
            if counters is not None:
                counters.increment("index_hits", index.node_count)
            return cached
        key_tokens = self._key_tokens_memo.get(index.version)
        if key_tokens is None:
            key_tokens = [self._tokens(key) for key in index.keys]
            self._key_tokens_memo.put(index.version, key_tokens)
        query_tokens = self._tokens(personal_name)
        scores: Dict[int, float] = {}
        for name_id, tokens in enumerate(key_tokens):
            score = self._score_token_lists(query_tokens, tokens)
            if score > 0.0:
                scores[name_id] = score
        if counters is not None:
            counters.increment("index_hits", index.node_count - index.unique_name_count)
            counters.increment("similarity_kernel_calls", index.unique_name_count)
        self._batch_memo.put(memo_key, scores)
        return scores


class NGramNameMatcher(BatchElementMatcher):
    """Dice coefficient over padded character n-grams of the element names.

    With the default trigrams, the batch path computes the overlap counts
    directly from the name index's posting lists: names sharing no trigram
    with the query have a Dice score of exactly 0 and are never materialized,
    which makes the scan output-sensitive.  Non-default sizes fall back to the
    per-pair loop (``supports_batch`` is false) because the shared index only
    carries trigrams.
    """

    name = "ngram-name"
    is_structural = False

    def __init__(self, size: int = 3, case_sensitive: bool = False, memo_size: int = 4096) -> None:
        if size < 1:
            raise MatcherError(f"n-gram size must be positive, got {size}")
        self.size = size
        self.case_sensitive = case_sensitive
        self._batch_memo = LRUMemo(memo_size)

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self.size == RepositoryNameIndex.gram_size

    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        return ngram_similarity(
            personal_node.name,
            repository_node.name,
            size=self.size,
            case_sensitive=self.case_sensitive,
        )

    # -- batch interface ---------------------------------------------------------

    def name_index(self, repository: SchemaRepository) -> RepositoryNameIndex:
        return RepositoryNameIndex.for_repository(repository, case_sensitive=self.case_sensitive)

    def batch_scores(
        self,
        personal_name: str,
        index: RepositoryNameIndex,
        threshold: float,
        counters: Optional[CounterSet] = None,
    ) -> Mapping[int, float]:
        query = personal_name if self.case_sensitive else personal_name.lower()
        memo_key = (index.version, query)
        cached = self._batch_memo.get(memo_key)
        if cached is not None:
            if counters is not None:
                counters.increment("index_hits", index.node_count)
            return cached
        query_grams = _ngrams(query, self.size)
        counts = index.gram_overlap_counts(query_grams)
        query_gram_count = len(query_grams)
        scores: Dict[int, float] = {}
        # Padding guarantees every name (the empty one included) produces at
        # least one trigram, so an identical name always shares grams with the
        # query and lands in ``counts`` — the equality fast path below covers
        # ``ngram_similarity``'s ``first == second`` case exhaustively.
        for name_id, overlap in counts.items():
            if index.keys[name_id] == query:
                scores[name_id] = 1.0
                continue
            candidate_gram_count = index.gram_count(name_id)
            if query_gram_count and candidate_gram_count:
                scores[name_id] = 2.0 * overlap / (query_gram_count + candidate_gram_count)
        if counters is not None:
            computed = len(counts)
            zero_overlap_pairs = index.node_count - sum(index.fanout(name_id) for name_id in counts)
            counters.increment("comparisons_pruned", zero_overlap_pairs)
            counters.increment("index_hits", index.node_count - zero_overlap_pairs - computed)
            counters.increment("similarity_kernel_calls", computed)
        self._batch_memo.put(memo_key, scores)
        return scores

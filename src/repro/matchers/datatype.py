"""Data-type compatibility matcher.

COMA and Cupid use data-type compatibility as a cheap localized hint: an
element declared ``xs:int`` is more likely to correspond to another numeric
element than to a date.  The matcher scores pairs of coarse
:class:`~repro.schema.node.DataType` values with a symmetric compatibility
table; unknown types contribute a neutral score so that purely structural
schemas are not penalized.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.matchers.base import ElementMatcher, MatchContext
from repro.schema.node import DataType, SchemaNode

#: Symmetric compatibility scores between type families.  Missing pairs score 0.
_COMPATIBILITY: Dict[FrozenSet[DataType], float] = {}


def _set_compatibility(first: DataType, second: DataType, score: float) -> None:
    _COMPATIBILITY[frozenset((first, second))] = score


for _type in DataType:
    _set_compatibility(_type, _type, 1.0)

_set_compatibility(DataType.INTEGER, DataType.DECIMAL, 0.9)
_set_compatibility(DataType.INTEGER, DataType.STRING, 0.4)
_set_compatibility(DataType.DECIMAL, DataType.STRING, 0.4)
_set_compatibility(DataType.BOOLEAN, DataType.STRING, 0.3)
_set_compatibility(DataType.BOOLEAN, DataType.INTEGER, 0.5)
_set_compatibility(DataType.DATE, DataType.DATETIME, 0.9)
_set_compatibility(DataType.TIME, DataType.DATETIME, 0.8)
_set_compatibility(DataType.DATE, DataType.TIME, 0.4)
_set_compatibility(DataType.DATE, DataType.STRING, 0.4)
_set_compatibility(DataType.DATETIME, DataType.STRING, 0.4)
_set_compatibility(DataType.TIME, DataType.STRING, 0.4)
_set_compatibility(DataType.ANY_URI, DataType.STRING, 0.6)
_set_compatibility(DataType.ID, DataType.IDREF, 0.7)
_set_compatibility(DataType.ID, DataType.STRING, 0.4)
_set_compatibility(DataType.IDREF, DataType.STRING, 0.4)
_set_compatibility(DataType.ID, DataType.INTEGER, 0.5)


class DataTypeMatcher(ElementMatcher):
    """Scores the compatibility of two elements' declared simple types.

    Parameters
    ----------
    unknown_score:
        Score used when either side's type is :attr:`DataType.UNKNOWN` (complex
        content or undeclared).  A neutral 0.5 keeps the matcher from vetoing
        pairs it has no information about.
    """

    name = "datatype"
    is_structural = False

    def __init__(self, unknown_score: float = 0.5) -> None:
        if not 0.0 <= unknown_score <= 1.0:
            raise ValueError(f"unknown_score must be in [0, 1], got {unknown_score}")
        self.unknown_score = unknown_score

    def similarity(
        self,
        personal_node: SchemaNode,
        repository_node: SchemaNode,
        context: Optional[MatchContext] = None,
    ) -> float:
        first = personal_node.datatype
        second = repository_node.datatype
        if first is DataType.UNKNOWN or second is DataType.UNKNOWN:
            return self.unknown_score
        return _COMPATIBILITY.get(frozenset((first, second)), 0.0)


def compatibility(first: DataType, second: DataType) -> float:
    """The raw compatibility score between two data types (symmetric)."""
    return _COMPATIBILITY.get(frozenset((first, second)), 0.0)

"""Element matching stage: producing *mapping elements*.

Step 2-3 of the paper's architecture: every personal-schema element is compared
against every repository element; pairs whose similarity index clears a
threshold become *mapping elements*.  :class:`MappingElementSets` is the data
structure handed to the clusterer (step c) and to the mapping generator (step
4): for each personal node it stores the candidate repository nodes with their
similarity indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import MatcherError
from repro.matchers.base import BatchElementMatcher, ElementMatcher, MatchContext
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.schema.tree import SchemaTree
from repro.utils.counters import CounterSet


@dataclass(frozen=True, order=True)
class MappingElement:
    """One candidate element mapping ``n -> n'`` with its similarity index.

    Ordering is by (personal node, global repository id) so sorted collections
    of mapping elements are deterministic regardless of discovery order.
    """

    personal_node_id: int
    ref: RepositoryNodeRef
    similarity: float = field(compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappingElement(n={self.personal_node_id}, n'={self.ref.global_id}, "
            f"sim={self.similarity:.3f})"
        )


class MappingElementSets:
    """Mapping elements grouped by personal-schema node (the paper's ``MEn`` sets)."""

    def __init__(self, personal_node_ids: Sequence[int]) -> None:
        if not personal_node_ids:
            raise MatcherError("a mapping-element collection needs at least one personal node")
        self._sets: Dict[int, List[MappingElement]] = {node_id: [] for node_id in personal_node_ids}

    def add(self, element: MappingElement) -> None:
        if element.personal_node_id not in self._sets:
            raise MatcherError(
                f"personal node {element.personal_node_id} is not part of this matching problem"
            )
        self._sets[element.personal_node_id].append(element)

    @property
    def personal_node_ids(self) -> List[int]:
        return list(self._sets)

    def elements_for(self, personal_node_id: int) -> List[MappingElement]:
        """The node's mapping elements, in insertion order.

        Returns the live internal list (no defensive copy — this is on the hot
        path of every clusterer and generator); callers must treat it as
        read-only.
        """
        elements = self._sets.get(personal_node_id)
        if elements is None:
            raise MatcherError(f"personal node {personal_node_id} is not part of this matching problem")
        return elements

    def all_elements(self) -> List[MappingElement]:
        """Every mapping element as a fresh flat list.

        Prefer :meth:`iter_all_elements` on hot read paths that only iterate.
        """
        return [element for elements in self._sets.values() for element in elements]

    def iter_all_elements(self) -> Iterator[MappingElement]:
        """Iterate over every mapping element without materializing a list."""
        for elements in self._sets.values():
            yield from elements

    def sizes(self) -> Dict[int, int]:
        """Number of mapping elements per personal node (``|MEn|``)."""
        return {node_id: len(elements) for node_id, elements in self._sets.items()}

    def total(self) -> int:
        return sum(len(elements) for elements in self._sets.values())

    def smallest_set_node(self) -> int:
        """The personal node with the fewest mapping elements (``MEmin``).

        Used by the paper's centroid initialization heuristic: every element of
        the smallest set is declared an initial centroid.
        """
        return min(self._sets, key=lambda node_id: (len(self._sets[node_id]), node_id))

    def restrict_to_refs(self, global_ids: Set[int]) -> "MappingElementSets":
        """A copy containing only mapping elements whose repository node is in ``global_ids``.

        The mapping generator calls this once per cluster: the cluster's member
        set restricts the candidate lists.  The copy is built by filtering the
        already-validated, already-ordered internal lists directly — elements
        this collection holds need no re-validation, and filtering preserves
        their order.
        """
        restricted = MappingElementSets.__new__(MappingElementSets)
        restricted._sets = {
            node_id: [element for element in elements if element.ref.global_id in global_ids]
            for node_id, elements in self._sets.items()
        }
        return restricted

    def is_complete(self) -> bool:
        """True when every personal node has at least one candidate (a *useful* set)."""
        return all(self._sets.values())

    def __iter__(self) -> Iterator[Tuple[int, List[MappingElement]]]:
        return iter(self._sets.items())

    def __len__(self) -> int:
        return len(self._sets)


class MappingElementSelector:
    """Runs an element matcher over (personal schema × repository) and selects candidates.

    Parameters
    ----------
    matcher:
        The element matcher (or combination) producing similarity indexes.
    threshold:
        Minimum similarity index for a pair to become a mapping element.  The
        paper keeps pairs with a "non-zero" index; a small positive threshold is
        the practical equivalent and keeps candidate lists (and thus the search
        space) meaningful.
    top_k:
        Optional cap on the number of candidates kept per personal node (best
        ``k`` by similarity).  ``None`` keeps everything above the threshold.
    use_batch:
        ``None`` (the default) dispatches to the indexed batch path whenever
        the matcher is a :class:`BatchElementMatcher`; ``False`` forces the
        exact per-pair loop (useful for benchmarking and equivalence tests);
        ``True`` requires batch support and raises when the matcher has none.
        Both paths produce identical mapping-element sets and identical
        ``element_comparisons`` / ``mapping_elements`` counters; the batch
        path additionally reports ``comparisons_pruned`` (pairs eliminated by
        the lossless prefilter) and ``index_hits`` (pairs answered from the
        name index's fan-out or the cross-query memo).
    """

    def __init__(
        self,
        matcher: ElementMatcher,
        threshold: float = 0.5,
        top_k: Optional[int] = None,
        use_batch: Optional[bool] = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise MatcherError(f"selection threshold must be in [0, 1], got {threshold}")
        if top_k is not None and top_k < 1:
            raise MatcherError(f"top_k must be positive when given, got {top_k}")
        self.matcher = matcher
        self.threshold = threshold
        self.top_k = top_k
        self.use_batch = use_batch

    def _batch_capable(self) -> bool:
        return (
            isinstance(self.matcher, BatchElementMatcher)
            and bool(getattr(self.matcher, "supports_batch", False))
            and not getattr(self.matcher, "is_structural", False)
        )

    def select(
        self,
        personal_schema: SchemaTree,
        repository: SchemaRepository,
        counters: Optional[CounterSet] = None,
    ) -> MappingElementSets:
        """Compare every personal node with every repository node and keep candidates."""
        counters = counters if counters is not None else CounterSet()
        personal_ids = list(personal_schema.node_ids())
        sets = MappingElementSets(personal_ids)

        if self.use_batch or (self.use_batch is None and self._batch_capable()):
            if not self._batch_capable():
                raise MatcherError(
                    f"matcher {self.matcher!r} does not support batch selection"
                )
            return self._select_batch(personal_schema, repository, sets, personal_ids, counters)

        needs_context = getattr(self.matcher, "is_structural", False)
        for personal_id in personal_ids:
            personal_node = personal_schema.node(personal_id)
            candidates: List[MappingElement] = []
            for ref, repository_node in repository.iter_nodes():
                context = None
                if needs_context:
                    context = MatchContext(
                        personal_schema=personal_schema,
                        repository=repository,
                        personal_node_id=personal_id,
                        repository_ref=ref,
                    )
                score = self.matcher(personal_node, repository_node, context)
                counters.increment("element_comparisons")
                if score >= self.threshold and score > 0.0:
                    candidates.append(
                        MappingElement(personal_node_id=personal_id, ref=ref, similarity=score)
                    )
            self._keep(sets, personal_id, candidates, counters)
        return sets

    def _select_batch(
        self,
        personal_schema: SchemaTree,
        repository: SchemaRepository,
        sets: MappingElementSets,
        personal_ids: Sequence[int],
        counters: CounterSet,
    ) -> MappingElementSets:
        """The indexed, deduplicated, pruned element-matching pipeline.

        Each personal name is scored once per *unique* repository name (see
        :meth:`BatchElementMatcher.batch_scores`) and the score is fanned out
        to every node sharing the name.  The matcher's prefilter only removes
        pairs that provably score below the threshold, and survivors carry the
        exact similarity, so the produced sets — including ``top_k``
        tie-breaking, which orders by ``(-similarity, global_id)`` exactly as
        the naive loop does — are identical to the per-pair scan.
        """
        matcher = self.matcher
        assert isinstance(matcher, BatchElementMatcher)
        index = matcher.name_index(repository)
        node_count = repository.node_count
        threshold = self.threshold
        for personal_id in personal_ids:
            personal_node = personal_schema.node(personal_id)
            scores = matcher.batch_scores(personal_node.name, index, threshold, counters)
            counters.increment("element_comparisons", node_count)
            candidates: List[MappingElement] = []
            for name_id, score in scores.items():
                if score >= threshold and score > 0.0:
                    for ref in index.refs_for_id(name_id):
                        candidates.append(
                            MappingElement(personal_node_id=personal_id, ref=ref, similarity=score)
                        )
            self._keep(sets, personal_id, candidates, counters)
        return sets

    def _keep(
        self,
        sets: MappingElementSets,
        personal_id: int,
        candidates: List[MappingElement],
        counters: CounterSet,
    ) -> None:
        """Apply the shared top-k / ordering / counting tail of both paths."""
        if self.top_k is not None and len(candidates) > self.top_k:
            candidates.sort(key=lambda element: (-element.similarity, element.ref.global_id))
            candidates = candidates[: self.top_k]
        for element in sorted(candidates):
            sets.add(element)
        counters.increment("mapping_elements", len(candidates))

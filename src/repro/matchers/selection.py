"""Element matching stage: producing *mapping elements*.

Step 2-3 of the paper's architecture: every personal-schema element is compared
against every repository element; pairs whose similarity index clears a
threshold become *mapping elements*.  :class:`MappingElementSets` is the data
structure handed to the clusterer (step c) and to the mapping generator (step
4): for each personal node it stores the candidate repository nodes with their
similarity indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import MatcherError
from repro.matchers.base import ElementMatcher, MatchContext
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.schema.tree import SchemaTree
from repro.utils.counters import CounterSet


@dataclass(frozen=True, order=True)
class MappingElement:
    """One candidate element mapping ``n -> n'`` with its similarity index.

    Ordering is by (personal node, global repository id) so sorted collections
    of mapping elements are deterministic regardless of discovery order.
    """

    personal_node_id: int
    ref: RepositoryNodeRef
    similarity: float = field(compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappingElement(n={self.personal_node_id}, n'={self.ref.global_id}, "
            f"sim={self.similarity:.3f})"
        )


class MappingElementSets:
    """Mapping elements grouped by personal-schema node (the paper's ``MEn`` sets)."""

    def __init__(self, personal_node_ids: Sequence[int]) -> None:
        if not personal_node_ids:
            raise MatcherError("a mapping-element collection needs at least one personal node")
        self._sets: Dict[int, List[MappingElement]] = {node_id: [] for node_id in personal_node_ids}

    def add(self, element: MappingElement) -> None:
        if element.personal_node_id not in self._sets:
            raise MatcherError(
                f"personal node {element.personal_node_id} is not part of this matching problem"
            )
        self._sets[element.personal_node_id].append(element)

    @property
    def personal_node_ids(self) -> List[int]:
        return list(self._sets)

    def elements_for(self, personal_node_id: int) -> List[MappingElement]:
        if personal_node_id not in self._sets:
            raise MatcherError(f"personal node {personal_node_id} is not part of this matching problem")
        return list(self._sets[personal_node_id])

    def all_elements(self) -> List[MappingElement]:
        return [element for elements in self._sets.values() for element in elements]

    def sizes(self) -> Dict[int, int]:
        """Number of mapping elements per personal node (``|MEn|``)."""
        return {node_id: len(elements) for node_id, elements in self._sets.items()}

    def total(self) -> int:
        return sum(len(elements) for elements in self._sets.values())

    def smallest_set_node(self) -> int:
        """The personal node with the fewest mapping elements (``MEmin``).

        Used by the paper's centroid initialization heuristic: every element of
        the smallest set is declared an initial centroid.
        """
        return min(self._sets, key=lambda node_id: (len(self._sets[node_id]), node_id))

    def restrict_to_refs(self, global_ids: set[int]) -> "MappingElementSets":
        """A copy containing only mapping elements whose repository node is in ``global_ids``.

        The mapping generator calls this once per cluster: the cluster's member
        set restricts the candidate lists.
        """
        restricted = MappingElementSets(self.personal_node_ids)
        for node_id, elements in self._sets.items():
            for element in elements:
                if element.ref.global_id in global_ids:
                    restricted.add(element)
        return restricted

    def is_complete(self) -> bool:
        """True when every personal node has at least one candidate (a *useful* set)."""
        return all(self._sets.values())

    def __iter__(self) -> Iterator[Tuple[int, List[MappingElement]]]:
        return iter(self._sets.items())

    def __len__(self) -> int:
        return len(self._sets)


class MappingElementSelector:
    """Runs an element matcher over (personal schema × repository) and selects candidates.

    Parameters
    ----------
    matcher:
        The element matcher (or combination) producing similarity indexes.
    threshold:
        Minimum similarity index for a pair to become a mapping element.  The
        paper keeps pairs with a "non-zero" index; a small positive threshold is
        the practical equivalent and keeps candidate lists (and thus the search
        space) meaningful.
    top_k:
        Optional cap on the number of candidates kept per personal node (best
        ``k`` by similarity).  ``None`` keeps everything above the threshold.
    """

    def __init__(
        self,
        matcher: ElementMatcher,
        threshold: float = 0.5,
        top_k: Optional[int] = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise MatcherError(f"selection threshold must be in [0, 1], got {threshold}")
        if top_k is not None and top_k < 1:
            raise MatcherError(f"top_k must be positive when given, got {top_k}")
        self.matcher = matcher
        self.threshold = threshold
        self.top_k = top_k

    def select(
        self,
        personal_schema: SchemaTree,
        repository: SchemaRepository,
        counters: Optional[CounterSet] = None,
    ) -> MappingElementSets:
        """Compare every personal node with every repository node and keep candidates."""
        counters = counters if counters is not None else CounterSet()
        personal_ids = list(personal_schema.node_ids())
        sets = MappingElementSets(personal_ids)

        needs_context = getattr(self.matcher, "is_structural", False)
        for personal_id in personal_ids:
            personal_node = personal_schema.node(personal_id)
            candidates: List[MappingElement] = []
            for ref, repository_node in repository.iter_nodes():
                context = None
                if needs_context:
                    context = MatchContext(
                        personal_schema=personal_schema,
                        repository=repository,
                        personal_node_id=personal_id,
                        repository_ref=ref,
                    )
                score = self.matcher(personal_node, repository_node, context)
                counters.increment("element_comparisons")
                if score >= self.threshold and score > 0.0:
                    candidates.append(
                        MappingElement(personal_node_id=personal_id, ref=ref, similarity=score)
                    )
            if self.top_k is not None and len(candidates) > self.top_k:
                candidates.sort(key=lambda element: (-element.similarity, element.ref.global_id))
                candidates = candidates[: self.top_k]
            for element in sorted(candidates):
                sets.add(element)
            counters.increment("mapping_elements", len(candidates))
        return sets

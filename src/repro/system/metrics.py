"""Effectiveness and efficiency metrics for clustered schema matching.

Two families of metrics reproduce the paper's evaluation:

* **preservation** (Figures 5 and 6): the percentage of the mappings found by
  the exhaustive, non-clustered run that a clustered run also finds, measured
  at increasing objective-function thresholds — the key effectiveness claim is
  that highly ranked mappings are preserved preferentially;
* **efficiency** (Table 1): search-space reduction, partial-mapping counts and
  stage times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.mapping.model import SchemaMapping
from repro.system.results import MatchResult


@dataclass(frozen=True)
class PreservationPoint:
    """One point of a preservation curve."""

    threshold: float
    reference_count: int
    preserved_count: int

    @property
    def fraction(self) -> float:
        if self.reference_count == 0:
            return 1.0
        return self.preserved_count / self.reference_count


def preserved_fraction(
    reference: Sequence[SchemaMapping],
    clustered: Sequence[SchemaMapping],
    threshold: float,
) -> PreservationPoint:
    """Fraction of reference mappings with score >= threshold also found by the clustered run."""
    reference_above = [mapping for mapping in reference if mapping.score >= threshold]
    clustered_signatures = {mapping.signature() for mapping in clustered if mapping.score >= threshold}
    preserved = sum(1 for mapping in reference_above if mapping.signature() in clustered_signatures)
    return PreservationPoint(
        threshold=threshold,
        reference_count=len(reference_above),
        preserved_count=preserved,
    )


def preservation_curve(
    reference: Sequence[SchemaMapping],
    clustered: Sequence[SchemaMapping],
    thresholds: Iterable[float] = (0.75, 0.80, 0.85, 0.90, 0.95, 1.00),
) -> List[PreservationPoint]:
    """The Figure 5 / Figure 6 series: preservation per objective threshold."""
    return [preserved_fraction(reference, clustered, threshold) for threshold in sorted(thresholds)]


def search_space_reduction(clustered: MatchResult, reference: MatchResult) -> float:
    """Clustered search space as a fraction of the non-clustered search space."""
    if reference.search_space == 0:
        return 0.0
    return clustered.search_space / reference.search_space


def partial_mapping_reduction(clustered: MatchResult, reference: MatchResult) -> float:
    """Ratio of partial mappings generated (reference / clustered): the paper's factor 6.8."""
    if clustered.partial_mappings == 0:
        return float("inf") if reference.partial_mappings else 1.0
    return reference.partial_mappings / clustered.partial_mappings


def efficiency_summary(results: Sequence[MatchResult]) -> List[Dict[str, object]]:
    """Table 1 rows (properties of clusters + generator performance) for several runs.

    The reference for the percentage column is the run with the largest search
    space — in the paper's setup that is always the non-clustered "tree" run.
    """
    if not results:
        return []
    reference_space = max(result.search_space for result in results)
    rows = []
    for result in results:
        rows.append(
            {
                "variant": result.variant_name,
                "useful_clusters": result.useful_cluster_count,
                "avg_mapping_elements": round(result.average_mapping_elements_per_cluster, 1),
                "search_space": result.search_space,
                "search_space_pct": (result.search_space / reference_space) if reference_space else 0.0,
                "partial_mappings": result.partial_mappings,
                "mappings": result.mapping_count,
                "clustering_seconds": round(result.clustering_seconds, 3),
                "generation_seconds": round(result.generation_seconds, 3),
                "total_seconds": round(result.clustering_seconds + result.generation_seconds, 3),
            }
        )
    return rows

"""The Bellflower matching system (Figs. 2 and 3 of the paper).

:class:`Bellflower` wires the stages together:

1. **element matching** — the element matcher compares every personal-schema
   node with every repository node; pairs above the element threshold become
   mapping elements;
2. **clustering** (optional) — the clusterer groups the mapping elements into
   clusters; without a clusterer every repository tree acts as one cluster
   (the paper's "tree clusters" / non-clustered configuration);
3. **mapping generation** — the generator searches every *useful* cluster for
   complete schema mappings with ``Δ(s, t) >= δ``;
4. **ranking** — per-cluster mappings are merged into one list ordered by
   similarity index.

The facade exposes the intermediate products (candidate sets, clusters) so the
experiment harness can reuse one element-matching pass across many clustering
variants, exactly as the paper's experiments do.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api.envelope import PROTOCOL_VERSION
from repro.api.matcher import MatcherAPIMixin
from repro.api.validation import validate_query, validate_top_k
from repro.clustering.baselines import TreeClusterer
from repro.clustering.kmeans import Clusterer, ClusteringResult
from repro.errors import ConfigurationError
from repro.labeling.distance import RepositoryDistanceOracle
from repro.mapping.base import GenerationResult, MappingGenerator
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.engine import TopKPool
from repro.mapping.model import MappingProblem
from repro.mapping.ranking import merge_ranked
from repro.mapping.search_space import candidate_search_space
from repro.matchers.base import ElementMatcher
from repro.matchers.name import FuzzyNameMatcher
from repro.matchers.selection import MappingElementSelector, MappingElementSets
from repro.objective.base import ObjectiveFunction
from repro.objective.bellflower import BellflowerObjective
from repro.resilience.deadline import Deadline
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree
from repro.system.results import ClusterReport, MatchResult
from repro.utils.counters import CounterSet
from repro.utils.executor import TaskExecutor
from repro.utils.timers import StageTimer


class Bellflower(MatcherAPIMixin):
    """An experimental clustered schema matching system.

    Parameters
    ----------
    repository:
        The repository schema ``R`` (a forest of schema trees).
    matcher:
        Element matcher; defaults to the paper's fuzzy name matcher.
    objective:
        Objective function; defaults to :class:`BellflowerObjective` with
        ``α = 0.5``.
    generator:
        Mapping generator; defaults to Branch-and-Bound.
    clusterer:
        The clustering component.  ``None`` selects the non-clustered baseline
        (one cluster per repository tree).
    element_threshold:
        Minimum element similarity for a pair to become a mapping element.
    delta:
        Default objective-function threshold ``δ`` for :meth:`match`.
    use_batch_matching:
        Forwarded to :class:`MappingElementSelector`: ``None`` (default) uses
        the indexed batch element-matching path whenever the matcher supports
        it, ``False`` forces the exact per-pair scan.  Both produce identical
        mapping elements; the batch path is several times faster on large
        repositories.
    executor:
        Optional :class:`~repro.utils.executor.TaskExecutor` the per-cluster
        mapping generation is dispatched through (``None`` runs clusters
        serially inline).  Executors return results in cluster order, so the
        merged ranking, counters and reports are identical for every executor.
    """

    backend_kind = "bellflower"

    def __init__(
        self,
        repository: SchemaRepository,
        matcher: Optional[ElementMatcher] = None,
        objective: Optional[ObjectiveFunction] = None,
        generator: Optional[MappingGenerator] = None,
        clusterer: Optional[Clusterer] = None,
        element_threshold: float = 0.6,
        delta: float = 0.75,
        variant_name: Optional[str] = None,
        use_batch_matching: Optional[bool] = None,
        executor: Optional[TaskExecutor] = None,
    ) -> None:
        if repository.tree_count == 0:
            raise ConfigurationError("Bellflower needs a non-empty schema repository")
        if not 0.0 <= delta <= 1.0:
            raise ConfigurationError(f"delta must be in [0, 1], got {delta}")
        self.repository = repository
        self.matcher = matcher or FuzzyNameMatcher()
        self.objective = objective or BellflowerObjective(alpha=0.5)
        self.generator = generator or BranchAndBoundGenerator()
        self.clusterer = clusterer or TreeClusterer()
        self.element_threshold = element_threshold
        self.delta = delta
        self.variant_name = variant_name or self.clusterer.name
        self.use_batch_matching = use_batch_matching
        self.executor = executor
        self.oracle = RepositoryDistanceOracle(repository)

    # -- stage 1: element matching -------------------------------------------------

    def element_matching(
        self, personal_schema: SchemaTree, counters: Optional[CounterSet] = None
    ) -> MappingElementSets:
        """Run the element matcher over (personal schema × repository)."""
        selector = MappingElementSelector(
            self.matcher,
            threshold=self.element_threshold,
            use_batch=self.use_batch_matching,
        )
        return selector.select(personal_schema, self.repository, counters=counters)

    # -- stage 2: clustering ---------------------------------------------------------

    def cluster_candidates(self, candidates: MappingElementSets) -> ClusteringResult:
        """Group mapping elements into clusters using the configured clusterer."""
        return self.clusterer.cluster(candidates, self.repository, oracle=self.oracle)

    # -- stage 3 + 4: mapping generation and ranking -----------------------------------

    def generate_mappings(
        self,
        personal_schema: SchemaTree,
        candidates: MappingElementSets,
        clustering: ClusteringResult,
        delta: float,
        top_k: Optional[int] = None,
        shared_pool: Optional[TopKPool] = None,
        deadline: Optional[Deadline] = None,
    ) -> tuple[GenerationResult, List[ClusterReport]]:
        """Search every useful cluster and merge the per-cluster results.

        The per-cluster searches are independent (each gets its own restricted
        candidate sets and its own result object); when an ``executor`` is
        configured they are dispatched through it and gathered back *in
        cluster order*, so mappings, counters and reports are bit-identical to
        the serial path.  With an executor, ``elapsed_seconds`` remains the
        sum of per-cluster search times (CPU time), which can exceed the
        wall-clock ``generation`` stage timer.

        ``top_k`` restricts the search to the ``k`` best mappings overall: the
        per-cluster problems then share one
        :class:`~repro.mapping.engine.TopKPool` incumbent, so a good mapping
        found in any cluster raises the pruning floor for all of them.  The
        returned *mappings* stay deterministic across executors (see
        :mod:`repro.mapping.engine`); the pruning *counters* become
        timing-dependent under concurrent executors.

        ``shared_pool`` widens the incumbent sharing beyond this query: a
        caller coordinating several pipelines over one logical repository —
        the shard fan-out — passes the same pool (or a per-shard
        :class:`~repro.mapping.engine.TranslatingTopKPool` view over it) to
        every one of them, so a good mapping found by any participating
        service raises the pruning floor for all.  Ignored without ``top_k``
        (the complete ``Δ >= δ`` search admits no incumbent pruning).

        ``deadline`` makes the per-cluster searches *anytime*: each problem
        polls it cooperatively and, on expiry, contributes the mappings it
        realized so far.  The merged counters then carry ``deadline_expired``
        (the number of cluster searches cut short) and the caller marks the
        result partial.
        """
        validate_top_k(top_k)
        pool = None
        if top_k is not None:
            pool = shared_pool if shared_pool is not None else TopKPool(top_k)
        merged = GenerationResult()
        reports: List[ClusterReport] = []
        problems: List[MappingProblem] = []
        for cluster in clustering.clusters:
            restricted = cluster.restricted_candidates(candidates)
            if not restricted.is_complete():
                continue
            problems.append(
                MappingProblem(
                    personal_schema=personal_schema,
                    candidates=restricted,
                    oracle=self.oracle,
                    objective=self.objective,
                    delta=delta,
                    cluster_id=cluster.cluster_id,
                    top_k=top_k,
                    shared_pool=pool,
                    deadline=deadline,
                )
            )
            reports.append(
                ClusterReport(
                    cluster_id=cluster.cluster_id,
                    tree_id=cluster.tree_id,
                    member_count=cluster.size,
                    mapping_element_count=restricted.total(),
                    search_space=candidate_search_space(restricted),
                )
            )
        if self.executor is not None:
            results = self.executor.map(self.generator.generate, problems)
        else:
            results = [self.generator.generate(problem) for problem in problems]
        per_cluster_mappings = []
        for result in results:
            per_cluster_mappings.append(result.mappings)
            merged.counters.merge(result.counters)
            merged.elapsed_seconds += result.elapsed_seconds
        merged.mappings = merge_ranked(per_cluster_mappings)
        if top_k is not None:
            del merged.mappings[top_k:]
        return merged, reports

    # -- the full pipeline --------------------------------------------------------------

    def _match_schema(
        self,
        personal_schema: SchemaTree,
        delta: Optional[float] = None,
        candidates: Optional[MappingElementSets] = None,
        top_k: Optional[int] = None,
        shared_pool: Optional[TopKPool] = None,
        deadline: Optional[Deadline] = None,
    ) -> MatchResult:
        """Run the full pipeline and return a :class:`MatchResult`.

        This is the legacy entry point behind the public :meth:`match
        <repro.api.matcher.MatcherAPIMixin.match>` shim — ``match(tree,
        delta=..., top_k=...)`` lands here unchanged, ``match(MatchRequest)``
        lands here via the typed dispatch, so both paths are bit-identical.

        ``candidates`` allows the caller to supply a precomputed element-matching
        result, which the experiment harness uses to hold the element stage
        constant while varying the clusterer.  ``top_k`` limits the result to
        the ``k`` best mappings and lets the generator prune against the best
        scores found so far across *all* clusters (cross-cluster bound
        sharing); ``None`` keeps the complete ``Δ >= δ`` semantics.
        ``shared_pool`` additionally shares that incumbent with sibling
        pipelines of the same logical query (shard fan-out; see
        :meth:`generate_mappings`).  ``deadline`` bounds the generation stage
        cooperatively; an expired deadline yields a result with
        ``partial=True`` holding the mappings found so far.
        """
        if personal_schema.node_count == 0:
            raise ConfigurationError("cannot match an empty personal schema")
        validate_query(delta, top_k)
        effective_delta = self.delta if delta is None else delta
        timers = StageTimer()
        counters = CounterSet()

        if candidates is None:
            with timers.measure("element_matching"):
                candidates = self.element_matching(personal_schema, counters=counters)
        counters.set("mapping_elements", candidates.total())

        with timers.measure("clustering"):
            clustering = self.cluster_candidates(candidates)

        with timers.measure("generation"):
            generation, reports = self.generate_mappings(
                personal_schema,
                candidates,
                clustering,
                effective_delta,
                top_k=top_k,
                shared_pool=shared_pool,
                deadline=deadline,
            )

        counters.merge(generation.counters)
        counters.merge(clustering.counters)
        partial = generation.counters.get("deadline_expired") > 0
        if partial:
            counters.set("partials_returned", 1)

        return MatchResult(
            variant_name=self.variant_name,
            mappings=generation.mappings,
            candidates=candidates,
            clustering=clustering,
            generation=generation,
            timers=timers,
            cluster_reports=reports,
            counters=counters,
            top_k=top_k,
            partial=partial,
        )

    def _match_many_schemas(
        self,
        personal_schemas: List[SchemaTree],
        delta: Optional[float] = None,
        top_k: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[MatchResult]:
        """Answer a batch of queries; result ``i`` belongs to schema ``i``.

        The pipeline is stateless across queries, so batching here means
        in-batch deduplication only: structurally identical schemas (same
        :func:`~repro.service.fingerprint.schema_fingerprint`) collapse to
        one pipeline run and share the result object.  The service layers
        add cross-batch caching on top of this.

        The fingerprint covers exactly what the *bundled* matchers read; a
        custom matcher may read node ``properties`` too, so dedup is only
        applied when the configured matcher is a recognized bundled one —
        custom matchers get one independent run per schema.
        """
        validate_query(delta, top_k)
        # Imported lazily: the service package imports this module at load
        # time, so a module-level import would be circular.
        from repro.service.fingerprint import schema_fingerprint
        from repro.service.snapshot import _matcher_config

        if _matcher_config(self.matcher) is None:
            return [
                self._match_schema(schema, delta=delta, top_k=top_k, deadline=deadline)
                for schema in personal_schemas
            ]
        results: List[Optional[MatchResult]] = [None] * len(personal_schemas)
        computed: Dict[str, MatchResult] = {}
        for index, schema in enumerate(personal_schemas):
            fingerprint = schema_fingerprint(schema)
            result = computed.get(fingerprint)
            if result is None:
                result = self._match_schema(schema, delta=delta, top_k=top_k, deadline=deadline)
                computed[fingerprint] = result
            results[index] = result
        return results  # type: ignore[return-value]

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The uniform operational summary (the pipeline itself is stateless)."""
        summary: Dict[str, object] = dict(self.repository.summary())
        summary["backend"] = self.backend_kind
        summary["protocol_version"] = PROTOCOL_VERSION
        summary["variant"] = self.variant_name
        summary["executor"] = "serial" if self.executor is None else self.executor.name
        summary["delta"] = self.delta
        summary["element_threshold"] = self.element_threshold
        return summary

    def _describe_extra(self) -> Dict[str, object]:
        return {
            "variant": self.variant_name,
            "generator": self.generator.name,
            "matcher": type(self.matcher).__name__,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bellflower(repository={self.repository.name!r}, clusterer={self.clusterer.name!r}, "
            f"generator={self.generator.name!r}, delta={self.delta})"
        )

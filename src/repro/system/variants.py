"""Clustering-variant presets used throughout the experiments.

The paper's evaluation compares four configurations that differ only in the
clusterer:

* ``small``  — k-means with join reclustering at distance threshold 2,
* ``medium`` — k-means with join reclustering at distance threshold 3,
* ``large``  — k-means with join reclustering at distance threshold 4,
* ``tree``   — no clustering: every repository tree is one cluster.

Each preset also removes clusters with fewer than 2 members (the paper applies
remove reclustering or drops tiny clusters manually), so the three k-means
variants correspond to the *join & remove* configuration of Figure 4 with
different join thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.clustering.baselines import FragmentClusterer, TreeClusterer
from repro.clustering.convergence import RelaxedConvergence
from repro.clustering.initialization import MEminInitializer
from repro.clustering.kmeans import Clusterer, KMeansClusterer
from repro.clustering.reclustering import (
    JoinReclustering,
    NoReclustering,
    RemoveReclustering,
    join_and_remove,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClusteringVariant:
    """A named clusterer factory (factories keep variants stateless and reusable)."""

    name: str
    description: str
    factory: Callable[[], Clusterer]

    def make_clusterer(self) -> Clusterer:
        return self.factory()


def _kmeans_variant(join_threshold: float, min_size: int = 2) -> Clusterer:
    return KMeansClusterer(
        initializer=MEminInitializer(),
        reclustering=join_and_remove(distance_threshold=join_threshold, min_size=min_size),
        convergence=RelaxedConvergence(),
    )


_VARIANTS: Dict[str, ClusteringVariant] = {
    "small": ClusteringVariant(
        name="small",
        description="k-means, join threshold 2 (many small clusters)",
        factory=lambda: _kmeans_variant(join_threshold=2.0),
    ),
    "medium": ClusteringVariant(
        name="medium",
        description="k-means, join threshold 3",
        factory=lambda: _kmeans_variant(join_threshold=3.0),
    ),
    "large": ClusteringVariant(
        name="large",
        description="k-means, join threshold 4 (fewer, larger clusters)",
        factory=lambda: _kmeans_variant(join_threshold=4.0),
    ),
    "tree": ClusteringVariant(
        name="tree",
        description="no clustering: one cluster per repository tree",
        factory=TreeClusterer,
    ),
    "fragments": ClusteringVariant(
        name="fragments",
        description="offline fragments of at most 20 nodes (Rahm-style baseline)",
        factory=lambda: FragmentClusterer(max_fragment_size=20),
    ),
    "no-reclustering": ClusteringVariant(
        name="no-reclustering",
        description="k-means without any reclustering (Figure 4 baseline)",
        factory=lambda: KMeansClusterer(
            initializer=MEminInitializer(),
            reclustering=NoReclustering(),
            convergence=RelaxedConvergence(),
        ),
    ),
    "join-only": ClusteringVariant(
        name="join-only",
        description="k-means with join reclustering only (Figure 4 middle series)",
        factory=lambda: KMeansClusterer(
            initializer=MEminInitializer(),
            reclustering=JoinReclustering(distance_threshold=3.0),
            convergence=RelaxedConvergence(),
        ),
    ),
}


def clustering_variant(name: str) -> ClusteringVariant:
    """Look up a preset by name (raises :class:`ConfigurationError` for unknown names)."""
    try:
        return _VARIANTS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown clustering variant {name!r}; available: {sorted(_VARIANTS)}"
        ) from exc


def standard_variants() -> List[ClusteringVariant]:
    """The four variants of the paper's Table 1, in the paper's order."""
    return [clustering_variant(name) for name in ("small", "medium", "large", "tree")]


def available_variant_names() -> List[str]:
    return sorted(_VARIANTS)

"""Result objects returned by a Bellflower matching run.

A :class:`MatchResult` carries everything the paper's Table 1 reports for one
(clustering variant, matching problem) pair: the ranked mappings, the
properties of the useful clusters, the search-space size, the partial-mapping
counters of the generator, and per-stage wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clustering.kmeans import ClusteringResult
from repro.mapping.base import GenerationResult
from repro.mapping.model import SchemaMapping
from repro.matchers.selection import MappingElementSets
from repro.utils.counters import CounterSet
from repro.utils.timers import StageTimer


@dataclass(frozen=True)
class ClusterReport:
    """Summary of one useful cluster (used by reports and Figure 4's histogram)."""

    cluster_id: int
    tree_id: int
    member_count: int
    mapping_element_count: int
    search_space: int


@dataclass
class MatchResult:
    """The outcome of one matching run (one variant, one personal schema)."""

    variant_name: str
    mappings: List[SchemaMapping]
    candidates: MappingElementSets
    clustering: Optional[ClusteringResult]
    generation: GenerationResult
    timers: StageTimer = field(default_factory=StageTimer)
    cluster_reports: List[ClusterReport] = field(default_factory=list)
    counters: CounterSet = field(default_factory=CounterSet)
    #: The ``top_k`` the query ran with (``None``: complete ``Δ >= δ`` search).
    top_k: Optional[int] = None
    #: The query deadline expired: ``mappings`` are the incumbents found so
    #: far, not the complete ranking.  Partial results are never cached.
    partial: bool = False
    #: One or more shards were skipped (dead / breaker-open); the ranking
    #: covers only the surviving shards listed out of ``skipped_shards``.
    degraded: bool = False
    #: Shard ids the sharded service skipped for a degraded answer.
    skipped_shards: Tuple[int, ...] = ()

    # -- Table 1a style properties -------------------------------------------------

    @property
    def useful_cluster_count(self) -> int:
        return len(self.cluster_reports)

    @property
    def average_mapping_elements_per_cluster(self) -> float:
        if not self.cluster_reports:
            return 0.0
        return sum(report.mapping_element_count for report in self.cluster_reports) / len(self.cluster_reports)

    @property
    def search_space(self) -> int:
        """Total number of complete mappings the generator would have to consider."""
        return sum(report.search_space for report in self.cluster_reports)

    # -- Table 1b style properties -------------------------------------------------

    @property
    def partial_mappings(self) -> int:
        return self.generation.partial_mappings

    @property
    def mapping_count(self) -> int:
        return len(self.mappings)

    @property
    def clustering_seconds(self) -> float:
        return self.timers.elapsed().get("clustering", 0.0)

    @property
    def generation_seconds(self) -> float:
        return self.timers.elapsed().get("generation", 0.0)

    @property
    def element_matching_seconds(self) -> float:
        return self.timers.elapsed().get("element_matching", 0.0)

    @property
    def total_seconds(self) -> float:
        return self.timers.total()

    def mappings_above(self, delta: float) -> List[SchemaMapping]:
        """Mappings whose score clears ``delta`` (the result already honours the run's δ)."""
        return [mapping for mapping in self.mappings if mapping.score >= delta]

    def signatures(self) -> set:
        """Canonical identities of all discovered mappings (for preservation metrics)."""
        return {mapping.signature() for mapping in self.mappings}

    def ranking_key(self) -> List[tuple]:
        """Canonical (score, signature) list — the bit-identity of a ranking.

        Two results with equal ranking keys hold the same mappings, in the
        same order, with identical scores.  The service-layer equivalence
        tests, the incremental example and the snapshot benchmark all compare
        results through this one definition so the notion of "bit-identical"
        cannot drift between them.
        """
        return [(mapping.score, mapping.signature()) for mapping in self.mappings]

    def summary(self) -> Dict[str, object]:
        """A flat dictionary used by reports and benchmark output."""
        return {
            "variant": self.variant_name,
            "useful_clusters": self.useful_cluster_count,
            "avg_mapping_elements": round(self.average_mapping_elements_per_cluster, 1),
            "search_space": self.search_space,
            "partial_mappings": self.partial_mappings,
            "mappings": self.mapping_count,
            "clustering_seconds": round(self.clustering_seconds, 3),
            "generation_seconds": round(self.generation_seconds, 3),
            "total_seconds": round(self.total_seconds, 3),
        }

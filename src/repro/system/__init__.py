"""The Bellflower matching system: pipeline, configuration presets and metrics.

This package wires the substrates together into the two architectures of the
paper: the non-clustered pipeline of Fig. 2 (element matching → mapping
generation) and the clustered pipeline of Fig. 3 (element matching →
clustering → per-cluster mapping generation → merged ranked list).
"""

from repro.system.bellflower import Bellflower
from repro.system.results import ClusterReport, MatchResult
from repro.system.variants import ClusteringVariant, clustering_variant, standard_variants
from repro.system.metrics import (
    PreservationPoint,
    efficiency_summary,
    preservation_curve,
    preserved_fraction,
    search_space_reduction,
)

__all__ = [
    "Bellflower",
    "ClusterReport",
    "ClusteringVariant",
    "MatchResult",
    "PreservationPoint",
    "clustering_variant",
    "efficiency_summary",
    "preservation_curve",
    "preserved_fraction",
    "search_space_reduction",
    "standard_variants",
]

"""Bucketed histograms.

Figure 4 of the paper reports cluster sizes in exponentially growing buckets
([1,1], [2,3], [4,7], [8,15], ... [128,255]).  :class:`Histogram` reproduces the
same bucketing so the figure's series can be regenerated verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def exponential_buckets(max_value: int) -> List[Tuple[int, int]]:
    """Build the paper's power-of-two buckets covering ``[1, max_value]``.

    >>> exponential_buckets(20)
    [(1, 1), (2, 3), (4, 7), (8, 15), (16, 31)]
    """
    if max_value < 1:
        raise ValueError("max_value must be at least 1")
    buckets: List[Tuple[int, int]] = []
    low = 1
    while low <= max_value:
        high = low * 2 - 1
        buckets.append((low, high))
        low *= 2
    return buckets


@dataclass(frozen=True)
class HistogramBucket:
    low: int
    high: int
    count: int

    @property
    def label(self) -> str:
        return f"[{self.low},{self.high}]"


class Histogram:
    """Counts of integer observations grouped into fixed buckets."""

    def __init__(self, buckets: Sequence[Tuple[int, int]]) -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket")
        previous_high = 0
        for low, high in buckets:
            if low > high:
                raise ValueError(f"bucket [{low},{high}] has low > high")
            if low <= previous_high:
                raise ValueError("histogram buckets must be sorted and disjoint")
            previous_high = high
        self._buckets = list(buckets)
        self._counts = [0] * len(buckets)
        self._overflow = 0

    @classmethod
    def exponential(cls, max_value: int) -> "Histogram":
        return cls(exponential_buckets(max_value))

    def add(self, value: int) -> None:
        for index, (low, high) in enumerate(self._buckets):
            if low <= value <= high:
                self._counts[index] += 1
                return
        self._overflow += 1

    def add_all(self, values: Iterable[int]) -> None:
        for value in values:
            self.add(value)

    @property
    def total(self) -> int:
        return sum(self._counts) + self._overflow

    @property
    def overflow(self) -> int:
        return self._overflow

    def buckets(self) -> List[HistogramBucket]:
        return [
            HistogramBucket(low=low, high=high, count=count)
            for (low, high), count in zip(self._buckets, self._counts)
        ]

    def as_dict(self) -> Dict[str, int]:
        return {bucket.label: bucket.count for bucket in self.buckets()}

    def render(self, width: int = 40) -> str:
        """Render a textual bar chart (one line per bucket)."""
        peak = max(self._counts) if any(self._counts) else 1
        lines = []
        for bucket in self.buckets():
            bar = "#" * int(round(width * bucket.count / peak)) if peak else ""
            lines.append(f"{bucket.label:>10} {bucket.count:>6} {bar}")
        if self._overflow:
            lines.append(f"{'overflow':>10} {self._overflow:>6}")
        return "\n".join(lines)

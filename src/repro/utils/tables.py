"""ASCII table rendering for experiment reports.

The experiment harness prints the same rows the paper reports (Table 1a/1b and
the series behind Figures 4-6).  Rendering is deliberately dependency-free and
stable so the output can be diffed between runs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_number(value: float | int, decimals: int = 1) -> str:
    """Format a number compactly: integers without decimals, floats with ``decimals``."""
    if isinstance(value, bool):  # guard: bool is an int subclass
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if value != value:  # NaN
        return "nan"
    return f"{value:,.{decimals}f}"


def format_percent(fraction: float, decimals: int = 1) -> str:
    """Format a fraction in [0, 1] as a percentage string."""
    return f"{100.0 * fraction:.{decimals}f}%"


class AsciiTable:
    """A minimal, monospaced table with a header row.

    Example
    -------
    >>> table = AsciiTable(["variant", "clusters"])
    >>> table.add_row(["small", 251])
    >>> print(table.render())  # doctest: +ELLIPSIS
    variant | clusters
    ...
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [value if isinstance(value, str) else format_number(value) if isinstance(value, (int, float)) else str(value) for value in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            return " | ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(render_row(self.headers))
        lines.append("-+-".join("-" * width for width in widths))
        lines.extend(render_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

"""Pluggable task executors for per-cluster query execution.

Mapping generation is embarrassingly parallel across clusters: each useful
cluster yields an independent :class:`~repro.mapping.model.MappingProblem`,
and the merged ranking only depends on the *set* of per-cluster results, not
on the order they finished in.  :class:`TaskExecutor` abstracts how that
fan-out runs; :class:`Bellflower <repro.system.bellflower.Bellflower>` and
:class:`MatchingService <repro.service.MatchingService>` accept any
implementation.

Determinism contract: :meth:`TaskExecutor.map` must return results in the
order of the input items (like the built-in ``map``), so callers can merge
per-cluster counters and mappings in cluster order regardless of scheduling.
Both implementations below honour it; a custom executor must too, or match
results stop being reproducible.

The library is pure Python, so :class:`ThreadPoolTaskExecutor` is bounded by
the GIL for CPU-heavy generators — it exists for the service scenario where
per-cluster work blocks on shared caches or the workload mixes many small
clusters.  :class:`ProcessPoolTaskExecutor` is the CPU-parallel backend: it
ships picklable task payloads to worker processes in contiguous, input-ordered
chunks (one pickle per chunk, so payloads sharing large state — e.g. the
per-cluster mapping problems of one query, which all reference the same
repository — serialize that state once per worker, not once per task) and
reassembles the results in input order, preserving the determinism contract.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


class TaskExecutor(abc.ABC):
    """Executes independent tasks, returning results in input order."""

    name: str = "executor"

    @abc.abstractmethod
    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> List[_ResultT]:
        """Apply ``fn`` to every item; result ``i`` corresponds to item ``i``."""

    def close(self) -> None:
        """Release any pooled resources (idempotent; default is a no-op)."""

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class DelegatingExecutor(TaskExecutor):
    """Base class for executors that wrap another executor.

    Forwards ``map``/``close`` to the inner executor untouched; subclasses
    override ``map`` to interpose (fault injection, instrumentation) while
    inheriting the inner executor's ordering contract.
    """

    name = "delegating"

    def __init__(self, inner: TaskExecutor) -> None:
        self.inner = inner

    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> List[_ResultT]:
        return self.inner.map(fn, items)

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.inner!r})"


class SerialExecutor(TaskExecutor):
    """Run tasks inline on the calling thread (the default everywhere)."""

    name = "serial"

    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> List[_ResultT]:
        return [fn(item) for item in items]


class ThreadPoolTaskExecutor(TaskExecutor):
    """Dispatch tasks to a shared :class:`concurrent.futures.ThreadPoolExecutor`.

    The pool is created lazily on first use and reused across queries (a
    service process handles many queries; paying thread start-up per query
    would drown the win).  ``close()`` shuts the pool down; the executor can
    be used as a context manager.
    """

    name = "thread-pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive when given, got {max_workers}")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-query"
            )
        return self._pool

    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> List[_ResultT]:
        if len(items) <= 1:
            # No parallelism to extract; skip the future machinery.
            return [fn(item) for item in items]
        # Gathering futures in submission order preserves the determinism
        # contract even though completion order is scheduler-dependent.
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadPoolTaskExecutor(max_workers={self.max_workers})"


def _run_task_chunk(fn: Callable[[_ItemT], _ResultT], chunk: List[_ItemT]) -> List[_ResultT]:
    """Worker-side body of :meth:`ProcessPoolTaskExecutor.map` (module-level: picklable)."""
    return [fn(item) for item in chunk]


def split_into_chunks(items: Sequence[_ItemT], chunk_count: int) -> List[List[_ItemT]]:
    """Split ``items`` into at most ``chunk_count`` contiguous, balanced chunks.

    Contiguity is what keeps the process executor deterministic: flattening
    the per-chunk results in submission order reproduces the input order
    exactly.  Sizes differ by at most one (the first ``len % count`` chunks
    get the extra item).
    """
    if chunk_count < 1:
        raise ValueError(f"chunk_count must be positive, got {chunk_count}")
    if not items:
        return []
    chunk_count = min(chunk_count, len(items))
    base, extra = divmod(len(items), chunk_count)
    chunks: List[List[_ItemT]] = []
    start = 0
    for index in range(chunk_count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


class ProcessPoolTaskExecutor(TaskExecutor):
    """Dispatch tasks to a :class:`concurrent.futures.ProcessPoolExecutor`.

    Tasks are grouped into contiguous chunks (one chunk per worker by
    default) and each chunk is submitted as a single unit; results are
    gathered in submission order and flattened, so ``map`` preserves input
    order like every other executor.  Chunking matters for two reasons:

    * payloads that share big state (e.g. per-cluster
      :class:`~repro.mapping.model.MappingProblem` objects all referencing
      one repository) are pickled *once per chunk* — the pickle memo keeps
      the shared objects shared;
    * objects designed for intra-query sharing, such as the
      :class:`~repro.mapping.engine.TopKPool` incumbent, stay shared among
      the tasks of one chunk inside a worker process.  Cross-process the pool
      degrades to a per-worker copy — results are still exact (the shared
      floor only ever *prunes* work), just with less pruning than the thread
      backend achieves.

    The pool is created lazily on first use and reused across queries;
    ``close()`` shuts it down.  ``fn`` and every item must be picklable.
    """

    name = "process-pool"

    def __init__(
        self, max_workers: Optional[int] = None, tasks_per_worker: int = 1
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive when given, got {max_workers}")
        if tasks_per_worker < 1:
            raise ValueError(f"tasks_per_worker must be positive, got {tasks_per_worker}")
        self.max_workers = max_workers
        #: Chunks submitted per worker.  1 (the default) is the coarsest
        #: split — one contiguous chunk per worker, one pickle round-trip
        #: each.  Larger values trade extra dispatch overhead for load
        #: balancing when per-task costs are skewed; results are identical
        #: either way (chunks stay contiguous and are flattened in order).
        self.tasks_per_worker = tasks_per_worker
        self._pool: Optional[ProcessPoolExecutor] = None
        # Introspection for benchmarks and tests: the shape of the last
        # parallel dispatch (empty/0 while nothing has been dispatched or the
        # last map ran inline).
        self.last_chunk_sizes: List[int] = []
        self.last_workers_used: int = 0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> List[_ResultT]:
        if len(items) <= 1:
            # No parallelism to extract; skip the process machinery (and the
            # pickling round-trip) entirely.
            self.last_chunk_sizes = []
            self.last_workers_used = 0
            return [fn(item) for item in items]
        workers = self.max_workers or os.cpu_count() or 1
        chunks = split_into_chunks(items, workers * self.tasks_per_worker)
        if len(chunks) <= 1:
            self.last_chunk_sizes = []
            self.last_workers_used = 0
            return [fn(item) for item in items]
        self.last_chunk_sizes = [len(chunk) for chunk in chunks]
        self.last_workers_used = min(workers, len(chunks))
        pool = self._ensure_pool()
        futures = [pool.submit(_run_task_chunk, fn, chunk) for chunk in chunks]
        results: List[_ResultT] = []
        for future in futures:
            results.extend(future.result())
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessPoolTaskExecutor(max_workers={self.max_workers}, "
            f"tasks_per_worker={self.tasks_per_worker})"
        )

"""Pluggable task executors for per-cluster query execution.

Mapping generation is embarrassingly parallel across clusters: each useful
cluster yields an independent :class:`~repro.mapping.model.MappingProblem`,
and the merged ranking only depends on the *set* of per-cluster results, not
on the order they finished in.  :class:`TaskExecutor` abstracts how that
fan-out runs; :class:`Bellflower <repro.system.bellflower.Bellflower>` and
:class:`MatchingService <repro.service.MatchingService>` accept any
implementation.

Determinism contract: :meth:`TaskExecutor.map` must return results in the
order of the input items (like the built-in ``map``), so callers can merge
per-cluster counters and mappings in cluster order regardless of scheduling.
Both implementations below honour it; a custom executor must too, or match
results stop being reproducible.

The library is pure Python, so :class:`ThreadPoolTaskExecutor` is bounded by
the GIL for CPU-heavy generators — it exists for the service scenario where
per-cluster work blocks on shared caches or the workload mixes many small
clusters, and as the seam where a process pool or a native kernel can be
plugged in later without touching the pipeline.
"""

from __future__ import annotations

import abc
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


class TaskExecutor(abc.ABC):
    """Executes independent tasks, returning results in input order."""

    name: str = "executor"

    @abc.abstractmethod
    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> List[_ResultT]:
        """Apply ``fn`` to every item; result ``i`` corresponds to item ``i``."""

    def close(self) -> None:
        """Release any pooled resources (idempotent; default is a no-op)."""

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialExecutor(TaskExecutor):
    """Run tasks inline on the calling thread (the default everywhere)."""

    name = "serial"

    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> List[_ResultT]:
        return [fn(item) for item in items]


class ThreadPoolTaskExecutor(TaskExecutor):
    """Dispatch tasks to a shared :class:`concurrent.futures.ThreadPoolExecutor`.

    The pool is created lazily on first use and reused across queries (a
    service process handles many queries; paying thread start-up per query
    would drown the win).  ``close()`` shuts the pool down; the executor can
    be used as a context manager.
    """

    name = "thread-pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive when given, got {max_workers}")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-query"
            )
        return self._pool

    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> List[_ResultT]:
        if len(items) <= 1:
            # No parallelism to extract; skip the future machinery.
            return [fn(item) for item in items]
        # Gathering futures in submission order preserves the determinism
        # contract even though completion order is scheduler-dependent.
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadPoolTaskExecutor(max_workers={self.max_workers})"

"""Lightweight wall-clock timers used by the pipeline and the experiment harness.

The paper reports wall-clock times for clustering and for mapping generation
(Table 1b).  Bellflower's authors stress that absolute times on their prototype
are unreliable, and that *counters* (partial mappings generated) are the primary
efficiency indicator; we nevertheless measure elapsed time per stage so that the
"clustering time + generation time < non-clustered generation time" comparison
from Section 5 can be regenerated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager


class Timer:
    """A start/stop wall-clock timer.

    The timer can be restarted; elapsed time accumulates across start/stop
    cycles, which is what the pipeline needs when a stage is invoked once per
    cluster.
    """

    def __init__(self) -> None:
        self._started_at: Optional[float] = None
        self._elapsed = 0.0

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise RuntimeError("timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("timer is not running")
        self._elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self._elapsed

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including the current running span if any."""
        extra = 0.0
        if self._started_at is not None:
            extra = time.perf_counter() - self._started_at
        return self._elapsed + extra

    def reset(self) -> None:
        self._started_at = None
        self._elapsed = 0.0

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer(elapsed={self.elapsed:.6f}s, running={self.running})"


@dataclass
class StageTimer:
    """A named collection of :class:`Timer` objects, one per pipeline stage.

    Example
    -------
    >>> stages = StageTimer()
    >>> with stages.measure("clustering"):
    ...     pass
    >>> "clustering" in stages.elapsed()
    True
    """

    timers: Dict[str, Timer] = field(default_factory=dict)

    def timer(self, stage: str) -> Timer:
        if stage not in self.timers:
            self.timers[stage] = Timer()
        return self.timers[stage]

    @contextmanager
    def measure(self, stage: str) -> Iterator[Timer]:
        timer = self.timer(stage)
        timer.start()
        try:
            yield timer
        finally:
            timer.stop()

    def elapsed(self) -> Dict[str, float]:
        """Elapsed seconds per stage."""
        return {name: timer.elapsed for name, timer in self.timers.items()}

    def total(self) -> float:
        return sum(timer.elapsed for timer in self.timers.values())

    def merge(self, other: "StageTimer") -> None:
        """Fold another stage timer's elapsed totals into this one."""
        for name, timer in other.timers.items():
            mine = self.timer(name)
            mine._elapsed += timer.elapsed

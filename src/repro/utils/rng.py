"""Deterministic random number helpers.

Every stochastic component in the library (workload generation, random centroid
seeding, repository sampling) takes an explicit seed and uses an isolated
``random.Random`` instance.  Experiments therefore reproduce exactly across runs
and machines, which is essential when the benchmark harness compares clustering
variants on "the same" repository.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *parts: object) -> int:
    """Derive a stable sub-seed from a base seed and arbitrary labels.

    Two generator components fed from the same base seed must not consume the
    same random stream, otherwise adding a component perturbs every other one.
    Hashing the labels keeps sub-streams independent and reproducible.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class SeededRandom:
    """A thin, explicitly seeded wrapper around :class:`random.Random`."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def spawn(self, *labels: object) -> "SeededRandom":
        """Create an independent child generator identified by ``labels``."""
        return SeededRandom(derive_seed(self.seed, *labels))

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(seq)

    def choices(self, seq: Sequence[T], weights: Sequence[float] | None = None, k: int = 1) -> List[T]:
        return self._random.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(seq, k)

    def shuffle(self, items: List[T]) -> List[T]:
        """Shuffle a list in place and return it for convenience."""
        self._random.shuffle(items)
        return items

    def geometric(self, p: float, maximum: int) -> int:
        """Sample from a truncated geometric distribution on ``[1, maximum]``.

        Used by the workload generator for fan-out and depth distributions, which
        in real web schema collections are heavily skewed towards small values.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"geometric parameter p must be in (0, 1], got {p}")
        value = 1
        while value < maximum and self._random.random() > p:
            value += 1
        return value

    def partition(self, total: int, parts: int) -> List[int]:
        """Randomly split ``total`` into ``parts`` positive integers summing to total."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        if total < parts:
            raise ValueError(f"cannot split {total} into {parts} positive parts")
        if parts == 1:
            return [total]
        cuts = sorted(self.sample(range(1, total), parts - 1))
        previous = 0
        sizes = []
        for cut in cuts:
            sizes.append(cut - previous)
            previous = cut
        sizes.append(total - previous)
        return sizes


def round_robin(iterables: Iterable[Sequence[T]]) -> List[T]:
    """Interleave several sequences (used to mix schema domains deterministically)."""
    result: List[T] = []
    pools = [list(seq) for seq in iterables]
    index = 0
    while any(pools):
        pool = pools[index % len(pools)]
        if pool:
            result.append(pool.pop(0))
        index += 1
    return result

"""Shared utilities: timers, counters, RNG helpers, ASCII tables and histograms."""

from repro.utils.counters import CounterSet
from repro.utils.histogram import Histogram, exponential_buckets
from repro.utils.rng import SeededRandom, derive_seed
from repro.utils.tables import AsciiTable, format_number, format_percent
from repro.utils.timers import StageTimer, Timer

__all__ = [
    "AsciiTable",
    "CounterSet",
    "Histogram",
    "SeededRandom",
    "StageTimer",
    "Timer",
    "derive_seed",
    "exponential_buckets",
    "format_number",
    "format_percent",
]

"""Named integer counters.

The paper uses counters as the primary, machine-independent efficiency
indicator: the Branch-and-Bound generator counts the number of *partial schema
mappings* it creates, and the element matching stage counts similarity
computations.  :class:`CounterSet` is the single mechanism used throughout the
library so experiment reports can aggregate counters from every stage.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple


class CounterSet:
    """A dictionary of named monotonically increasing counters."""

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        self._counts: Dict[str, int] = defaultdict(int)
        if initial:
            for name, value in initial.items():
                self._counts[name] = int(value)

    def increment(self, name: str, amount: int = 1) -> int:
        """Increase ``name`` by ``amount`` (default 1) and return the new value."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self._counts[name] += amount
        return self._counts[name]

    def set(self, name: str, value: int) -> None:
        """Set a counter to an absolute value (used for gauge-style statistics)."""
        self._counts[name] = int(value)

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __len__(self) -> int:
        return len(self._counts)

    def merge(self, other: "CounterSet") -> "CounterSet":
        """Add every counter of ``other`` into this set and return ``self``."""
        for name, value in other:
            self._counts[name] += value
        return self

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"CounterSet({inner})"


class ThreadSafeCounterSet(CounterSet):
    """A :class:`CounterSet` whose writes are atomic under concurrency.

    The per-query counter sets (generation results, stage reports) are
    thread-local by construction and stay lock-free — the engine increments
    them on its hot path.  The *service-level* counters are different: the
    asyncio server executes many clients' queries concurrently on a thread
    pool against one service object, and a plain ``dict[name] += amount`` is
    a non-atomic read-modify-write that silently loses increments under that
    interleaving.  The services use this subclass, paying one uncontended
    lock per request-level increment — nothing on the search hot path.
    """

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        super().__init__(initial)
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> int:
        with self._lock:
            return super().increment(name, amount)

    def set(self, name: str, value: int) -> None:
        with self._lock:
            super().set(name, value)

    def merge(self, other: "CounterSet") -> "CounterSet":
        with self._lock:
            return super().merge(other)

    def as_dict(self) -> Dict[str, int]:
        # Snapshot under the lock: copying a dict that another thread is
        # inserting into can raise "dictionary changed size during iteration".
        with self._lock:
            return super().as_dict()

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        # Iterate over a locked snapshot for the same reason as as_dict().
        return iter(sorted(self.as_dict().items()))

    def __reduce__(self):
        # Locks do not pickle; a copy travelling to a worker process only
        # needs the counts (mirrors LRUMemo's pickling contract).
        return (type(self), (self.as_dict(),))

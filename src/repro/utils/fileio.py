"""Atomic file writes shared by every persistence path.

One pattern, one implementation: write to a temp file in the target's
directory (same filesystem, so the rename cannot degrade to a copy), then
``os.replace`` it over the destination.  A crash mid-write leaves the old
file intact; readers never observe a truncated document.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path


def write_text_atomic(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text`` (temp file + rename)."""
    write_bytes_atomic(path, text.encode(encoding))


def write_bytes_atomic(path: str | Path, payload: bytes) -> None:
    """Atomically replace ``path`` with binary ``payload`` (temp file + rename).

    The binary sibling of :func:`write_text_atomic`: frozen snapshot segments
    are raw little-endian arrays, so they must never pass through text-mode
    newline translation, and a crash mid-freeze must never leave a torn file.
    """
    target = Path(path)
    handle, temp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent or "."
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
        os.replace(temp_name, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp_name)
        raise

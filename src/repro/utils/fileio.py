"""Atomic file writes shared by every persistence path.

One pattern, one implementation: write to a temp file in the target's
directory (same filesystem, so the rename cannot degrade to a copy), then
``os.replace`` it over the destination.  A crash mid-write leaves the old
file intact; readers never observe a truncated document.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any


def write_text_atomic(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text`` (temp file + rename)."""
    write_bytes_atomic(path, text.encode(encoding))


def write_json_atomic(
    path: str | Path, document: Any, *, indent: int | None = 2, sort_keys: bool = True
) -> None:
    """Atomically replace ``path`` with ``document`` rendered as JSON.

    One canonical rendering (sorted keys, trailing newline, UTF-8) for every
    JSON artifact the library persists — shard manifests, ingest checkpoints,
    trace files, analysis reports — so byte-identity comparisons between two
    runs compare *content*, never incidental formatting.  Delegates to
    :func:`write_bytes_atomic` for the temp-file + rename crash contract.
    """
    write_bytes_atomic(
        path,
        (json.dumps(document, indent=indent, sort_keys=sort_keys) + "\n").encode("utf-8"),
    )


def write_bytes_atomic(path: str | Path, payload: bytes) -> None:
    """Atomically replace ``path`` with binary ``payload`` (temp file + rename).

    The binary sibling of :func:`write_text_atomic`: frozen snapshot segments
    are raw little-endian arrays, so they must never pass through text-mode
    newline translation, and a crash mid-freeze must never leave a torn file.
    """
    target = Path(path)
    handle, temp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent or "."
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
        os.replace(temp_name, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp_name)
        raise

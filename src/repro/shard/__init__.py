"""Shard layer: partitioned repositories with exact fan-out/merge queries.

The service layer (:mod:`repro.service`) made the repository a long-lived,
versioned asset inside one process; this package distributes that asset over
``N`` independent shards while keeping query results *bit-identical* to the
unsharded service:

* :class:`ShardedMatchingService` — the fan-out/merge front-end: per-shard
  :class:`~repro.service.MatchingService` instances, merged-coordinate
  translation, one shared top-k incumbent pool across shards, a batched
  ``match_many`` entry point with fingerprint dedup and a bounded result
  cache.
* :mod:`repro.shard.router` — placement policies (round-robin,
  size-balanced, cluster-affinity), recorded in manifests so placement is
  reproducible.
* :mod:`repro.shard.manifest` — the shard-set manifest: one file tying the
  per-shard snapshots, the tree assignment, the router config and a global
  version together; plus rebalancing.
"""

from repro.shard.manifest import (
    DEFAULT_MANIFEST_NAME,
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    load_manifest,
    load_shard_set,
    merged_repository,
    rebalance_shard_set,
    write_shard_set,
)
from repro.shard.router import (
    ClusterAffinityRouter,
    RoundRobinRouter,
    ShardRouter,
    SizeBalancedRouter,
    available_router_names,
    make_router,
)
from repro.shard.service import (
    ShardedMatchingService,
    ShardedRepositoryView,
    split_repository,
)

__all__ = [
    "ClusterAffinityRouter",
    "DEFAULT_MANIFEST_NAME",
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "RoundRobinRouter",
    "ShardRouter",
    "ShardedMatchingService",
    "ShardedRepositoryView",
    "SizeBalancedRouter",
    "available_router_names",
    "load_manifest",
    "load_shard_set",
    "make_router",
    "merged_repository",
    "rebalance_shard_set",
    "split_repository",
    "write_shard_set",
]

"""Shard-set manifests: one file tying shard snapshots + router config together.

A *shard set* on disk is ``N`` ordinary service snapshot files (one per
shard, written by :func:`repro.service.snapshot.write_snapshot`) plus one
**manifest** JSON document that makes them a unit:

* the tree **assignment** (merged tree id → shard id) — the source of truth
  for the merged coordinate space; shard snapshots alone cannot recover it;
* the **router** descriptor (policy name + parameters), so live additions and
  rebalances reproduce the placement policy the set was built with;
* a **global version**, bumped on every rewrite (split, rebalance), so
  caches and clients can detect that the set changed even when sizes did not;
* per-shard paths and size digests, validated against the loaded snapshots —
  a manifest pointing at the wrong snapshot fails loudly instead of serving
  a silently mis-merged ranking.

Shard snapshot paths are stored relative to the manifest's directory, so a
shard set is a relocatable directory.  All validation failures raise
:class:`~repro.errors.ShardManifestError` (malformed documents) or
:class:`~repro.errors.ShardError` (structural mismatches) — typed errors the
CLI maps to clean messages and non-zero exits.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ShardError, ShardManifestError
from repro.schema.repository import SchemaRepository
from repro.service.fingerprint import schema_fingerprint
from repro.service.snapshot import load_snapshot, write_snapshot
from repro.shard.router import ShardRouter, make_router
from repro.resilience.fanout import ResiliencePolicy
from repro.shard.service import ShardedMatchingService, copy_tree
from repro.utils.executor import TaskExecutor
from repro.utils.fileio import write_json_atomic

MANIFEST_FORMAT = "bellflower-shard-manifest"
MANIFEST_VERSION = 1
DEFAULT_MANIFEST_NAME = "manifest.json"


def _shard_snapshot_name(shard_id: int, frozen: bool = False) -> str:
    return f"shard-{shard_id}.snapshot.{'frozen' if frozen else 'json'}"


def _shard_digest(repository: SchemaRepository) -> str:
    """Content digest of a shard's forest (tree fingerprints, in order).

    Tree/node *counts* alone cannot tell two shards of a balanced set apart —
    a manifest whose snapshot paths were swapped would pass a count check and
    silently mis-merge every ranking.  The digest folds each tree's
    :func:`~repro.service.fingerprint.schema_fingerprint` (names, kinds,
    datatypes, structure) in registration order, so a snapshot can only pass
    as shard ``i`` if it holds exactly shard ``i``'s trees.
    """
    hasher = hashlib.sha256()
    for tree in repository.trees():
        hasher.update(schema_fingerprint(tree).encode("ascii"))
    return hasher.hexdigest()[:16]


def _loaded_shard_digest(shard) -> str:
    """A loaded shard's forest digest, O(1) for pristine frozen snapshots.

    A frozen snapshot's header records the same fingerprint fold the builder
    computed while streaming (:class:`repro.storage.builder._FrozenWriter`
    uses the identical recipe as :func:`_shard_digest`), so a frozen shard
    self-certifies from its header — materializing every tree just to
    re-derive a digest the file already carries would forfeit the O(1) open.
    A mutated (thawed) repository no longer matches its file; it falls back
    to the full fold, as does any JSON-loaded shard.
    """
    from repro.storage.frozen import FrozenRepository

    repository = shard.repository
    if type(repository) is FrozenRepository and repository.version == 0:
        return str(repository._snapshot.header["repository"]["digest"])
    return _shard_digest(repository)


def write_shard_set(
    service: ShardedMatchingService,
    directory: str | Path,
    *,
    manifest_name: str = DEFAULT_MANIFEST_NAME,
    global_version: Optional[int] = None,
    frozen: bool = False,
) -> Dict[str, Any]:
    """Persist a sharded service: one snapshot per shard plus the manifest.

    ``global_version`` defaults to the service's current version; rebalance
    passes the old version + 1 so clients observe the rewrite.  With
    ``frozen`` each shard is written as a frozen (mmap) snapshot instead of
    JSON — :func:`load_shard_set` then opens each shard in O(header) time.
    Returns the manifest document.  Writes the shard snapshots first and the
    manifest last (itself atomically, temp file + rename like the snapshots),
    so a crash at any point never leaves a manifest naming missing files and
    never truncates an existing good manifest.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    shards_entry: List[Dict[str, Any]] = []
    for shard_id, shard in enumerate(service.shards):
        snapshot_name = _shard_snapshot_name(shard_id, frozen=frozen)
        if frozen:
            from repro.storage.builder import freeze_service

            header = freeze_service(shard, target / snapshot_name)
            digest = str(header["repository"]["digest"])
        else:
            write_snapshot(shard, target / snapshot_name)
            digest = _shard_digest(shard.repository)
        shards_entry.append(
            {
                "path": snapshot_name,
                "trees": shard.repository.tree_count,
                "nodes": shard.repository.node_count,
                "digest": digest,
            }
        )
    manifest = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "global_version": service.global_version if global_version is None else global_version,
        "shard_count": service.shard_count,
        "router": {"policy": service.router.name, "params": service.router.config()},
        "assignment": service.assignment,
        "shards": shards_entry,
    }
    write_json_atomic(target / manifest_name, manifest)
    return manifest


def load_manifest(path: str | Path) -> Dict[str, Any]:
    """Read and structurally validate a manifest document (not the snapshots)."""
    manifest_path = Path(path)
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ShardManifestError(f"cannot read shard manifest {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ShardManifestError(f"shard manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
        raise ShardManifestError(
            f"{path} is not a shard manifest "
            f"(format={payload.get('format')!r} if it is JSON at all)"
            if isinstance(payload, dict)
            else f"{path} is not a shard manifest (top level is {type(payload).__name__})"
        )
    if payload.get("version") != MANIFEST_VERSION:
        raise ShardManifestError(
            f"unsupported shard manifest version {payload.get('version')!r} "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    shards = payload.get("shards")
    assignment = payload.get("assignment")
    if not isinstance(shards, list) or not shards:
        raise ShardManifestError(f"shard manifest {path} lists no shards")
    if not isinstance(assignment, list) or not all(
        isinstance(shard_id, int) for shard_id in assignment
    ):
        raise ShardManifestError(f"shard manifest {path} has a malformed tree assignment")
    if int(payload.get("shard_count", -1)) != len(shards):
        raise ShardManifestError(
            f"shard manifest {path} declares shard_count={payload.get('shard_count')!r} "
            f"but lists {len(shards)} shards"
        )
    for entry in shards:
        if not isinstance(entry, dict) or not isinstance(entry.get("path"), str):
            raise ShardManifestError(f"shard manifest {path} has a malformed shard entry")
    counts = [0] * len(shards)
    for tree_id, shard_id in enumerate(assignment):
        if not 0 <= shard_id < len(shards):
            raise ShardManifestError(
                f"shard manifest {path} assigns tree {tree_id} to unknown shard {shard_id}"
            )
        counts[shard_id] += 1
    for shard_id, entry in enumerate(shards):
        declared = entry.get("trees")
        if declared is not None and int(declared) != counts[shard_id]:
            raise ShardManifestError(
                f"shard manifest {path} declares {declared} trees for shard {shard_id} "
                f"but the assignment routes {counts[shard_id]} there"
            )
    return payload


def manifest_router(payload: Dict[str, Any]) -> ShardRouter:
    """Instantiate the router a manifest records."""
    descriptor = payload.get("router") or {}
    if not isinstance(descriptor, dict) or not isinstance(descriptor.get("policy"), str):
        raise ShardManifestError("shard manifest has a malformed router descriptor")
    params = descriptor.get("params") or {}
    if not isinstance(params, dict):
        raise ShardManifestError("shard manifest router parameters must be an object")
    return make_router(descriptor["policy"], params)


def load_shard_set(
    manifest_path: str | Path,
    *,
    executor: Optional[TaskExecutor] = None,
    query_cache_size: Optional[int] = None,
    resilience: Optional[ResiliencePolicy] = None,
    **snapshot_overrides: Any,
) -> ShardedMatchingService:
    """Load a sharded service from a manifest written by :func:`write_shard_set`.

    ``query_cache_size`` overrides both the front-end result cache and each
    shard's candidate cache; ``resilience`` enables the retry/hedge/failover
    fan-out (see :class:`~repro.shard.service.ShardedMatchingService`); other
    keyword overrides are forwarded to every
    :func:`~repro.service.snapshot.load_snapshot` call (matcher, objective,
    …).  Loaded shard sizes are validated against the manifest digests.
    """
    manifest_file = Path(manifest_path)
    payload = load_manifest(manifest_file)
    router = manifest_router(payload)
    base = manifest_file.parent
    shards = []
    for shard_id, entry in enumerate(payload["shards"]):
        snapshot_path = base / entry["path"]
        shard = load_snapshot(
            snapshot_path, query_cache_size=query_cache_size, **snapshot_overrides
        )
        for field, actual in (
            ("trees", shard.repository.tree_count),
            ("nodes", shard.repository.node_count),
            ("digest", _loaded_shard_digest(shard)),
        ):
            declared = entry.get(field)
            if declared is not None and (
                str(declared) != str(actual) if field == "digest" else int(declared) != actual
            ):
                raise ShardError(
                    f"shard {shard_id} snapshot {snapshot_path} has {field}={actual} "
                    f"but the manifest declares {declared}"
                )
        shards.append(shard)
    return ShardedMatchingService(
        shards,
        payload["assignment"],
        router=router,
        executor=executor,
        query_cache_size=(
            shards[0].query_cache_size if query_cache_size is None else query_cache_size
        ),
        global_version=int(payload.get("global_version", 1)),
        resilience=resilience,
    )


def merged_repository(service: ShardedMatchingService, name: str = "repository") -> SchemaRepository:
    """Reassemble the merged (unsharded) repository from a sharded service.

    Trees are copied in merged id order, so the result is indistinguishable
    from the repository the shard set was originally split from — the basis
    for rebalancing and for equivalence tests.
    """
    repository = SchemaRepository(name=name)
    for tree_id in range(service.tree_count):
        repository.add_tree(copy_tree(service.tree(tree_id)))
    return repository


def rebalance_shard_set(
    manifest_path: str | Path,
    *,
    shard_count: Optional[int] = None,
    router: Optional[ShardRouter] = None,
    out_directory: Optional[str | Path] = None,
    manifest_name: str = DEFAULT_MANIFEST_NAME,
    frozen: Optional[bool] = None,
) -> Dict[str, Any]:
    """Re-split an existing shard set with a new shard count and/or router.

    Loads the set, reassembles the merged repository, splits it again (same
    matching configuration — it is carried by the shard snapshots) and writes
    the new set to ``out_directory`` (default: in place, next to the old
    manifest, overwriting it) with ``global_version`` bumped past the old
    one.  Query results are preserved exactly: the merged repository is
    identical, only its distribution over shards changes.

    Stale snapshot files are left behind when the new set has fewer shards
    than the old one had; they are unreferenced by the new manifest and
    harmless.  Returns the new manifest document.
    """
    manifest_file = Path(manifest_path)
    payload = load_manifest(manifest_file)
    if frozen is None:
        # Preserve the set's carrier: frozen in, frozen out.
        frozen = any(
            str(entry.get("path", "")).endswith(".frozen") for entry in payload["shards"]
        )
    service = load_shard_set(manifest_file)
    new_router = router or service.router
    new_count = service.shard_count if shard_count is None else shard_count
    reference = service.shards[0]
    rebalanced = ShardedMatchingService.from_repository(
        merged_repository(service),
        new_count,
        router=new_router,
        matcher=reference.matcher,
        element_threshold=reference.element_threshold,
        delta=reference.delta,
        use_batch_matching=reference.system.use_batch_matching,
        query_cache_size=reference.query_cache_size,
        partition_max_fragment_size=(
            reference.partition.max_fragment_size
            if reference.partition is not None
            else 20
        ),
    )
    target = manifest_file.parent if out_directory is None else Path(out_directory)
    return write_shard_set(
        rebalanced,
        target,
        manifest_name=manifest_name,
        global_version=service.global_version + 1,
        frozen=frozen,
    )

"""Shard routing policies: which repository tree lives on which shard.

A :class:`ShardRouter` turns a repository into a *shard assignment* — one
shard id per tree — and places live additions.  The unit of placement is the
whole tree, never a fragment of one: clusters can never span trees (the
cross-tree distance is infinite), so tree-granular sharding keeps every
cluster search local to exactly one shard and is what makes the fan-out/merge
layer exact (see :mod:`repro.shard.service`).

Three policies ship:

* :class:`RoundRobinRouter` — tree ``g`` goes to shard ``g % n``.  Zero-cost,
  assignment derivable from the tree id alone; fine when tree sizes are
  roughly uniform (the synthetic workloads).
* :class:`SizeBalancedRouter` — greedy bin packing by node count: trees are
  placed largest-first onto the currently lightest shard.  Equalizes the raw
  amount of schema data per shard.
* :class:`ClusterAffinityRouter` — the same greedy packing, but weighted by
  each tree's *cluster count* (the number of fragments the repository
  partition splits it into).  Per-query work is dominated by the number of
  useful clusters searched, not by raw node count, so balancing fragment
  counts balances expected query latency; the weight uses the same
  :func:`~repro.clustering.baselines.fragment_tree` split the partition
  clusterer serves at query time.

Every policy is deterministic — same repository, same shard count, same
assignment — because the manifest records only the policy name and parameters
and a rebalance must be reproducible from those.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

from repro.clustering.baselines import fragment_tree
from repro.errors import ShardError
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree


class ShardRouter(abc.ABC):
    """Assigns repository trees to shards, both offline and for live adds."""

    name: str = "router"

    def tree_weight(self, tree: SchemaTree) -> int:
        """The load a tree contributes to its shard (policy-specific unit)."""
        return tree.node_count

    def assign(self, repository: SchemaRepository, shard_count: int) -> List[int]:
        """One shard id per tree (indexed by tree id), for ``shard_count`` shards.

        The default is greedy balanced placement: trees descending by
        :meth:`tree_weight` (ties by tree id, so the order — and therefore the
        assignment — is total), each onto the currently lightest shard (ties
        by shard id).
        """
        check_shard_count(shard_count, repository.tree_count)
        weights = {tree.tree_id: self.tree_weight(tree) for tree in repository.trees()}
        loads = [0] * shard_count
        assignment = [0] * repository.tree_count
        for tree_id in sorted(weights, key=lambda tree_id: (-weights[tree_id], tree_id)):
            shard_id = min(range(shard_count), key=lambda s: (loads[s], s))
            assignment[tree_id] = shard_id
            loads[shard_id] += weights[tree_id]
        return assignment

    def place(self, tree: SchemaTree, loads: Sequence[int], next_tree_id: int) -> int:
        """Shard for a live ``add_tree`` given current per-shard loads.

        ``loads`` is measured in this policy's :meth:`tree_weight` unit;
        ``next_tree_id`` is the global tree id the addition will receive.
        """
        return min(range(len(loads)), key=lambda s: (loads[s], s))

    def config(self) -> Dict[str, object]:
        """Parameters to persist in the shard manifest (``{}`` by default)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RoundRobinRouter(ShardRouter):
    """Tree ``g`` lives on shard ``g % shard_count`` — placement by id alone."""

    name = "round-robin"

    def tree_weight(self, tree: SchemaTree) -> int:
        # Loads are measured in trees: the policy balances counts, not sizes.
        return 1

    def assign(self, repository: SchemaRepository, shard_count: int) -> List[int]:
        check_shard_count(shard_count, repository.tree_count)
        return [tree_id % shard_count for tree_id in range(repository.tree_count)]

    def place(self, tree: SchemaTree, loads: Sequence[int], next_tree_id: int) -> int:
        return next_tree_id % len(loads)


class SizeBalancedRouter(ShardRouter):
    """Greedy bin packing by node count (the base class default)."""

    name = "size-balanced"


class ClusterAffinityRouter(ShardRouter):
    """Greedy bin packing by partition-fragment count.

    ``max_fragment_size`` must match the partition configuration of the shard
    services for the weights to equal the clusters actually searched; a
    mismatch only skews the balance, never correctness.
    """

    name = "cluster-affinity"

    def __init__(self, max_fragment_size: int = 20) -> None:
        if max_fragment_size < 1:
            raise ShardError(
                f"max_fragment_size must be positive, got {max_fragment_size}"
            )
        self.max_fragment_size = max_fragment_size

    def tree_weight(self, tree: SchemaTree) -> int:
        return len(set(fragment_tree(tree, self.max_fragment_size).values()))

    def config(self) -> Dict[str, object]:
        return {"max_fragment_size": self.max_fragment_size}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterAffinityRouter(max_fragment_size={self.max_fragment_size})"


#: Router registry: manifest ``router.policy`` name → constructor.
_ROUTERS = {
    RoundRobinRouter.name: RoundRobinRouter,
    SizeBalancedRouter.name: SizeBalancedRouter,
    ClusterAffinityRouter.name: ClusterAffinityRouter,
}


def available_router_names() -> List[str]:
    return sorted(_ROUTERS)


def make_router(name: str, params: Optional[Dict[str, object]] = None) -> ShardRouter:
    """Instantiate a router from its manifest descriptor (name + params)."""
    constructor = _ROUTERS.get(name)
    if constructor is None:
        raise ShardError(
            f"unknown shard router {name!r} (available: {', '.join(available_router_names())})"
        )
    try:
        return constructor(**(params or {}))
    except TypeError as exc:
        raise ShardError(f"invalid parameters for shard router {name!r}: {exc}") from exc


def check_shard_count(shard_count: int, tree_count: int) -> None:
    """Reject shard counts the fan-out layer cannot serve.

    Every shard must hold at least one tree — :class:`Bellflower` refuses an
    empty repository, and an empty shard could never contribute a mapping
    anyway — so ``1 <= shard_count <= tree_count``.
    """
    if shard_count < 1:
        raise ShardError(f"shard count must be at least 1, got {shard_count}")
    if shard_count > tree_count:
        raise ShardError(
            f"cannot split {tree_count} trees into {shard_count} shards "
            "(every shard needs at least one tree)"
        )

"""The sharded matching service: fan-out/merge over independent shards.

:class:`ShardedMatchingService` partitions a repository forest into ``N``
shards — every shard is a complete, independent
:class:`~repro.service.MatchingService` over its own sub-repository — and
answers queries by fanning them out across the shards and merging the
per-shard rankings.  The paper's element-clustering design keeps per-cluster
search independent; sharding pushes the same independence one level up: a
cluster never spans trees, a shard holds whole trees, so no search, cluster
or mapping ever crosses a shard boundary.

Exactness (sharded ≡ unsharded, bit for bit)
--------------------------------------------

The merged ranking is identical to the one the unsharded service produces,
for any shard count and any executor, because every pipeline stage
distributes over trees:

* **element matching** scores (personal node, repository node) pairs
  independently, so the union of the shards' candidate tables *is* the
  unsharded table (modulo coordinates — see below);
* **clustering** must be tree-local, which the bundled partition clusterer is
  (fragmentation is a deterministic function of one tree); the constructor
  rejects shards configured with any other clusterer;
* **mapping generation** already runs per cluster; per-shard truncation in
  top-``k`` mode keeps each shard's ``k`` best, a superset of what the shard
  contributes to the global top-``k``;
* **ranking** merges with the same canonical
  :func:`~repro.mapping.ranking.ranking_sort_key` the unsharded service uses.

What does *not* distribute is the coordinate space: each shard numbers its
trees and global node ids from zero.  The service keeps the translation
tables (shard-local tree id → merged tree id, and the corresponding global-id
offsets) and rewrites every mapping, candidate, cluster and report back into
merged-repository coordinates before merging — including the **cluster ids**:
shard-local ids are re-ranked into the exact ids the unsharded clusterer
would have assigned (cluster ids are ordinal in (tree, fragment) order and
the translation is order-preserving), so even score ties break identically.

Cross-shard incumbent sharing
-----------------------------

In top-``k`` mode all shards of one query share a single
:class:`~repro.mapping.engine.TopKPool` through per-shard
:class:`~repro.mapping.engine.TranslatingTopKPool` views (the view rewrites
realized signatures into merged coordinates so deduplication works on the
merged mapping identity).  A good mapping found on any shard raises the
pruning floor everywhere — the shard-level analogue of PR 3's cross-cluster
bound sharing, and exact for the same reason: the floor is always a realized,
distinct mapping score and complete policies never lose ties.  Under a
process executor the pool degrades to a per-worker snapshot exactly like the
per-cluster case; results stay identical, only pruning weakens.

Batched front-end
-----------------

:meth:`ShardedMatchingService.match_many` answers a batch of queries:
identical schemas (same fingerprint, same effective ``δ``/``top_k``) are
deduplicated, the bounded front-end result cache is consulted, and only the
remaining misses are dispatched — every (miss, shard) pair becomes one
executor task, so a batch saturates the executor even when each individual
query is small.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.api.envelope import PROTOCOL_VERSION
from repro.api.matcher import MatcherAPIMixin
from repro.api.validation import validate_query
from repro.clustering.cluster import Cluster, ClusterSet
from repro.clustering.kmeans import ClusteringResult
from repro.errors import ConfigurationError, ShardError, UnknownTreeError
from repro.mapping.base import GenerationResult
from repro.mapping.engine import TopKPool, TranslatingTopKPool
from repro.mapping.model import SchemaMapping
from repro.mapping.ranking import merge_ranked
from repro.matchers.base import ElementMatcher
from repro.matchers.index import LRUMemo
from repro.matchers.selection import MappingElement, MappingElementSets
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.schema.serialization import tree_from_dict, tree_to_dict
from repro.resilience.fanout import ResiliencePolicy, ResilientFanout
from repro.schema.tree import SchemaTree
from repro.service.fingerprint import schema_fingerprint
from repro.service.partition import PartitionClusterer
from repro.service.service import MatchingService
from repro.shard.router import ShardRouter, SizeBalancedRouter, check_shard_count
from repro.system.results import ClusterReport, MatchResult
from repro.utils.counters import CounterSet, ThreadSafeCounterSet
from repro.utils.executor import TaskExecutor
from repro.utils.timers import StageTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.deadline import Deadline


def copy_tree(tree: SchemaTree) -> SchemaTree:
    """An unregistered deep copy of a tree (same nodes, ``tree_id`` unset).

    Trees carry their registration (``tree_id``) and can belong to only one
    repository at a time, so building shard repositories from a live
    repository copies through the serialization round-trip — the same code
    path snapshots already trust for identity.
    """
    return tree_from_dict(tree_to_dict(tree))


def split_repository(
    repository: SchemaRepository, assignment: Sequence[int]
) -> List[SchemaRepository]:
    """Build one sub-repository per shard from an assignment.

    ``assignment[g]`` names the shard of tree ``g``.  Within a shard, trees
    are registered in ascending merged tree id — the invariant every
    translation table in this module relies on (shard-local tree order ≡
    merged tree order restricted to the shard).
    """
    if len(assignment) != repository.tree_count:
        raise ShardError(
            f"assignment covers {len(assignment)} trees, repository has {repository.tree_count}"
        )
    shard_count = max(assignment) + 1 if len(assignment) else 0
    shards = [
        SchemaRepository(name=f"{repository.name}-shard-{index}")
        for index in range(shard_count)
    ]
    for tree_id, shard_id in enumerate(assignment):
        if not 0 <= shard_id < shard_count:
            raise ShardError(f"tree {tree_id} assigned to invalid shard {shard_id}")
        shards[shard_id].add_tree(copy_tree(repository.tree(tree_id)))
    for index, shard in enumerate(shards):
        if shard.tree_count == 0:
            raise ShardError(f"shard {index} received no trees")
    return shards


class _ShardSignatureTranslator:
    """Rewrites one shard's mapping signatures into merged coordinates.

    A signature is the tuple of shard-local global node ids the mapping
    targets.  Local global ids are contiguous per local tree, so translation
    is "find the local tree by bisection, add that tree's offset delta".
    Picklable (plain tuples), as :class:`TranslatingTopKPool` requires for
    process executors.
    """

    __slots__ = ("starts", "deltas")

    def __init__(self, starts: Tuple[int, ...], deltas: Tuple[int, ...]) -> None:
        self.starts = starts
        self.deltas = deltas

    def __call__(self, signature: Tuple[int, ...]) -> Tuple[int, ...]:
        starts = self.starts
        deltas = self.deltas
        return tuple(
            local_id + deltas[bisect_right(starts, local_id) - 1] for local_id in signature
        )


def _run_shard_query(task) -> MatchResult:
    """Worker body of the shard fan-out (module-level so process pools can pickle it)."""
    shard, personal_schema, delta, top_k, pool, deadline = task
    extra = {} if deadline is None else {"deadline": deadline}
    return shard.match(personal_schema, delta=delta, top_k=top_k, shared_pool=pool, **extra)


class ShardedRepositoryView:
    """A read-only, merged-coordinate view over the shard repositories.

    Exposes the subset of the :class:`~repro.schema.repository.SchemaRepository`
    surface the front-ends (CLI printing, serve responses) read — tree lookup
    by merged id, sizes, a summary — without materializing a merged forest.
    The returned tree objects are the live shard trees: their ``tree_id``
    attribute is *shard-local*; treat them as read-only name/structure views.
    """

    def __init__(self, service: "ShardedMatchingService") -> None:
        self._service = service
        self.name = f"sharded({service.shard_count})"

    @property
    def tree_count(self) -> int:
        return self._service.tree_count

    @property
    def node_count(self) -> int:
        return self._service.node_count

    @property
    def version(self) -> int:
        """Sum of shard mutation versions — bumps whenever any shard mutates."""
        return sum(shard.repository.version for shard in self._service.shards)

    def tree(self, tree_id: int) -> SchemaTree:
        return self._service.tree(tree_id)

    def summary(self) -> Dict[str, int]:
        sizes = [
            shard.repository.tree(local_id).node_count
            for shard in self._service.shards
            for local_id in range(shard.repository.tree_count)
        ]
        return {
            "trees": self.tree_count,
            "nodes": self.node_count,
            "largest_tree": max(sizes) if sizes else 0,
            "smallest_tree": min(sizes) if sizes else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedRepositoryView(shards={self._service.shard_count}, trees={self.tree_count})"


class ShardedMatchingService(MatcherAPIMixin):
    """Fan-out/merge matching over ``N`` independent per-shard services.

    Construct via :meth:`from_repository` (split a repository in process) or
    :func:`repro.shard.manifest.load_shard_set` (load a persisted shard set).
    The direct constructor wires pre-built shards and validates the
    invariants the merge step depends on: every shard non-empty, tree-local
    (partition) clustering, and identical matching configuration across
    shards.

    Parameters
    ----------
    shards:
        One :class:`~repro.service.MatchingService` per shard.
    assignment:
        Merged tree id → shard id.  Within each shard, local tree order must
        follow merged tree order (as :func:`split_repository` guarantees).
    router:
        Placement policy for live :meth:`add_tree` calls (and recorded in
        manifests).  Defaults to :class:`~repro.shard.router.SizeBalancedRouter`.
    executor:
        Optional :class:`~repro.utils.executor.TaskExecutor` the per-shard
        queries fan out through (``None`` runs shards serially inline).
        Results are identical for every executor.
    query_cache_size:
        Capacity of the front-end merged-result LRU cache (``0`` disables
        it).  Unlike the per-shard candidate caches, entries here are whole
        merged rankings, keyed by (schema fingerprint, effective ``δ``,
        ``top_k``, shard-set version) — a hit returns the previously merged
        :class:`~repro.system.results.MatchResult` object without touching
        any shard.
    global_version:
        The shard-set version (manifest loads pass the manifest's value).
        Bumped by every live mutation.
    resilience:
        Optional :class:`~repro.resilience.ResiliencePolicy`.  When given,
        shard queries run through a :class:`~repro.resilience.ResilientFanout`
        (retries with seeded backoff, optional hedging, per-shard circuit
        breakers) instead of ``executor``, and a shard that stays unreachable
        degrades the answer to the surviving shards — the merged result is
        then marked ``degraded`` and lists the ``skipped_shards``.  ``None``
        keeps the strict behaviour: any shard failure propagates.
    """

    backend_kind = "sharded"

    def __init__(
        self,
        shards: Sequence[MatchingService],
        assignment: Sequence[int],
        *,
        router: Optional[ShardRouter] = None,
        executor: Optional[TaskExecutor] = None,
        query_cache_size: int = 64,
        global_version: int = 1,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        if not shards:
            raise ShardError("a sharded service needs at least one shard")
        if query_cache_size < 0:
            raise ConfigurationError(
                f"query_cache_size must be non-negative, got {query_cache_size}"
            )
        self.shards: List[MatchingService] = list(shards)
        self._assignment: List[int] = list(assignment)
        self.router = router or SizeBalancedRouter()
        self.executor = executor
        self.query_cache_size = query_cache_size
        self._result_cache = LRUMemo(query_cache_size)
        self.global_version = global_version
        # Thread-safe: the asyncio server runs concurrent queries against one
        # service instance from thread-pool workers.
        self.counters = ThreadSafeCounterSet()
        self.resilience = resilience
        # One fanout per service: breakers and fault-injection call counters
        # must persist across queries to be meaningful.
        self._fanout: Optional[ResilientFanout] = (
            None
            if resilience is None
            else ResilientFanout(resilience, len(shards), counters=self.counters)
        )
        self._validate_shards()
        self._rebuild_translation()
        # Per-shard router loads are only needed for live add_tree placement
        # and may be expensive to compute (the affinity router fragments every
        # tree), so they materialize on first use.
        self._shard_loads: Optional[List[int]] = None
        self.repository = ShardedRepositoryView(self)

    # -- invariants -----------------------------------------------------------

    @staticmethod
    def _shard_config(shard: MatchingService) -> tuple:
        """Everything that must agree across shards for the merge to be exact.

        A configuration mismatch would not crash — it would silently produce
        a ranking that differs from the unsharded service — so every input
        that shapes stage 1-3 results participates: thresholds, the matcher
        (by snapshot descriptor, falling back to its type for custom
        matchers), the batch-matching mode and the partition's fragment size.
        """
        from repro.service.snapshot import _matcher_config

        matcher = shard.matcher
        return (
            shard.delta,
            shard.element_threshold,
            shard.system.use_batch_matching,
            _matcher_config(matcher) or f"custom:{type(matcher).__qualname__}",
            None if shard.partition is None else shard.partition.max_fragment_size,
        )

    def _validate_shards(self) -> None:
        reference = self._shard_config(self.shards[0])
        for index, shard in enumerate(self.shards):
            if shard.repository.tree_count == 0:
                raise ShardError(f"shard {index} serves an empty repository")
            if shard.variant_name != PartitionClusterer.name:
                raise ShardError(
                    f"shard {index} uses clusterer {shard.variant_name!r}; the fan-out "
                    "merge is only exact for the tree-local 'partition' clusterer"
                )
            config = self._shard_config(shard)
            if config != reference:
                raise ShardError(
                    f"shard {index} is configured with {config} but shard 0 with "
                    f"{reference}; all shards must share one matching configuration "
                    "(delta, element threshold, batch mode, matcher, fragment size)"
                )
        counts = [0] * len(self.shards)
        for tree_id, shard_id in enumerate(self._assignment):
            if not 0 <= shard_id < len(self.shards):
                raise ShardError(f"tree {tree_id} assigned to unknown shard {shard_id}")
            counts[shard_id] += 1
        for index, shard in enumerate(self.shards):
            if counts[index] != shard.repository.tree_count:
                raise ShardError(
                    f"assignment gives shard {index} {counts[index]} trees but its "
                    f"repository holds {shard.repository.tree_count}"
                )

    def _rebuild_translation(self) -> None:
        """Recompute the shard-local → merged coordinate tables.

        ``_local_to_global[s][l]`` is the merged tree id of shard ``s``'s
        local tree ``l``; ``_global_offsets[g]`` is the merged global id of
        tree ``g``'s first node; ``_translators[s]`` rewrites shard-local
        global ids (and thus signatures) into merged ones.
        """
        self._local_to_global = [[] for _ in self.shards]
        self._merged_to_local: List[Tuple[int, int]] = []
        for tree_id, shard_id in enumerate(self._assignment):
            self._merged_to_local.append((shard_id, len(self._local_to_global[shard_id])))
            self._local_to_global[shard_id].append(tree_id)
        sizes = [0] * len(self._assignment)
        for shard_id, shard in enumerate(self.shards):
            for local_id, tree_id in enumerate(self._local_to_global[shard_id]):
                sizes[tree_id] = shard.repository.tree(local_id).node_count
        self._global_offsets = []
        total = 0
        for size in sizes:
            self._global_offsets.append(total)
            total += size
        self._total_nodes = total
        self._translators = []
        for shard_id, shard in enumerate(self.shards):
            starts = []
            deltas = []
            for local_id, tree_id in enumerate(self._local_to_global[shard_id]):
                local_offset = shard.repository.tree_offset(local_id)
                starts.append(local_offset)
                deltas.append(self._global_offsets[tree_id] - local_offset)
            self._translators.append(
                _ShardSignatureTranslator(tuple(starts), tuple(deltas))
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_repository(
        cls,
        repository: SchemaRepository,
        shard_count: int,
        *,
        router: Optional[ShardRouter] = None,
        executor: Optional[TaskExecutor] = None,
        matcher: Optional[ElementMatcher] = None,
        element_threshold: float = 0.6,
        delta: float = 0.75,
        use_batch_matching: Optional[bool] = None,
        query_cache_size: int = 64,
        partition_max_fragment_size: int = 20,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> "ShardedMatchingService":
        """Split a repository into ``shard_count`` shards and serve them.

        The source repository is left untouched (shards hold copies of its
        trees); every shard gets the same matching configuration and the
        snapshot-friendly partition clusterer the merge step requires.
        """
        active_router = router or SizeBalancedRouter()
        check_shard_count(shard_count, repository.tree_count)
        assignment = active_router.assign(repository, shard_count)
        shard_repositories = split_repository(repository, assignment)
        if len(shard_repositories) != shard_count:
            raise ShardError(
                f"router {active_router.name!r} used {len(shard_repositories)} of "
                f"{shard_count} shards (every shard needs at least one tree)"
            )
        shards = [
            MatchingService(
                shard_repository,
                matcher=matcher,
                element_threshold=element_threshold,
                delta=delta,
                use_batch_matching=use_batch_matching,
                query_cache_size=query_cache_size,
                partition_max_fragment_size=partition_max_fragment_size,
            )
            for shard_repository in shard_repositories
        ]
        return cls(
            shards,
            assignment,
            router=active_router,
            executor=executor,
            query_cache_size=query_cache_size,
            resilience=resilience,
        )

    # -- accessors ------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def tree_count(self) -> int:
        return len(self._assignment)

    @property
    def node_count(self) -> int:
        return self._total_nodes

    @property
    def delta(self) -> float:
        return self.shards[0].delta

    @property
    def element_threshold(self) -> float:
        return self.shards[0].element_threshold

    @property
    def assignment(self) -> List[int]:
        """Merged tree id → shard id (a copy; mutate via add/remove/rebalance)."""
        return list(self._assignment)

    @property
    def query_cache_len(self) -> int:
        return len(self._result_cache)

    def tree(self, tree_id: int) -> SchemaTree:
        """The tree with merged id ``tree_id`` (a live, shard-local object)."""
        if not 0 <= tree_id < len(self._assignment):
            raise UnknownTreeError(tree_id, context=f"sharded repository ({self.tree_count} trees)")
        shard_id, local_id = self._merged_to_local[tree_id]
        return self.shards[shard_id].repository.tree(local_id)

    def shard_of(self, tree_id: int) -> int:
        """The shard holding merged tree ``tree_id``."""
        if not 0 <= tree_id < len(self._assignment):
            raise UnknownTreeError(tree_id, context=f"sharded repository ({self.tree_count} trees)")
        return self._assignment[tree_id]

    def build_derived_state(self) -> None:
        """Eagerly warm every shard (indexes, oracles, partitions)."""
        for shard in self.shards:
            shard.build_derived_state()

    def close(self) -> None:
        """Release the resilient fan-out's thread pools (if any were started)."""
        self.unshare_memory()
        if self._fanout is not None:
            self._fanout.close()

    # -- shared memory --------------------------------------------------------

    def share_memory(self) -> List[object]:
        """Publish every shard into shared memory (see :mod:`repro.service.sharedmem`).

        With a process executor, each fan-out task then ships a segment name
        instead of a pickled shard service; workers attach once per shard and
        reuse the mapping across queries.  Returns the per-shard views.
        Mutations unpublish the affected shard automatically; call again to
        republish after a batch of updates.
        """
        return [shard.share_memory() for shard in self.shards]

    def unshare_memory(self) -> None:
        """Unpublish every shard's shared segment (idempotent)."""
        for shard in self.shards:
            shard.unshare_memory()

    def _loads(self) -> List[int]:
        """Current per-shard loads in the router's weight unit (lazily built)."""
        if self._shard_loads is None:
            self._shard_loads = [
                sum(
                    self.router.tree_weight(shard.repository.tree(local_id))
                    for local_id in range(shard.repository.tree_count)
                )
                for shard in self.shards
            ]
        return self._shard_loads

    # -- queries --------------------------------------------------------------

    def _match_schema(
        self,
        personal_schema: SchemaTree,
        delta: Optional[float] = None,
        top_k: Optional[int] = None,
        deadline: Optional["Deadline"] = None,
    ) -> MatchResult:
        """Match one personal schema across all shards and merge the ranking.

        Semantics (and results, bit for bit) are those of the unsharded
        :meth:`MatchingService.match <repro.service.MatchingService.match>`
        over the merged repository.  Behind the public :meth:`match
        <repro.api.matcher.MatcherAPIMixin.match>` shim, which also accepts
        typed :class:`~repro.api.envelope.MatchRequest` envelopes.
        """
        return self._match_many_schemas(
            [personal_schema], delta=delta, top_k=top_k, deadline=deadline
        )[0]

    def _match_many_schemas(
        self,
        personal_schemas: Sequence[SchemaTree],
        delta: Optional[float] = None,
        top_k: Optional[int] = None,
        deadline: Optional["Deadline"] = None,
    ) -> List[MatchResult]:
        """Answer a batch of queries; result ``i`` belongs to schema ``i``.

        Structurally identical schemas collapse to one computation (the
        fingerprint dedup), cached rankings are served without touching any
        shard, and the remaining misses fan out as one task per (query,
        shard) pair through the executor.  A cache hit returns the previously
        merged result *object*; duplicates within one batch share their
        result object likewise.

        Both the cache and the in-batch dedup trust the schema fingerprint,
        so ``query_cache_size=0`` disables both — the escape hatch for
        custom matchers that read node ``properties``, which the fingerprint
        does not cover.
        """
        validate_query(delta, top_k)
        if not personal_schemas:
            return []
        effective_delta = self.delta if delta is None else delta
        version = (self.global_version, self.repository.version)
        dedup = bool(self.query_cache_size)

        # Deduplicate by fingerprint (+ everything the merged result depends on).
        positions: Dict[Tuple, List[int]] = {}
        unique: List[Tuple[Tuple, SchemaTree]] = []
        for index, schema in enumerate(personal_schemas):
            if dedup:
                key = (schema_fingerprint(schema), effective_delta, top_k, version)
            else:
                key = ("batch-entry", index)
            slots = positions.get(key)
            if slots is None:
                positions[key] = [index]
                unique.append((key, schema))
            else:
                slots.append(index)
        self.counters.increment("queries", len(personal_schemas))
        self.counters.increment("duplicate_queries", len(personal_schemas) - len(unique))

        # Serve what the front-end cache already holds.
        resolved: Dict[Tuple, MatchResult] = {}
        misses: List[Tuple[Tuple, SchemaTree]] = []
        for key, schema in unique:
            cached = self._result_cache.get(key) if self.query_cache_size else None
            if cached is not None:
                self.counters.increment("query_cache_hits")
                resolved[key] = cached
            else:
                if self.query_cache_size:
                    self.counters.increment("query_cache_misses")
                misses.append((key, schema))

        # Fan the misses out: one task per (query, shard), one shared
        # (translated) incumbent pool per query in top-k mode.
        tasks = []
        for key, schema in misses:
            pool = TopKPool(top_k) if top_k is not None else None
            for shard_id, shard in enumerate(self.shards):
                view = (
                    None
                    if pool is None
                    else TranslatingTopKPool(pool, self._translators[shard_id])
                )
                tasks.append((shard, schema, delta, top_k, view, deadline))
        self.counters.increment("shard_queries", len(tasks))
        if self._fanout is not None:
            # Resilient mode: the fanout's own thread pools run the shard
            # calls (with retries, hedging and circuit breaking); ``executor``
            # is not consulted for queries.
            fan_tasks = [
                (index % self.shard_count, task) for index, task in enumerate(tasks)
            ]
            outcomes = self._fanout.run(_run_shard_query, fan_tasks, deadline=deadline)
        else:
            outcomes = None
            if self.executor is not None and len(tasks) > 1:
                raw = self.executor.map(_run_shard_query, tasks)
            else:
                raw = [_run_shard_query(task) for task in tasks]
        for miss_index, (key, schema) in enumerate(misses):
            start = miss_index * self.shard_count
            if outcomes is None:
                pairs = list(enumerate(raw[start : start + self.shard_count]))
                skipped: Tuple[int, ...] = ()
            else:
                window = outcomes[start : start + self.shard_count]
                pairs = [(outcome.task_id, outcome.result) for outcome in window if outcome.ok]
                skipped = tuple(outcome.task_id for outcome in window if not outcome.ok)
                if not pairs:
                    reasons = "; ".join(
                        f"shard {outcome.task_id}: {outcome.skipped_reason or outcome.error}"
                        for outcome in window
                    )
                    raise ShardError(f"all {self.shard_count} shards failed ({reasons})")
            merged = self._merge_results(pairs, top_k, skipped=skipped)
            if merged.degraded:
                self.counters.increment("degraded_queries")
                self.counters.increment("shards_skipped", len(skipped))
            if merged.partial:
                self.counters.increment("partials_returned")
            # A partial (deadline-truncated) or degraded (missing-shard) merge
            # is not the canonical answer for its cache key — never cache it.
            if self.query_cache_size and not (merged.partial or merged.degraded):
                self._result_cache.put(key, merged)
            resolved[key] = merged

        results: List[Optional[MatchResult]] = [None] * len(personal_schemas)
        for key, slots in positions.items():
            for slot in slots:
                results[slot] = resolved[key]
        return results  # type: ignore[return-value]

    # -- merge ---------------------------------------------------------------

    def _merge_results(
        self,
        shard_pairs: Sequence[Tuple[int, MatchResult]],
        top_k: Optional[int],
        skipped: Tuple[int, ...] = (),
    ) -> MatchResult:
        """Merge ``(shard id, result)`` pairs into one merged-coordinate :class:`MatchResult`.

        In strict mode every shard contributes a pair and ``skipped`` is
        empty.  In resilient mode unreachable shards are absent from
        ``shard_pairs`` and listed in ``skipped`` instead — the merge then
        covers the surviving shards only and the result is marked
        ``degraded`` (with the skipped ids) so callers can tell the answer
        from the canonical full-repository one.
        """
        cluster_map = self._merged_cluster_ids(shard_pairs)

        translated_groups: List[List[SchemaMapping]] = []
        for shard_id, result in shard_pairs:
            translated_groups.append(
                [
                    self._translate_mapping(shard_id, mapping, cluster_map)
                    for mapping in result.mappings
                ]
            )
        mappings = merge_ranked(translated_groups)
        if top_k is not None:
            del mappings[top_k:]

        generation = GenerationResult(mappings=mappings)
        counters = CounterSet()
        timers = StageTimer()
        for _shard_id, result in shard_pairs:
            generation.counters.merge(result.generation.counters)
            generation.elapsed_seconds += result.generation.elapsed_seconds
            counters.merge(result.counters)
            timers.merge(result.timers)

        return MatchResult(
            variant_name=shard_pairs[0][1].variant_name,
            mappings=mappings,
            candidates=self._merge_candidates(shard_pairs),
            clustering=self._merge_clustering(shard_pairs, cluster_map),
            generation=generation,
            timers=timers,
            cluster_reports=self._merge_reports(shard_pairs, cluster_map),
            counters=counters,
            top_k=top_k,
            partial=any(result.partial for _shard_id, result in shard_pairs),
            degraded=bool(skipped),
            skipped_shards=tuple(sorted(skipped)),
        )

    def _merged_cluster_ids(
        self, shard_pairs: Sequence[Tuple[int, MatchResult]]
    ) -> Dict[Tuple[int, int], int]:
        """(shard id, local cluster id) → merged cluster id.

        Tree-local clusterers number clusters ordinally in (tree, fragment)
        order, and shard-local tree order follows merged tree order, so
        re-ranking every shard's clusters by (merged tree id, local cluster
        id) reproduces exactly the ids one clustering pass over the merged
        repository would assign.  (In a degraded merge the re-ranking covers
        the surviving shards only, so ids are ordinal within that subset.)
        """
        entries: List[Tuple[int, int, int]] = []
        for shard_id, result in shard_pairs:
            if result.clustering is None:  # pragma: no cover - service always clusters
                continue
            local_to_global = self._local_to_global[shard_id]
            for cluster in result.clustering.clusters:
                entries.append((local_to_global[cluster.tree_id], cluster.cluster_id, shard_id))
        entries.sort()
        return {
            (shard_id, local_id): merged_id
            for merged_id, (_tree, local_id, shard_id) in enumerate(entries)
        }

    def _translate_ref(self, shard_id: int, ref: RepositoryNodeRef) -> RepositoryNodeRef:
        tree_id = self._local_to_global[shard_id][ref.tree_id]
        return RepositoryNodeRef(
            global_id=self._global_offsets[tree_id] + ref.node_id,
            tree_id=tree_id,
            node_id=ref.node_id,
        )

    def _translate_mapping(
        self,
        shard_id: int,
        mapping: SchemaMapping,
        cluster_map: Dict[Tuple[int, int], int],
    ) -> SchemaMapping:
        assignment = {
            node_id: MappingElement(
                personal_node_id=element.personal_node_id,
                ref=self._translate_ref(shard_id, element.ref),
                similarity=element.similarity,
            )
            for node_id, element in mapping.assignment.items()
        }
        cluster_id = mapping.cluster_id
        if cluster_id is not None:
            cluster_id = cluster_map[(shard_id, cluster_id)]
        return SchemaMapping(
            assignment=assignment,
            score=mapping.score,
            components=dict(mapping.components),
            target_edge_count=mapping.target_edge_count,
            tree_id=self._local_to_global[shard_id][mapping.tree_id],
            cluster_id=cluster_id,
        )

    def _merge_candidates(
        self, shard_pairs: Sequence[Tuple[int, MatchResult]]
    ) -> MappingElementSets:
        """The union of the shards' candidate tables, in unsharded element order.

        The unsharded selector emits a node's elements in ascending global id
        (repository scan order); per shard the same holds locally, and
        translation is monotone within a shard, so sorting the translated
        union by global id reproduces the unsharded table exactly.
        """
        node_ids = shard_pairs[0][1].candidates.personal_node_ids
        merged = MappingElementSets(node_ids)
        for node_id in node_ids:
            elements: List[MappingElement] = []
            for shard_id, result in shard_pairs:
                elements.extend(
                    MappingElement(
                        personal_node_id=element.personal_node_id,
                        ref=self._translate_ref(shard_id, element.ref),
                        similarity=element.similarity,
                    )
                    for element in result.candidates.elements_for(node_id)
                )
            elements.sort(key=lambda element: element.ref.global_id)
            for element in elements:
                merged.add(element)
        return merged

    def _merge_clustering(
        self,
        shard_pairs: Sequence[Tuple[int, MatchResult]],
        cluster_map: Dict[Tuple[int, int], int],
    ) -> Optional[ClusteringResult]:
        clusters: List[Optional[Cluster]] = [None] * len(cluster_map)
        counters = CounterSet()
        elapsed = 0.0
        for shard_id, result in shard_pairs:
            if result.clustering is None:  # pragma: no cover - service always clusters
                return None
            counters.merge(result.clustering.counters)
            elapsed += result.clustering.elapsed_seconds
            for cluster in result.clustering.clusters:
                merged_id = cluster_map[(shard_id, cluster.cluster_id)]
                clusters[merged_id] = Cluster(
                    cluster_id=merged_id,
                    tree_id=self._local_to_global[shard_id][cluster.tree_id],
                    members={
                        self._translate_ref(shard_id, member) for member in cluster.members
                    },
                    centroid=(
                        None
                        if cluster.centroid is None
                        else self._translate_ref(shard_id, cluster.centroid)
                    ),
                )
        return ClusteringResult(
            clusters=ClusterSet(cluster for cluster in clusters if cluster is not None),
            counters=counters,
            elapsed_seconds=elapsed,
        )

    def _merge_reports(
        self,
        shard_pairs: Sequence[Tuple[int, MatchResult]],
        cluster_map: Dict[Tuple[int, int], int],
    ) -> List[ClusterReport]:
        reports: List[ClusterReport] = []
        for shard_id, result in shard_pairs:
            local_to_global = self._local_to_global[shard_id]
            reports.extend(
                ClusterReport(
                    cluster_id=cluster_map[(shard_id, report.cluster_id)],
                    tree_id=local_to_global[report.tree_id],
                    member_count=report.member_count,
                    mapping_element_count=report.mapping_element_count,
                    search_space=report.search_space,
                )
                for report in result.cluster_reports
            )
        reports.sort(key=lambda report: report.cluster_id)
        return reports

    # -- incremental updates --------------------------------------------------

    def add_tree(self, tree: SchemaTree) -> int:
        """Register a tree on the shard the router places it on.

        Returns the tree's *merged* id (always ``tree_count`` before the
        call, mirroring the append-only unsharded id assignment).
        """
        merged_id = len(self._assignment)
        weight = self.router.tree_weight(tree)
        shard_id = self.router.place(tree, self._loads(), merged_id)
        if not 0 <= shard_id < self.shard_count:
            raise ShardError(
                f"router {self.router.name!r} placed tree on unknown shard {shard_id}"
            )
        self.shards[shard_id].add_tree(tree)
        self._assignment.append(shard_id)
        self._loads()[shard_id] += weight
        self._rebuild_translation()
        self._result_cache.clear()
        self.global_version += 1
        self.counters.increment("trees_added")
        return merged_id

    def remove_tree(self, tree_id: int) -> SchemaTree:
        """Unregister the tree with merged id ``tree_id``.

        Later trees' merged ids slide down by one, exactly as in the
        unsharded repository.  Removing the last tree of a shard is refused
        (every shard must stay non-empty); rebalance to fewer shards instead.
        """
        if not 0 <= tree_id < len(self._assignment):
            raise UnknownTreeError(tree_id, context=f"sharded repository ({self.tree_count} trees)")
        shard_id, local_id = self._merged_to_local[tree_id]
        shard = self.shards[shard_id]
        if shard.repository.tree_count <= 1:
            raise ShardError(
                f"removing tree {tree_id} would empty shard {shard_id}; "
                "rebalance to fewer shards instead"
            )
        removed = shard.remove_tree(local_id)
        del self._assignment[tree_id]
        if self._shard_loads is not None:
            self._shard_loads[shard_id] -= self.router.tree_weight(removed)
        self._rebuild_translation()
        self._result_cache.clear()
        self.global_version += 1
        self.counters.increment("trees_removed")
        return removed

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Operational summary with a per-shard breakdown.

        The top level mirrors :meth:`MatchingService.stats
        <repro.service.MatchingService.stats>` in merged coordinates (sizes,
        cache shape, executor, counters); ``per_shard`` holds each shard's
        own stats dict.
        """
        summary: Dict[str, object] = dict(self.repository.summary())
        summary["backend"] = self.backend_kind
        summary["protocol_version"] = PROTOCOL_VERSION
        summary["shards"] = self.shard_count
        summary["router"] = self.router.name
        summary["global_version"] = self.global_version
        summary["repository_version"] = self.repository.version
        summary["executor"] = "serial" if self.executor is None else self.executor.name
        summary["query_cache_capacity"] = self.query_cache_size
        summary["query_cache_entries"] = len(self._result_cache)
        if self._fanout is not None:
            summary["resilience"] = self.resilience.describe()
            summary["breaker_states"] = self._fanout.breaker_states()
        summary.update(self.counters.as_dict())
        summary["per_shard"] = [
            dict(shard.stats(), shard=shard_id)
            for shard_id, shard in enumerate(self.shards)
        ]
        return summary

    def _capabilities(self):
        capabilities = super()._capabilities() | {"mutations", "shards"}
        if self._fanout is not None:
            capabilities |= {"resilience"}
        return capabilities

    def _describe_extra(self) -> Dict[str, object]:
        return {
            "variant": PartitionClusterer.name,
            "shards": self.shard_count,
            "router": self.router.name,
            "query_cache_capacity": self.query_cache_size,
            "query_cache_kind": "merged results",
            "resilience": None if self.resilience is None else self.resilience.describe(),
            "per_shard": [
                {
                    "shard": shard_id,
                    "trees": shard.repository.tree_count,
                    "nodes": shard.repository.node_count,
                }
                for shard_id, shard in enumerate(self.shards)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedMatchingService(shards={self.shard_count}, trees={self.tree_count}, "
            f"router={self.router.name!r})"
        )

"""Zero-copy service views over a frozen snapshot.

:func:`load_frozen_service` returns a ready
:class:`~repro.service.MatchingService` in O(header) time regardless of
repository size: every heavy structure is a *view* class that satisfies the
same sequence contracts as its JSON-loaded counterpart but reads straight from
the snapshot's ``mmap`` segments and materializes Python objects per tree / per
name / per gram, on first touch only.

* :class:`FrozenRepository` — a :class:`~repro.schema.repository.SchemaRepository`
  whose tree list decodes lazily (``locate``/``tree_offset`` run on the mapped
  offset array without touching a single tree);
* :class:`FrozenNameIndex` — a :class:`~repro.matchers.index.RepositoryNameIndex`
  over mapped key/ref/posting tables, with the banded candidate path enabled
  (the posting lists are already on disk, so the sublinear scan is free);
* :class:`FrozenRepositoryDistanceOracle` — per-tree
  :class:`~repro.labeling.distance.TreeDistanceOracle` objects re-sliced out of
  the flat Euler-tour / sparse-table segments;
* :class:`FrozenPartition` — fragment lists decoded per tree from one CSR pair.

Mutation semantics
------------------
Frozen state is *read-optimized*, not read-only: the first mutation thaws the
affected structure into its plain in-memory form (the repository materializes
every tree and literally becomes a ``SchemaRepository``; indexes materialize
and delegate to the copy-on-write incremental constructors; the partition
materializes its frozen entries before re-keying).  Results after a mutation
are therefore identical to mutating a JSON-loaded service — the frozen layer
only changes *when* objects get built, never what they contain.

Pickling (process executors)
----------------------------
View objects wrap ``memoryview``\\ s, which cannot travel between processes.
While pristine (repository version 0, no removals) every frozen class reduces
to a module-level reopen function carrying only the snapshot path: workers
attach to one per-process mapping (:func:`repro.storage.format.open_frozen`)
and share one lazily built repository/oracle pair per snapshot
(``FrozenSnapshot.runtime``), so a pool task payload is a few hundred bytes.
After a mutation the thawed plain structures pickle by copy exactly as their
JSON-loaded counterparts do.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    ClusteringError,
    ConfigurationError,
    UnknownTreeError,
)
from repro.labeling.distance import RepositoryDistanceOracle, TreeDistanceOracle
from repro.matchers.index import _VERSION_COUNTER, RepositoryNameIndex
from repro.schema.node import SchemaNode
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.schema.serialization import _DATATYPE_BY_VALUE, _KIND_BY_VALUE
from repro.schema.tree import SchemaTree
from repro.service.partition import PartitionClusterer, RepositoryPartition
from repro.storage.format import FrozenSnapshot, open_frozen


class LazyStringTable:
    """Sequence of strings decoded on demand from an offset array + UTF-8 blob.

    ``offsets`` has one more entry than there are strings; string ``i`` is the
    UTF-8 bytes ``blob[offsets[i]:offsets[i+1]]``.  Decoded strings are cached
    per index (the write-once race between threads is benign — both writers
    store an equal string).
    """

    __slots__ = ("_offsets", "_blob", "_cache")

    def __init__(self, offsets, blob) -> None:
        self._offsets = offsets
        self._blob = blob
        self._cache: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        if not 0 <= index < len(self):
            raise IndexError(index)
        start = self._offsets[index]
        end = self._offsets[index + 1]
        value = bytes(self._blob[start:end]).decode("utf-8")
        self._cache[index] = value
        return value

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]


class _LazyTreeList:
    """List-contract view over the frozen forest, materializing per tree.

    The lock makes materialization single-shot per tree id: callers compare
    trees by identity (``oracle.tree is repository.tree(tree_id)``), so two
    racing first touches must not hand out two distinct objects.
    """

    __slots__ = ("_repository", "_trees", "_lock")

    def __init__(self, repository: "FrozenRepository", tree_count: int) -> None:
        self._repository = repository
        self._trees: List[Optional[SchemaTree]] = [None] * tree_count
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._trees)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._trees)))]
        tree = self._trees[index]
        if tree is None:
            if index < 0:
                index += len(self._trees)
            with self._lock:
                tree = self._trees[index]
                if tree is None:
                    tree = self._trees[index] = self._repository._materialize_tree(index)
        return tree

    def __iter__(self):
        for index in range(len(self._trees)):
            yield self[index]


class _LazyRefList:
    """Per-name :class:`RepositoryNodeRef` lists decoded from a global-id CSR.

    Tree ids are recovered by bisection over the repository's tree-offset
    array (node id = global id - tree offset), so the segment stores one int
    per reference.  Decoded lists are cached — the matching pipeline fans
    scores out through the same survivors repeatedly.
    """

    __slots__ = ("_ref_offsets", "_ref_globals", "_tree_offsets", "_cache")

    def __init__(self, ref_offsets, ref_globals, tree_offsets) -> None:
        self._ref_offsets = ref_offsets
        self._ref_globals = ref_globals
        self._tree_offsets = tree_offsets
        self._cache: Dict[int, List[RepositoryNodeRef]] = {}

    def __len__(self) -> int:
        return len(self._ref_offsets) - 1

    def __getitem__(self, name_id: int) -> List[RepositoryNodeRef]:
        refs = self._cache.get(name_id)
        if refs is not None:
            return refs
        if name_id < 0:
            name_id += len(self)
        start = self._ref_offsets[name_id]
        end = self._ref_offsets[name_id + 1]
        tree_offsets = self._tree_offsets
        refs = []
        for global_id in self._ref_globals[start:end]:
            tree_id = bisect_right(tree_offsets, global_id) - 1
            refs.append(
                RepositoryNodeRef(
                    global_id=global_id,
                    tree_id=tree_id,
                    node_id=global_id - tree_offsets[tree_id],
                )
            )
        self._cache[name_id] = refs
        return refs

    def __iter__(self):
        for name_id in range(len(self)):
            yield self[name_id]


#: Instance attributes holding mmap-backed state; deleted on thaw and popped
#: from any pickled state (memoryviews cannot travel).
_REPOSITORY_VIEW_ATTRS = (
    "_snapshot",
    "_tree_sizes",
    "_parents",
    "_name_refs",
    "_kinds",
    "_datatypes",
    "_tree_names",
    "_node_names",
    "_kind_values",
    "_datatype_values",
    "_properties_raw",
    "_properties",
    "_frozen_summary",
)

_ORACLE_VIEW_ATTRS = (
    "_snapshot",
    "_tour_offsets",
    "_euler_nodes",
    "_euler_depths",
    "_first_occurrence",
    "_rmq_offsets",
    "_rmq_values",
)

_PARTITION_VIEW_ATTRS = ("_snapshot", "_frag_offsets", "_member_offsets", "_members")


class FrozenRepository(SchemaRepository):
    """A repository whose forest lives in a frozen snapshot's segments.

    Construction is O(header).  ``locate``/``tree_offset``/``summary`` never
    touch a tree; ``tree(tree_id)`` materializes exactly that tree (same node
    construction path as :func:`repro.schema.serialization.tree_from_dict`).
    The first mutation thaws the whole forest and switches the instance's
    class to plain :class:`SchemaRepository` — after that the object is
    indistinguishable from a JSON-loaded repository.
    """

    def __init__(self, snapshot: FrozenSnapshot) -> None:
        meta = snapshot.header["repository"]
        super().__init__(name=meta.get("name", "repository"))
        self._snapshot = snapshot
        self._offsets = snapshot.int32("forest/tree_offsets")
        self._tree_sizes = snapshot.int32("forest/tree_sizes")
        self._parents = snapshot.int32("forest/parents")
        self._name_refs = snapshot.int32("forest/name_refs")
        self._kinds = snapshot.int8("forest/kinds")
        self._datatypes = snapshot.int8("forest/datatypes")
        self._tree_names = LazyStringTable(
            snapshot.int32("forest/tree_name_offsets"), snapshot.raw("forest/tree_name_blob")
        )
        self._node_names = LazyStringTable(
            snapshot.int32("names/offsets"), snapshot.raw("names/blob")
        )
        header = snapshot.header
        self._kind_values = [_KIND_BY_VALUE[value] for value in header.get("kinds", [])]
        self._datatype_values = [
            _DATATYPE_BY_VALUE[value] for value in header.get("datatypes", [])
        ]
        self._properties_raw = snapshot.raw("forest/properties")
        self._properties: Optional[Dict[str, Any]] = None
        self._total_nodes = int(meta["node_count"])
        self._frozen_summary = {
            "trees": int(meta["tree_count"]),
            "nodes": int(meta["node_count"]),
            "largest_tree": int(meta.get("largest_tree", 0)),
            "smallest_tree": int(meta.get("smallest_tree", 0)),
        }
        self._trees = _LazyTreeList(self, int(meta["tree_count"]))

    # -- lazy materialization -------------------------------------------------

    def _tree_properties(self, tree_id: int) -> Dict[str, Any]:
        properties = self._properties
        if properties is None:
            raw = self._properties_raw
            properties = json.loads(bytes(raw).decode("utf-8")) if len(raw) else {}
            self._properties = properties
        return properties.get(str(tree_id), {})

    def _materialize_tree(self, tree_id: int) -> SchemaTree:
        """Decode one tree (same trusted bulk path as ``tree_from_dict``)."""
        base = self._offsets[tree_id]
        size = self._tree_sizes[tree_id]
        tree = SchemaTree(name=self._tree_names[tree_id])
        parents_view = self._parents
        name_refs = self._name_refs
        kinds = self._kinds
        datatypes = self._datatypes
        kind_values = self._kind_values
        datatype_values = self._datatype_values
        node_names = self._node_names
        tree_properties = self._tree_properties(tree_id)
        nodes: List[SchemaNode] = []
        parents: List[int] = []
        for local_id in range(size):
            position = base + local_id
            node = SchemaNode.__new__(SchemaNode)
            node.name = node_names[name_refs[position]]
            node.kind = kind_values[kinds[position]]
            node.datatype = datatype_values[datatypes[position]]
            props = tree_properties.get(str(local_id)) if tree_properties else None
            node.properties = dict(props) if props else {}
            node.node_id = -1
            nodes.append(node)
            parents.append(parents_view[position])
        tree._bulk_attach(nodes, parents)
        tree.tree_id = tree_id
        return tree

    # -- O(header) overrides --------------------------------------------------

    def tree_offset(self, tree_id: int) -> int:
        if not 0 <= tree_id < len(self._trees):
            raise UnknownTreeError(tree_id, context=f"repository {self.name!r}")
        return self._offsets[tree_id]

    def summary(self) -> Dict[str, int]:
        return dict(self._frozen_summary)

    # -- mutations thaw -------------------------------------------------------

    def _thaw(self) -> None:
        """Materialize every tree and become a plain ``SchemaRepository``.

        Already-materialized trees are reused (identity matters: installed
        oracles hold references into the lazy list), the mapped offset array
        is copied into a plain list, and every view attribute is dropped so
        the thawed object pickles by copy like any other repository.
        """
        self._trees = [self._trees[tree_id] for tree_id in range(len(self._trees))]
        self._offsets = [int(offset) for offset in self._offsets]
        for attr in _REPOSITORY_VIEW_ATTRS:
            self.__dict__.pop(attr, None)
        self.__class__ = SchemaRepository

    def add_tree(self, tree: SchemaTree) -> int:
        self._thaw()
        return SchemaRepository.add_tree(self, tree)

    def remove_tree(self, tree_id: int) -> SchemaTree:
        self._thaw()
        return SchemaRepository.remove_tree(self, tree_id)

    # -- pickling (process executors) ----------------------------------------
    # Only reachable while the class is still FrozenRepository (thaw switches
    # the class, restoring the plain copy path): workers reopen the snapshot
    # and share one repository per process instead of copying the forest.

    def __reduce_ex__(self, protocol):
        return (_reopen_frozen_repository, (self._snapshot.source_path,))


class FrozenNameIndex(RepositoryNameIndex):
    """A name index over a frozen snapshot's key/ref/posting segments.

    Construction is O(header): keys, per-name refs, gram postings and the
    per-node name-id array are all mapped views decoded on first touch.  The
    banded candidate path is enabled — the posting lists this index answers
    from are exactly the segments the banded scan needs, so queries against a
    large frozen repository stay sublinear in the unique-name count.

    Incremental updates (:meth:`with_tree_added` / :meth:`with_tree_removed`)
    materialize a plain :class:`RepositoryNameIndex` and delegate to its
    copy-on-write constructors, so a mutated frozen service maintains its
    indexes exactly like a JSON-loaded one.
    """

    def __init__(self, snapshot: FrozenSnapshot, position: int) -> None:
        meta = snapshot.header["indexes"][position]
        prefix = f"index{position}"
        self._snapshot = snapshot
        self._position = position
        self.case_sensitive = bool(meta["case_sensitive"])
        self.version = next(_VERSION_COUNTER)
        self.repository_version = 0
        self.node_count = int(snapshot.header["repository"]["node_count"])
        self.keys = LazyStringTable(
            snapshot.int32(f"{prefix}/key_offsets"), snapshot.raw(f"{prefix}/key_blob")
        )
        self._key_lengths = snapshot.int32(f"{prefix}/key_lengths")
        self._node_name_ids = snapshot.int32(f"{prefix}/node_name_ids")
        self._ref_offsets = snapshot.int32(f"{prefix}/ref_offsets")
        self._refs = _LazyRefList(
            self._ref_offsets,
            snapshot.int32(f"{prefix}/ref_globals"),
            snapshot.int32("forest/tree_offsets"),
        )
        self._gram_counts_view = snapshot.int32(f"{prefix}/gram_counts")
        self._gram_table = LazyStringTable(
            snapshot.int32(f"{prefix}/gram_offsets"), snapshot.raw(f"{prefix}/gram_blob")
        )
        self._posting_offsets = snapshot.int32(f"{prefix}/posting_offsets")
        self._posting_values = snapshot.int32(f"{prefix}/posting_values")
        self._max_key_length = int(meta["max_key_length"])
        self._key_to_id: Optional[Dict[str, int]] = None
        self._ids_by_length = None
        self._pairs_by_length: Dict[int, int] = {}
        self._gram_counts: Any = []
        self._postings: Dict[str, Any] = {}
        self._banded_enabled = True

    # -- lazy lookups ---------------------------------------------------------

    def id_for(self, key: str) -> Optional[int]:
        mapping = self._key_to_id
        if mapping is None:
            mapping = self._key_to_id = {key: name_id for name_id, key in enumerate(self.keys)}
        return mapping.get(key)

    def fanout(self, name_id: int) -> int:
        return self._ref_offsets[name_id + 1] - self._ref_offsets[name_id]

    def gram_count(self, name_id: int) -> int:
        return self._gram_counts_view[name_id]

    def node_name_ids(self):
        return self._node_name_ids

    def packed_name_table(self):
        # Building the kernel's code-point matrix would decode and copy every
        # key — exactly the O(names) cost a frozen open avoids.  Declining is
        # loss-free: the scalar loop is bit-identical to the kernel (pinned by
        # tests/kernels) and the banded scan keeps survivor sets small.
        return None

    def _gram_id(self, gram: str) -> Optional[int]:
        """Binary search in the sorted on-disk gram table (no full decode)."""
        table = self._gram_table
        low, high = 0, len(table)
        while low < high:
            middle = (low + high) // 2
            if table[middle] < gram:
                low = middle + 1
            else:
                high = middle
        if low < len(table) and table[low] == gram:
            return low
        return None

    def _posting_view(self, gram_id: int):
        return self._posting_values[
            self._posting_offsets[gram_id] : self._posting_offsets[gram_id + 1]
        ]

    def gram_overlap_counts(self, query_grams) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        get = counts.get
        for gram in query_grams:
            gram_id = self._gram_id(gram)
            if gram_id is None:
                continue
            for name_id in self._posting_view(gram_id):
                counts[name_id] = get(name_id, 0) + 1
        return counts

    def _ensure_blocking(self):
        """Length buckets from the mapped key-length array (no key decode)."""
        ids_by_length = self._ids_by_length
        if ids_by_length is not None:
            return ids_by_length
        ids_by_length = {}
        pairs_by_length: Dict[int, int] = {}
        lengths = self._key_lengths
        offsets = self._ref_offsets
        for name_id in range(len(lengths)):
            length = lengths[name_id]
            ids_by_length.setdefault(length, []).append(name_id)
            pairs_by_length[length] = (
                pairs_by_length.get(length, 0) + offsets[name_id + 1] - offsets[name_id]
            )
        self._pairs_by_length = pairs_by_length
        self._gram_counts = self._gram_counts_view
        self._ids_by_length = ids_by_length
        return ids_by_length

    def blocking_payload(self) -> Optional[Dict[str, object]]:
        # The frozen segments *are* the blocking structures, so a snapshot
        # write can always persist them (decoding is explicit-write-time cost).
        postings: Dict[str, List[int]] = {}
        table = self._gram_table
        for gram_id in range(len(table)):
            postings[table[gram_id]] = list(self._posting_view(gram_id))
        return {"gram_counts": list(self._gram_counts_view), "postings": postings}

    def install_blocking(self, gram_counts, postings) -> None:  # pragma: no cover
        raise ConfigurationError("a frozen name index already carries its blocking segments")

    # -- banded hooks (same algorithm, mmap-backed data) -----------------------

    def _banded_prepare(self) -> None:
        pass

    def _banded_max_key_length(self) -> int:
        return self._max_key_length

    def _banded_posting(self, gram: str):
        gram_id = self._gram_id(gram)
        return () if gram_id is None else self._posting_view(gram_id)

    def _banded_name_length(self, name_id: int) -> int:
        return self._key_lengths[name_id]

    # -- incremental updates materialize --------------------------------------

    def _materialize(self) -> RepositoryNameIndex:
        """A plain, fully decoded copy (feeds the copy-on-write constructors)."""
        plain = RepositoryNameIndex.__new__(RepositoryNameIndex)
        plain.case_sensitive = self.case_sensitive
        plain.version = next(_VERSION_COUNTER)
        plain.repository_version = self.repository_version
        plain.node_count = self.node_count
        keys = [key for key in self.keys]
        plain.keys = keys
        plain._refs = [self._refs[name_id] for name_id in range(len(keys))]
        plain._key_to_id = {key: name_id for name_id, key in enumerate(keys)}
        plain._banded_enabled = True
        plain._gram_counts = list(self._gram_counts_view)
        table = self._gram_table
        plain._postings = {
            table[gram_id]: list(self._posting_view(gram_id)) for gram_id in range(len(table))
        }
        plain._rebuild_length_buckets()
        return plain

    def with_tree_added(self, repository, tree_id):
        return self._materialize().with_tree_added(repository, tree_id)

    def with_tree_removed(self, repository, removed_tree_id, removed_node_count):
        return self._materialize().with_tree_removed(
            repository, removed_tree_id, removed_node_count
        )

    # -- pickling (process executors) ----------------------------------------
    # Index instances are immutable snapshots, so the redirect is
    # unconditional: workers reopen the mapped index (cached per snapshot and
    # position) instead of copying the decoded tables.

    def __reduce_ex__(self, protocol):
        return (_reopen_frozen_index, (self._snapshot.source_path, self._position))


class FrozenRepositoryDistanceOracle(RepositoryDistanceOracle):
    """Per-tree distance oracles re-sliced from frozen tour/sparse segments.

    ``oracle(tree_id)`` decodes the tree's Euler tour, first-occurrence row
    and sparse-table levels as zero-copy slices (the flat layout mirrors the
    JSON snapshot's ``_pack_oracle``) while the repository is pristine
    (version 0); trees added later — possible after a thaw — fall through to
    the normal lazy build.  Removals shift tree ids, so the mutation path
    never reaches the frozen decode: the version gate closes first.
    """

    def __init__(self, snapshot: FrozenSnapshot, repository: FrozenRepository) -> None:
        super().__init__(repository)
        self._snapshot = snapshot
        self._tour_offsets = snapshot.int32("oracle/tour_offsets")
        self._euler_nodes = snapshot.int32("oracle/euler_nodes")
        self._euler_depths = snapshot.int32("oracle/euler_depths")
        self._first_occurrence = snapshot.int32("oracle/first_occurrence")
        self._rmq_offsets = snapshot.int32("oracle/rmq_offsets")
        self._rmq_values = snapshot.int32("oracle/rmq_values")
        self._frozen_tree_count = int(snapshot.header["repository"]["tree_count"])
        self._frozen_active = True

    def _decode_tree(self, tree_id: int) -> TreeDistanceOracle:
        start = self._tour_offsets[tree_id]
        end = self._tour_offsets[tree_id + 1]
        euler_depths = self._euler_depths[start:end]
        size = end - start
        node_count = (size + 1) // 2
        base = self.repository.tree_offset(tree_id)
        levels: List[Any] = [range(size)]
        position = self._rmq_offsets[tree_id]
        level = 1
        while (1 << level) <= size:
            width = size - (1 << level) + 1
            levels.append(self._rmq_values[position : position + width])
            position += width
            level += 1
        payload = {
            "euler_nodes": self._euler_nodes[start:end],
            "euler_depths": euler_depths,
            "first_occurrence": self._first_occurrence[base : base + node_count],
            "rmq_levels": levels,
        }
        return TreeDistanceOracle.from_payload(self.repository.tree(tree_id), payload)

    def oracle(self, tree_id: int) -> TreeDistanceOracle:
        cached = self._oracles.get(tree_id)
        if cached is not None:
            return cached
        if (
            self._frozen_active
            and getattr(self.repository, "version", None) == 0
            and 0 <= tree_id < self._frozen_tree_count
        ):
            with self._build_lock:
                cached = self._oracles.get(tree_id)
                if cached is None:
                    cached = self._decode_tree(tree_id)
                    self._oracles[tree_id] = cached
            return cached
        return super().oracle(tree_id)

    # -- pickling (process executors) ----------------------------------------

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        for attr in _ORACLE_VIEW_ATTRS:
            state.pop(attr, None)
        state["_frozen_active"] = False
        return state

    def __reduce_ex__(self, protocol):
        # Precedence mirrors the base class: a live shared-memory publication
        # wins (the base redirect handles it), then the frozen reopen while
        # the repository is pristine, then the plain copy path (view attrs
        # stripped by __getstate__ above).
        view = getattr(self.repository, "_shared_view", None)
        if (
            view is not None
            and not view.stale
            and view.repository_version == getattr(self.repository, "version", None)
        ):
            return super().__reduce_ex__(protocol)
        if self._frozen_active and getattr(self.repository, "version", 0) == 0:
            return (_reopen_frozen_oracle, (self._snapshot.source_path,))
        return super().__reduce_ex__(protocol)


class FrozenPartition(RepositoryPartition):
    """A repository partition whose fragment lists live in frozen CSR segments.

    Entries decode per tree on first use.  Additions never touch frozen
    entries (fragmentation is tree-local and tree ids are append-only);
    removals shift tree ids, so :meth:`on_tree_removed` materializes every
    frozen entry and deactivates the segment-backed path before re-keying.
    """

    def __init__(self, snapshot: FrozenSnapshot, reclustering=None) -> None:
        meta = snapshot.header["partition"]
        super().__init__(
            max_fragment_size=int(meta["max_fragment_size"]), reclustering=reclustering
        )
        self._snapshot = snapshot
        self._frag_offsets = snapshot.int32("partition/fragment_offsets")
        self._member_offsets = snapshot.int32("partition/member_offsets")
        self._members = snapshot.int32("partition/members")
        self._frozen_tree_count = int(snapshot.header["repository"]["tree_count"])
        self._frozen_active = True

    def _decode_frozen_tree(self, tree_id: int) -> List[List[int]]:
        fragments: List[List[int]] = []
        member_offsets = self._member_offsets
        members = self._members
        for fragment in range(self._frag_offsets[tree_id], self._frag_offsets[tree_id + 1]):
            fragments.append(list(members[member_offsets[fragment] : member_offsets[fragment + 1]]))
        self._fragments[tree_id] = fragments
        self._node_fragment[tree_id] = {
            node_id: index for index, members in enumerate(fragments) for node_id in members
        }
        return fragments

    def fragments_for(self, repository, tree_id, oracle=None):
        fragments = self._fragments.get(tree_id)
        if fragments is not None:
            return fragments
        if self._frozen_active and 0 <= tree_id < self._frozen_tree_count:
            return self._decode_frozen_tree(tree_id)
        return super().fragments_for(repository, tree_id, oracle)

    def _materialize_frozen(self) -> None:
        if not self._frozen_active:
            return
        for tree_id in range(self._frozen_tree_count):
            if tree_id not in self._fragments:
                self._decode_frozen_tree(tree_id)
        self._frozen_active = False

    def on_tree_removed(self, removed_tree_id: int) -> None:
        # Frozen entries are keyed by pre-removal tree ids; decode them all
        # before the re-keying shifts the id space out from under the CSR.
        self._materialize_frozen()
        super().on_tree_removed(removed_tree_id)

    def to_payload(self) -> Dict[str, object]:
        # The base method serializes the materialized dict only; decode the
        # frozen remainder first so snapshots written from a frozen service
        # are as complete as the source file.
        if self._frozen_active:
            for tree_id in range(self._frozen_tree_count):
                if tree_id not in self._fragments:
                    self._decode_frozen_tree(tree_id)
        return super().to_payload()

    # -- pickling (process executors) ----------------------------------------

    def __getstate__(self) -> dict:
        self._materialize_frozen()
        state = self.__dict__.copy()
        for attr in _PARTITION_VIEW_ATTRS:
            state.pop(attr, None)
        return state

    def __reduce_ex__(self, protocol):
        if self._frozen_active:
            return (_reopen_frozen_partition, (self._snapshot.source_path, self.reclustering))
        return super().__reduce_ex__(protocol)


# -- worker reopen fast path ---------------------------------------------------


def _frozen_runtime(path: str) -> Tuple[FrozenRepository, FrozenRepositoryDistanceOracle]:
    """One lazily built (repository, oracle) pair per snapshot per process.

    Every unpickled task against the same frozen file shares one attached
    object graph — including the frozen name indexes, which are installed into
    the repository's cache so a worker-side query never rescans names.  A
    runtime whose repository has been thawed or mutated (possible only if user
    code mutates an unpickled service) is discarded and rebuilt pristine.
    """
    snapshot = open_frozen(path)
    positions = range(len(snapshot.header.get("indexes", [])))
    # Resolve the index singletons *before* taking the runtime lock —
    # cached_index takes the same (non-reentrant) lock.
    indexes = [
        snapshot.cached_index(position, lambda position=position: FrozenNameIndex(snapshot, position))
        for position in positions
    ]
    with snapshot.lock:
        runtime = snapshot.runtime
        if (
            runtime is None
            or type(runtime[0]) is not FrozenRepository
            or runtime[0].version != 0
        ):
            repository = FrozenRepository(snapshot)
            for index in indexes:
                repository.install_name_index(index)
            oracle = FrozenRepositoryDistanceOracle(snapshot, repository)
            runtime = snapshot.runtime = (repository, oracle)
    return runtime


def _reopen_frozen_repository(path: str) -> FrozenRepository:
    return _frozen_runtime(path)[0]


def _reopen_frozen_oracle(path: str) -> FrozenRepositoryDistanceOracle:
    return _frozen_runtime(path)[1]


def _reopen_frozen_index(path: str, position: int) -> FrozenNameIndex:
    snapshot = open_frozen(path)
    return snapshot.cached_index(
        position, lambda: FrozenNameIndex(snapshot, position)
    )


def _reopen_frozen_partition(path: str, reclustering) -> FrozenPartition:
    return FrozenPartition(open_frozen(path), reclustering=reclustering)


# -- service assembly ----------------------------------------------------------


def load_frozen_service(
    source,
    *,
    matcher=None,
    objective=None,
    generator=None,
    clusterer=None,
    executor=None,
    partition_reclustering=None,
    query_cache_size: Optional[int] = None,
):
    """A ready :class:`~repro.service.MatchingService` over a frozen snapshot.

    O(header) regardless of repository size: the repository, name indexes,
    distance oracle and partition are all frozen views.  The keyword overrides
    mirror :func:`repro.service.snapshot.load_snapshot` exactly — which also
    dispatches here when handed a frozen file, so callers never need to know
    which carrier a snapshot uses.

    Each call builds a fresh object graph over the (shared, read-only) mapped
    segments, so two loaded services never observe each other's thaws.
    """
    from repro.service.service import MatchingService
    from repro.service.snapshot import _matcher_from_config

    snapshot = source if isinstance(source, FrozenSnapshot) else open_frozen(source)
    header = snapshot.header
    config = header.get("config", {})
    repository = FrozenRepository(snapshot)
    if matcher is None:
        matcher = _matcher_from_config(config.get("matcher"))

    variant = config.get("variant")
    kwargs: Dict[str, Any] = {}
    if clusterer is not None:
        kwargs["clusterer"] = clusterer
    elif variant == PartitionClusterer.name:
        partition_meta = header.get("partition")
        if partition_meta is not None:
            recorded = partition_meta.get("reclustering")
            if recorded is not None and partition_reclustering is None:
                raise ClusteringError(
                    f"frozen partition was built with reclustering strategy {recorded!r}; "
                    "pass an equivalent strategy via partition_reclustering to load it"
                )
            kwargs["clusterer"] = PartitionClusterer(
                FrozenPartition(snapshot, reclustering=partition_reclustering)
            )
    elif variant is not None:
        kwargs["variant"] = variant
    else:
        raise ConfigurationError(
            "frozen snapshot was written with a custom clusterer; pass clusterer= to load it"
        )

    service = MatchingService(
        repository,
        matcher=matcher,
        objective=objective,
        generator=generator,
        element_threshold=float(config.get("element_threshold", 0.6)),
        delta=float(config.get("delta", 0.75)),
        use_batch_matching=config.get("use_batch_matching"),
        executor=executor,
        query_cache_size=(
            int(config.get("query_cache_size", 64))
            if query_cache_size is None
            else query_cache_size
        ),
        **kwargs,
    )
    # The pipeline builds a plain lazy oracle in its constructor; swap in the
    # frozen one before anything queries it (Bellflower reads ``self.oracle``
    # at call time only).
    service._system.oracle = FrozenRepositoryDistanceOracle(snapshot, repository)
    for position in range(len(header.get("indexes", []))):
        repository.install_name_index(FrozenNameIndex(snapshot, position))
    return service

"""Streaming builders for frozen snapshots.

Three entry points, all writing through :class:`_FrozenWriter`:

* :func:`freeze_service` — persist a live service (the frozen sibling of
  :func:`repro.service.snapshot.write_snapshot`);
* :func:`freeze_snapshot_file` — convert a JSON snapshot file, streaming one
  tree at a time (the JSON document is parsed once, but trees, oracles and
  fragments are decoded, folded into the writer's flat arrays and dropped
  individually — no :class:`~repro.schema.SchemaRepository` and no second copy
  of the forest ever exists in memory);
* :func:`compact_frozen` — merge mutations (added / removed trees) into a new
  frozen generation, copying the surviving trees' oracle and partition
  segments slice-for-slice out of the source mapping without decoding them.

The writer accumulates plain ``array('i')`` / ``bytearray`` buffers — ints,
never per-node Python objects — so freezing a million-node repository costs a
few flat integer arrays, not a materialized object forest.
"""

from __future__ import annotations

import hashlib
import json
from array import array
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ClusteringError, ReproError
from repro.labeling.distance import TreeDistanceOracle
from repro.matchers.string_metrics import _ngrams
from repro.schema.repository import SchemaRepository
from repro.schema.serialization import _FORMAT_VERSION, tree_from_dict
from repro.schema.tree import SchemaTree
from repro.service.fingerprint import schema_fingerprint
from repro.service.partition import RepositoryPartition
from repro.service.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    _unpack_ints,
    _unpack_oracle,
    _unpack_partition,
)
from repro.storage.format import SegmentWriter, is_frozen_file, open_frozen

#: Trigram size used for index posting segments; must match
#: :attr:`repro.matchers.index.RepositoryNameIndex.gram_size`.
_GRAM_SIZE = 3


class _FrozenWriter:
    """Accumulates a repository, its derived state and its indexes as flat
    arrays, then assembles the segment image (see the catalog in
    ``docs/ARCHITECTURE.md``).

    ``add_tree`` is strictly streaming: it folds one tree's structure into the
    growing arrays and keeps no reference to the tree.  Oracle payloads and
    fragment lists are optional per tree — when omitted they are built from
    the tree itself, so every frozen file is *complete* (the frozen loader
    never rebuilds derived state).
    """

    def __init__(self, repository_name: str) -> None:
        self.repository_name = repository_name
        self._config: Dict[str, Any] = {}
        self._partition_meta: Optional[Dict[str, Any]] = None
        # forest
        self._tree_offsets = array("i")
        self._tree_sizes = array("i")
        self._tree_name_offsets = array("i", [0])
        self._tree_name_blob = bytearray()
        self._parents = array("i")
        self._name_refs = array("i")
        self._kinds = bytearray()
        self._datatypes = bytearray()
        self._kind_codes: Dict[str, int] = {}
        self._datatype_codes: Dict[str, int] = {}
        self._names: List[str] = []
        self._name_ids: Dict[str, int] = {}
        self._properties: Dict[str, Dict[str, Any]] = {}
        # oracle
        self._tour_offsets = array("i", [0])
        self._euler_nodes = array("i")
        self._euler_depths = array("i")
        self._first_occurrence = array("i")
        self._rmq_offsets = array("i", [0])
        self._rmq_values = array("i")
        # partition
        self._frag_offsets = array("i", [0])
        self._member_offsets = array("i", [0])
        self._members = array("i")
        # indexes
        self._indexes: List[Dict[str, Any]] = []
        # bookkeeping
        self._total_nodes = 0
        self._largest_tree = 0
        self._smallest_tree = 0
        self._digest = hashlib.sha256()

    # -- configuration --------------------------------------------------------

    def set_config(self, config: Dict[str, Any]) -> None:
        self._config = dict(config)

    def set_partition(self, max_fragment_size: int, reclustering: Optional[str]) -> None:
        self._partition_meta = {
            "max_fragment_size": int(max_fragment_size),
            "reclustering": reclustering,
        }

    # -- forest streaming -----------------------------------------------------

    def add_tree(
        self,
        tree: SchemaTree,
        oracle_payload: Optional[Dict[str, Any]] = None,
        fragments: Optional[Sequence[Sequence[int]]] = None,
    ) -> int:
        """Fold one tree into the image; returns its tree id in the frozen file.

        ``oracle_payload`` is a :meth:`TreeDistanceOracle.to_payload`-shaped
        dict, with either ``rmq_levels`` (list of level rows) or ``rmq_flat``
        (levels from 1 up pre-flattened, the on-disk shape).  ``fragments`` is
        the tree's fragment list; both are computed from the tree when absent
        (fragments only when a partition was declared via
        :meth:`set_partition`).
        """
        tree_id = len(self._tree_sizes)
        size = tree.node_count
        self._tree_offsets.append(self._total_nodes)
        self._tree_sizes.append(size)
        encoded = tree.name.encode("utf-8")
        self._tree_name_blob.extend(encoded)
        self._tree_name_offsets.append(len(self._tree_name_blob))

        tree_properties: Dict[str, Any] = {}
        for node_id in tree.node_ids():
            node = tree.node(node_id)
            parent = tree.parent_id(node_id)
            self._parents.append(-1 if parent is None else parent)
            name_id = self._name_ids.get(node.name)
            if name_id is None:
                name_id = self._name_ids[node.name] = len(self._names)
                self._names.append(node.name)
            self._name_refs.append(name_id)
            self._kinds.append(
                self._kind_codes.setdefault(node.kind.value, len(self._kind_codes))
            )
            self._datatypes.append(
                self._datatype_codes.setdefault(
                    node.datatype.value, len(self._datatype_codes)
                )
            )
            if node.properties:
                tree_properties[str(node_id)] = node.properties
        if tree_properties:
            self._properties[str(tree_id)] = tree_properties

        if oracle_payload is None:
            oracle_payload = TreeDistanceOracle(tree).to_payload()
        self._euler_nodes.extend(oracle_payload["euler_nodes"])
        self._euler_depths.extend(oracle_payload["euler_depths"])
        self._first_occurrence.extend(oracle_payload["first_occurrence"])
        self._tour_offsets.append(len(self._euler_nodes))
        flat = oracle_payload.get("rmq_flat")
        if flat is None:
            for level in oracle_payload["rmq_levels"][1:]:
                self._rmq_values.extend(level)
        else:
            self._rmq_values.extend(flat)
        self._rmq_offsets.append(len(self._rmq_values))

        if self._partition_meta is not None:
            if fragments is None:
                fragments = _fragment_single_tree(
                    tree, self._partition_meta["max_fragment_size"]
                )
            for members in fragments:
                self._members.extend(members)
                self._member_offsets.append(len(self._members))
            self._frag_offsets.append(len(self._member_offsets) - 1)

        # Same fold as shard/manifest._shard_digest, so a frozen shard file
        # self-certifies against the manifest without materializing a tree.
        self._digest.update(schema_fingerprint(tree).encode("ascii"))
        self._total_nodes += size
        self._largest_tree = max(self._largest_tree, size)
        self._smallest_tree = size if tree_id == 0 else min(self._smallest_tree, size)
        return tree_id

    # -- indexes --------------------------------------------------------------

    def add_index(
        self,
        case_sensitive: bool,
        keys: Sequence[str],
        node_name_ids: Sequence[int],
        gram_counts: Optional[Sequence[int]] = None,
        postings: Optional[Dict[str, Iterable[int]]] = None,
    ) -> None:
        """Add one name index (keys in name-id order, one name id per node in
        global-id order).  Posting lists / gram counts are recomputed from the
        keys when not supplied."""
        if len(node_name_ids) != self._total_nodes:
            raise ReproError(
                f"name index covers {len(node_name_ids)} nodes but the frozen forest "
                f"holds {self._total_nodes}"
            )
        key_offsets = array("i", [0])
        key_blob = bytearray()
        key_lengths = array("i")
        max_key_length = 0
        for key in keys:
            key_blob.extend(key.encode("utf-8"))
            key_offsets.append(len(key_blob))
            key_lengths.append(len(key))
            if len(key) > max_key_length:
                max_key_length = len(key)

        # Ref CSR: counting sort over the per-node name ids keeps each name's
        # reference list in ascending global-id order, the order the in-memory
        # index produces.
        counts = array("i", bytes(4 * len(keys)))
        for name_id in node_name_ids:
            counts[name_id] += 1
        ref_offsets = array("i", [0])
        for count in counts:
            ref_offsets.append(ref_offsets[-1] + count)
        cursor = array("i", ref_offsets[:-1])
        ref_globals = array("i", bytes(4 * len(node_name_ids)))
        for global_id, name_id in enumerate(node_name_ids):
            ref_globals[cursor[name_id]] = global_id
            cursor[name_id] += 1

        if postings is None or gram_counts is None:
            gram_count_list = array("i")
            posting_map: Dict[str, List[int]] = {}
            for name_id, key in enumerate(keys):
                grams = _ngrams(key, _GRAM_SIZE)
                gram_count_list.append(len(grams))
                for gram in grams:
                    posting_map.setdefault(gram, []).append(name_id)
            gram_counts = gram_count_list
            postings = posting_map

        grams = sorted(postings)
        gram_offsets = array("i", [0])
        gram_blob = bytearray()
        posting_offsets = array("i", [0])
        posting_values = array("i")
        for gram in grams:
            gram_blob.extend(gram.encode("utf-8"))
            gram_offsets.append(len(gram_blob))
            posting_values.extend(postings[gram])
            posting_offsets.append(len(posting_values))

        self._indexes.append(
            {
                "meta": {
                    "case_sensitive": bool(case_sensitive),
                    "name_count": len(keys),
                    "gram_count": len(grams),
                    "max_key_length": max_key_length,
                },
                "key_offsets": key_offsets,
                "key_blob": bytes(key_blob),
                "key_lengths": key_lengths,
                "node_name_ids": array("i", node_name_ids),
                "ref_offsets": ref_offsets,
                "ref_globals": ref_globals,
                "gram_counts": array("i", gram_counts),
                "gram_offsets": gram_offsets,
                "gram_blob": bytes(gram_blob),
                "posting_offsets": posting_offsets,
                "posting_values": posting_values,
            }
        )

    def add_index_from_forest(self, case_sensitive: bool) -> None:
        """Synthesize an index by re-folding the already-streamed forest.

        Key numbering is first-occurrence order over nodes in global-id order
        — exactly :class:`~repro.matchers.index.RepositoryNameIndex`'s
        construction order, so a loader sees the same name ids either way.
        """
        folded: Dict[str, int] = {}
        keys: List[str] = []
        node_name_ids = array("i")
        names = self._names
        for name_ref in self._name_refs:
            name = names[name_ref]
            key = name if case_sensitive else name.lower()
            name_id = folded.get(key)
            if name_id is None:
                name_id = folded[key] = len(keys)
                keys.append(key)
            node_name_ids.append(name_id)
        self.add_index(case_sensitive, keys, node_name_ids)

    # -- assembly -------------------------------------------------------------

    def write(self, path: str | Path) -> Dict[str, Any]:
        """Assemble the header + segment image and atomically write it."""
        name_offsets = array("i", [0])
        name_blob = bytearray()
        for name in self._names:
            name_blob.extend(name.encode("utf-8"))
            name_offsets.append(len(name_blob))

        writer = SegmentWriter()
        writer.add_int32("forest/tree_offsets", self._tree_offsets)
        writer.add_int32("forest/tree_sizes", self._tree_sizes)
        writer.add_int32("forest/tree_name_offsets", self._tree_name_offsets)
        writer.add_bytes("forest/tree_name_blob", bytes(self._tree_name_blob))
        writer.add_int32("forest/parents", self._parents)
        writer.add_int32("forest/name_refs", self._name_refs)
        writer.add_int8("forest/kinds", self._kinds)
        writer.add_int8("forest/datatypes", self._datatypes)
        writer.add_bytes(
            "forest/properties",
            json.dumps(self._properties, separators=(",", ":")).encode("utf-8")
            if self._properties
            else b"",
        )
        writer.add_int32("names/offsets", name_offsets)
        writer.add_bytes("names/blob", bytes(name_blob))
        writer.add_int32("oracle/tour_offsets", self._tour_offsets)
        writer.add_int32("oracle/euler_nodes", self._euler_nodes)
        writer.add_int32("oracle/euler_depths", self._euler_depths)
        writer.add_int32("oracle/first_occurrence", self._first_occurrence)
        writer.add_int32("oracle/rmq_offsets", self._rmq_offsets)
        writer.add_int32("oracle/rmq_values", self._rmq_values)
        if self._partition_meta is not None:
            writer.add_int32("partition/fragment_offsets", self._frag_offsets)
            writer.add_int32("partition/member_offsets", self._member_offsets)
            writer.add_int32("partition/members", self._members)
        index_metas: List[Dict[str, Any]] = []
        for position, entry in enumerate(self._indexes):
            prefix = f"index{position}"
            index_metas.append(entry["meta"])
            writer.add_int32(f"{prefix}/key_offsets", entry["key_offsets"])
            writer.add_bytes(f"{prefix}/key_blob", entry["key_blob"])
            writer.add_int32(f"{prefix}/key_lengths", entry["key_lengths"])
            writer.add_int32(f"{prefix}/node_name_ids", entry["node_name_ids"])
            writer.add_int32(f"{prefix}/ref_offsets", entry["ref_offsets"])
            writer.add_int32(f"{prefix}/ref_globals", entry["ref_globals"])
            writer.add_int32(f"{prefix}/gram_counts", entry["gram_counts"])
            writer.add_int32(f"{prefix}/gram_offsets", entry["gram_offsets"])
            writer.add_bytes(f"{prefix}/gram_blob", entry["gram_blob"])
            writer.add_int32(f"{prefix}/posting_offsets", entry["posting_offsets"])
            writer.add_int32(f"{prefix}/posting_values", entry["posting_values"])

        tree_count = len(self._tree_sizes)
        header = {
            "repository": {
                "name": self.repository_name,
                "tree_count": tree_count,
                "node_count": self._total_nodes,
                "largest_tree": self._largest_tree,
                "smallest_tree": self._smallest_tree,
                "digest": self._digest.hexdigest()[:16],
            },
            "kinds": list(self._kind_codes),
            "datatypes": list(self._datatype_codes),
            "config": self._config,
            "partition": self._partition_meta,
            "indexes": index_metas,
        }
        return writer.write(path, header)


def _fragment_single_tree(
    tree: SchemaTree, max_fragment_size: int, reclustering=None
) -> List[List[int]]:
    """Fragment one tree exactly as :class:`RepositoryPartition` would.

    Delegates through a throwaway single-tree repository rather than
    re-implementing the fragmentation (and optional reclustering) recipe —
    the partition code is the single source of truth for fragment shapes.
    """
    scratch = SchemaRepository(name="freeze-scratch")
    original_id = tree.tree_id
    tree.tree_id = -1
    try:
        scratch.add_tree(tree)
        partition = RepositoryPartition(
            max_fragment_size=max_fragment_size, reclustering=reclustering
        )
        return partition.fragments_for(scratch, 0)
    finally:
        tree.tree_id = original_id


# -- public entry points -------------------------------------------------------


def freeze_service(service, path: str | Path, build: bool = True) -> Dict[str, Any]:
    """Freeze a live :class:`~repro.service.MatchingService` to ``path``.

    With ``build`` (the default) all derived state is materialized first so
    the frozen file is complete.  Returns the written header document.
    """
    if build:
        service.build_derived_state()
    repository = service.repository
    writer = _FrozenWriter(repository.name)
    writer.set_config(
        {
            "element_threshold": service.element_threshold,
            "delta": service.delta,
            "variant": service.variant_name,
            "matcher": _service_matcher_config(service),
            "use_batch_matching": service.system.use_batch_matching,
            "query_cache_size": service.query_cache_size,
        }
    )
    partition = service.partition
    if partition is not None:
        writer.set_partition(
            partition.max_fragment_size,
            None if partition.reclustering is None else partition.reclustering.name,
        )
    oracle = service.oracle
    for tree in repository.trees():
        tree_id = tree.tree_id
        writer.add_tree(
            tree,
            oracle_payload=oracle.oracle(tree_id).to_payload(),
            fragments=(
                partition.fragments_for(repository, tree_id, oracle)
                if partition is not None
                else None
            ),
        )
    indexes = repository.cached_name_indexes()
    for index in indexes.values():
        index.ensure_blocking()
        blocking = index.blocking_payload()
        writer.add_index(
            index.case_sensitive,
            list(index.keys),
            index.node_name_ids(),
            gram_counts=None if blocking is None else blocking["gram_counts"],
            postings=None if blocking is None else blocking["postings"],
        )
    if not indexes:
        # No index was ever built (e.g. a non-batch matcher with build=False);
        # synthesize the matcher's case mode so frozen opens stay O(header).
        writer.add_index_from_forest(
            bool(getattr(service.matcher, "case_sensitive", True))
        )
    return writer.write(path)


def _service_matcher_config(service):
    from repro.service.snapshot import _matcher_config

    return _matcher_config(service.matcher)


def freeze_snapshot_file(source: str | Path, destination: str | Path) -> Dict[str, Any]:
    """Convert a JSON service snapshot into a frozen snapshot, streaming.

    The JSON document is parsed once; trees are then materialized, folded and
    dropped one at a time.  Derived state present in the snapshot (oracles,
    partition fragments, name indexes) is transcoded directly; missing pieces
    are built per tree.  Returns the written header document.
    """
    source_path = Path(source)
    if is_frozen_file(source_path):
        raise ReproError(f"{source_path} is already a frozen snapshot")
    try:
        payload = json.loads(source_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(f"cannot read snapshot {source_path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"snapshot {source_path} is not valid JSON: {exc}") from exc
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ReproError(f"not a service snapshot (format={payload.get('format')!r})")
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ReproError(
            f"unsupported snapshot version {payload.get('version')!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    repository_payload = payload.get("repository", {})
    if repository_payload.get("version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported repository payload version {repository_payload.get('version')!r}"
        )
    config = payload.get("config", {})
    writer = _FrozenWriter(repository_payload.get("name", "repository"))
    writer.set_config(config)
    partition_doc = payload.get("partition")
    if partition_doc is not None:
        partition_doc = _unpack_partition(partition_doc)
        writer.set_partition(
            partition_doc["max_fragment_size"], partition_doc.get("reclustering")
        )
    oracles = payload.get("oracles", {})
    for tree_id, tree_payload in enumerate(repository_payload.get("trees", [])):
        tree = tree_from_dict(tree_payload)
        packed_oracle = oracles.get(str(tree_id))
        fragments = None
        if partition_doc is not None:
            fragments = partition_doc["fragments"].get(str(tree_id))
            if fragments is None:
                recorded = partition_doc.get("reclustering")
                if recorded is not None:
                    raise ReproError(
                        f"snapshot partition uses reclustering strategy {recorded!r} but "
                        f"records no fragments for tree {tree_id}; freeze from a snapshot "
                        "written with build=True"
                    )
                fragments = _fragment_single_tree(
                    tree, partition_doc["max_fragment_size"]
                )
        writer.add_tree(
            tree,
            oracle_payload=(
                None if packed_oracle is None else _unpack_oracle(packed_oracle, _unpack_ints)
            ),
            fragments=fragments,
        )
    entries = payload.get("name_indexes", [])
    for entry in entries:
        blocking = entry.get("blocking")
        postings = None
        gram_counts = None
        if blocking is not None:
            sizes = _unpack_ints(blocking["posting_sizes"])
            flat = _unpack_ints(blocking["posting_values"])
            postings = {}
            position = 0
            for gram, size in zip(blocking["grams"], sizes):
                postings[gram] = flat[position : position + size]
                position += size
            gram_counts = _unpack_ints(blocking["gram_counts"])
        writer.add_index(
            bool(entry["case_sensitive"]),
            list(entry["keys"]),
            _unpack_ints(entry["node_name_ids"]),
            gram_counts=gram_counts,
            postings=postings,
        )
    if not entries:
        matcher_config = config.get("matcher")
        if matcher_config is not None:
            kind = matcher_config.get("type")
            case_sensitive = (
                True
                if kind == "token-name"
                else bool(matcher_config.get("case_sensitive", False))
            )
            writer.add_index_from_forest(case_sensitive)
    return writer.write(destination)


def compact_frozen(
    source: str | Path,
    destination: str | Path,
    add_trees: Sequence[SchemaTree] = (),
    remove_tree_ids: Sequence[int] = (),
    partition_reclustering=None,
) -> Dict[str, Any]:
    """Merge mutations into a new frozen generation, streaming.

    Surviving trees are re-numbered contiguously (the same shift
    ``remove_tree`` applies in memory); their oracle and partition segments
    are copied slice-for-slice from the source mapping without decoding —
    both are tree-local, so removal and renumbering cannot invalidate them.
    ``add_trees`` are appended at the end, with derived state built on the
    fly.  Name indexes are re-folded from the merged forest (first-occurrence
    numbering, observably equivalent to incremental index maintenance).

    A partition recorded with a reclustering strategy needs the strategy
    object back (``partition_reclustering``) to fragment *added* trees;
    removals alone copy fragments and need nothing.
    """
    from repro.storage.frozen import FrozenRepository

    snapshot = open_frozen(source, cached=False)
    header = snapshot.header
    tree_count = int(header["repository"]["tree_count"])
    removed = set()
    for tree_id in remove_tree_ids:
        if not 0 <= tree_id < tree_count:
            raise ReproError(
                f"cannot compact {snapshot.source_path}: tree id {tree_id} is outside "
                f"[0, {tree_count})"
            )
        removed.add(tree_id)

    repository = FrozenRepository(snapshot)
    writer = _FrozenWriter(header["repository"].get("name", "repository"))
    writer.set_config(header.get("config", {}))
    partition_meta = header.get("partition")
    recorded_reclustering = None
    if partition_meta is not None:
        recorded_reclustering = partition_meta.get("reclustering")
        if recorded_reclustering is not None and add_trees and partition_reclustering is None:
            raise ClusteringError(
                f"frozen partition was built with reclustering strategy "
                f"{recorded_reclustering!r}; pass an equivalent strategy via "
                "partition_reclustering to fragment added trees"
            )
        writer.set_partition(partition_meta["max_fragment_size"], recorded_reclustering)

    tour_offsets = snapshot.int32("oracle/tour_offsets")
    euler_nodes = snapshot.int32("oracle/euler_nodes")
    euler_depths = snapshot.int32("oracle/euler_depths")
    first_occurrence = snapshot.int32("oracle/first_occurrence")
    rmq_offsets = snapshot.int32("oracle/rmq_offsets")
    rmq_values = snapshot.int32("oracle/rmq_values")
    if partition_meta is not None:
        frag_offsets = snapshot.int32("partition/fragment_offsets")
        member_offsets = snapshot.int32("partition/member_offsets")
        members = snapshot.int32("partition/members")

    for tree_id in range(tree_count):
        if tree_id in removed:
            continue
        tree = repository._materialize_tree(tree_id)  # uncached: one at a time
        start = tour_offsets[tree_id]
        end = tour_offsets[tree_id + 1]
        base = repository.tree_offset(tree_id)
        node_count = (end - start + 1) // 2
        oracle_payload = {
            "euler_nodes": euler_nodes[start:end],
            "euler_depths": euler_depths[start:end],
            "first_occurrence": first_occurrence[base : base + node_count],
            "rmq_flat": rmq_values[rmq_offsets[tree_id] : rmq_offsets[tree_id + 1]],
        }
        fragments = None
        if partition_meta is not None:
            fragments = [
                members[member_offsets[fragment] : member_offsets[fragment + 1]]
                for fragment in range(frag_offsets[tree_id], frag_offsets[tree_id + 1])
            ]
        writer.add_tree(tree, oracle_payload=oracle_payload, fragments=fragments)

    for tree in add_trees:
        fragments = None
        if partition_meta is not None:
            fragments = _fragment_single_tree(
                tree,
                partition_meta["max_fragment_size"],
                reclustering=(
                    partition_reclustering if recorded_reclustering is not None else None
                ),
            )
        writer.add_tree(tree, fragments=fragments)

    for meta in header.get("indexes", []):
        writer.add_index_from_forest(bool(meta["case_sensitive"]))
    return writer.write(destination)

"""The frozen snapshot container: segmented, versioned, loaded by ``mmap``.

A frozen snapshot is the third carrier of the service-snapshot document
family (after base64-JSON files and shared-memory segments): the same logical
content — forest structure, name tables, Euler tours, sparse-table rows,
posting lists — stored as fixed-width little-endian arrays that a reader maps
into its address space instead of parsing.  Opening one is O(header), not
O(repository): the loader validates the preamble and the segment table,
``mmap``\\ s the file once, and every array is a zero-copy ``memoryview`` cast
over the mapping.

File layout
-----------
::

    [8-byte magic][uint32 container version][uint32 header length]
    [UTF-8 JSON header][zero padding to 8-byte alignment]
    [segment 0][padding][segment 1][padding]...

The JSON header is self-describing: it carries the document ``format`` /
``version`` pair, the repository metadata a ``snapshot inspect`` needs
(tree/node counts, digest), the service configuration, and a ``segments``
table of ``{name, offset, length, kind, count}`` entries whose offsets are
relative to the 8-byte-aligned **data start** (the first aligned byte after
the header).  Segment kinds are ``int32`` (little-endian 4-byte), ``int8``
(1-byte codes) and ``bytes`` (opaque blobs, e.g. UTF-8 string-table heaps).

Torn writes
-----------
Writers go through :func:`~repro.utils.fileio.write_bytes_atomic`, so a crash
mid-freeze never leaves a partial file under the target name.  Readers still
validate defensively at open: magic, container version, header bounds, JSON
well-formedness, and that every segment lies inside the file with a length
consistent with its kind and count.  A truncated or corrupted file is
rejected with :class:`~repro.errors.ReproError` before any view is handed
out.

Version policy
--------------
Mirrors the JSON snapshot's: the loader rejects any ``version`` it was not
written for (frozen state is pure acceleration — a wrong structural guess
would silently corrupt match results).  Adding optional header keys or new
segments is allowed within a version; changing the meaning or layout of an
existing segment requires a bump.

Shared packing carrier
----------------------
:func:`pack_int32` / :func:`unpack_int32` are the one int32 byte codec for
every binary carrier: the shared-memory view (:mod:`repro.service.sharedmem`)
packs its data region with them, and the frozen writer packs segments with
them, so the little-endian-on-disk/by-swap-on-big-endian rule lives in
exactly one place.
"""

from __future__ import annotations

import json
import mmap
import struct
import sys
import threading
from array import array
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.utils.fileio import write_bytes_atomic

#: First 8 bytes of every frozen snapshot.  PNG-style: a high bit to catch
#: 7-bit transport corruption, CRLF + ^Z + LF to catch newline translation.
FROZEN_MAGIC = b"\x89BFZ\r\n\x1a\n"

FROZEN_FORMAT = "bellflower-frozen-snapshot"
FROZEN_VERSION = 1

#: magic, container version, header byte length.
_PREAMBLE = struct.Struct("<8sII")

_ALIGNMENT = 8

_SEGMENT_KINDS = {"int32": 4, "int8": 1, "bytes": 1}


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


# -- the shared int32 packing carrier ----------------------------------------


def pack_int32(values) -> bytes:
    """Little-endian int32 bytes of a flat int sequence (disk and shm carrier)."""
    buffer = array("i", values)
    if sys.byteorder == "big":  # pragma: no cover - x86/arm are little-endian
        buffer.byteswap()
    return buffer.tobytes()


def unpack_int32(data) -> array:
    """Invert :func:`pack_int32` into a *live* ``array('i')`` (copies)."""
    buffer = array("i")
    buffer.frombytes(bytes(data))
    if sys.byteorder == "big":  # pragma: no cover - x86/arm are little-endian
        buffer.byteswap()
    return buffer


def int32_view(view: memoryview) -> Sequence[int]:
    """Zero-copy int sequence over little-endian int32 bytes.

    On little-endian hosts this is a ``memoryview.cast('i')`` straight over
    the mapping — no copy, O(1) regardless of length.  Big-endian hosts fall
    back to a byteswapped ``array('i')`` copy (correct, not zero-copy).
    """
    if sys.byteorder == "big":  # pragma: no cover - x86/arm are little-endian
        return unpack_int32(view)
    return view.cast("i")


# -- writing ------------------------------------------------------------------


class SegmentWriter:
    """Accumulate named segments, then write one frozen snapshot atomically.

    Segment names must be unique; the registration order is the on-disk
    order.  ``write`` computes the aligned offsets, embeds the segment table
    into the header and hands the whole image to
    :func:`~repro.utils.fileio.write_bytes_atomic`.
    """

    def __init__(self) -> None:
        self._segments: List[Tuple[str, str, int, bytes]] = []
        self._names: set = set()

    def _add(self, name: str, kind: str, count: int, data: bytes) -> None:
        if name in self._names:
            raise ReproError(f"duplicate frozen segment name {name!r}")
        self._names.add(name)
        self._segments.append((name, kind, count, data))

    def add_int32(self, name: str, values) -> None:
        data = pack_int32(values)
        self._add(name, "int32", len(data) // 4, data)

    def add_int8(self, name: str, values) -> None:
        data = bytes(bytearray(values))
        self._add(name, "int8", len(data), data)

    def add_bytes(self, name: str, data: bytes) -> None:
        self._add(name, "bytes", len(data), bytes(data))

    def write(self, path: str | Path, header: Dict[str, Any]) -> Dict[str, Any]:
        """Assemble and atomically write the snapshot; returns the header."""
        document = dict(header)
        document["format"] = FROZEN_FORMAT
        document["version"] = FROZEN_VERSION
        table: List[Dict[str, Any]] = []
        offset = 0
        for name, kind, count, data in self._segments:
            table.append(
                {
                    "name": name,
                    "offset": offset,
                    "length": len(data),
                    "kind": kind,
                    "count": count,
                }
            )
            offset = _align(offset + len(data))
        document["segments"] = table
        header_bytes = json.dumps(document, separators=(",", ":")).encode("utf-8")
        parts: List[bytes] = [
            _PREAMBLE.pack(FROZEN_MAGIC, FROZEN_VERSION, len(header_bytes)),
            header_bytes,
        ]
        position = _PREAMBLE.size + len(header_bytes)
        padding = _align(position) - position
        if padding:
            parts.append(b"\x00" * padding)
        for entry, (_, _, _, data) in zip(table, self._segments):
            parts.append(data)
            tail = _align(entry["offset"] + len(data)) - (entry["offset"] + len(data))
            if tail:
                parts.append(b"\x00" * tail)
        write_bytes_atomic(path, b"".join(parts))
        return document


# -- reading ------------------------------------------------------------------


def is_frozen_prefix(prefix: bytes) -> bool:
    """Whether the first bytes of a file identify a frozen snapshot."""
    return prefix[: len(FROZEN_MAGIC)] == FROZEN_MAGIC


def is_frozen_file(path: str | Path) -> bool:
    try:
        with open(path, "rb") as stream:
            return is_frozen_prefix(stream.read(len(FROZEN_MAGIC)))
    except OSError:
        return False


class FrozenSnapshot:
    """A validated, memory-mapped frozen snapshot.

    Construction costs O(header): the file is mapped once, the preamble and
    segment table are validated (bounds, kinds, counts), and every later
    :meth:`int32`/:meth:`int8`/:meth:`raw` call is an O(1) view over the
    mapping.  Instances are shared freely across threads — views are
    read-only and the small per-snapshot caches are guarded by a lock.

    The ``runtime`` slot caches this process's lazily built repository/oracle
    pair for the pickle-reopen fast path (see :mod:`repro.storage.frozen`):
    every worker task that unpickles against the same snapshot reuses one
    attached object graph instead of re-opening per task.
    """

    def __init__(self, path: str | Path) -> None:
        target = Path(path)
        self.source_path = str(target)
        try:
            with open(target, "rb") as stream:
                size = target.stat().st_size
                if size < _PREAMBLE.size:
                    raise ReproError(
                        f"{target} is not a frozen snapshot (file shorter than the preamble)"
                    )
                mapping = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
        except OSError as exc:
            raise ReproError(f"cannot open frozen snapshot {target}: {exc}") from exc
        self._mapping = mapping
        self._view = memoryview(mapping)
        try:
            self.header = self._validate()
        except BaseException:
            self._view.release()
            mapping.close()
            raise
        self._segments: Dict[str, Dict[str, Any]] = {
            entry["name"]: entry for entry in self.header["segments"]
        }
        self.lock = threading.Lock()
        #: (repository, oracle) pair for the per-process pickle-reopen cache.
        self.runtime: Optional[tuple] = None
        self._index_cache: Dict[int, object] = {}

    # -- validation ----------------------------------------------------------

    def _validate(self) -> Dict[str, Any]:
        size = len(self._view)
        magic, container_version, header_length = _PREAMBLE.unpack_from(self._view, 0)
        if magic != FROZEN_MAGIC:
            raise ReproError(
                f"{self.source_path} is not a frozen snapshot (bad magic {magic!r})"
            )
        if container_version != FROZEN_VERSION:
            raise ReproError(
                f"unsupported frozen container version {container_version} "
                f"(this build reads version {FROZEN_VERSION})"
            )
        if _PREAMBLE.size + header_length > size:
            raise ReproError(
                f"frozen snapshot {self.source_path} is truncated "
                f"(header of {header_length} bytes does not fit in {size})"
            )
        raw_header = bytes(self._view[_PREAMBLE.size : _PREAMBLE.size + header_length])
        try:
            header = json.loads(raw_header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"frozen snapshot {self.source_path} has a corrupt header: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("format") != FROZEN_FORMAT:
            found = header.get("format") if isinstance(header, dict) else type(header).__name__
            raise ReproError(
                f"{self.source_path} is not a frozen service snapshot "
                f"(format={found!r} if it is a header at all)"
            )
        if header.get("version") != FROZEN_VERSION:
            raise ReproError(
                f"unsupported frozen snapshot version {header.get('version')!r} "
                f"(this build reads version {FROZEN_VERSION})"
            )
        table = header.get("segments")
        if not isinstance(table, list):
            raise ReproError(
                f"frozen snapshot {self.source_path} header has no segment table"
            )
        data_start = _align(_PREAMBLE.size + header_length)
        for entry in table:
            if not isinstance(entry, dict):
                raise ReproError(
                    f"frozen snapshot {self.source_path} has a malformed segment entry"
                )
            name = entry.get("name")
            kind = entry.get("kind")
            try:
                offset = int(entry["offset"])
                length = int(entry["length"])
                count = int(entry["count"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ReproError(
                    f"frozen snapshot {self.source_path} segment {name!r} has a "
                    f"malformed descriptor: {exc}"
                ) from exc
            width = _SEGMENT_KINDS.get(kind)
            if width is None:
                raise ReproError(
                    f"frozen snapshot {self.source_path} segment {name!r} has "
                    f"unknown kind {kind!r}"
                )
            if offset < 0 or length < 0 or count < 0 or length != count * width:
                raise ReproError(
                    f"frozen snapshot {self.source_path} segment {name!r} declares "
                    f"inconsistent geometry (offset={offset}, length={length}, "
                    f"count={count}, kind={kind})"
                )
            if data_start + offset + length > size:
                raise ReproError(
                    f"frozen snapshot {self.source_path} is truncated: segment "
                    f"{name!r} ends at byte {data_start + offset + length} of {size}"
                )
        self.data_start = data_start
        return header

    # -- views ---------------------------------------------------------------

    def _entry(self, name: str) -> Dict[str, Any]:
        entry = self._segments.get(name)
        if entry is None:
            raise ReproError(
                f"frozen snapshot {self.source_path} has no segment {name!r}"
            )
        return entry

    def raw(self, name: str) -> memoryview:
        """Read-only byte view of a segment (any kind)."""
        entry = self._entry(name)
        start = self.data_start + entry["offset"]
        return self._view[start : start + entry["length"]]

    def int32(self, name: str) -> Sequence[int]:
        """Zero-copy int sequence over an ``int32`` segment."""
        entry = self._entry(name)
        if entry["kind"] != "int32":
            raise ReproError(
                f"segment {name!r} of {self.source_path} is {entry['kind']}, not int32"
            )
        return int32_view(self.raw(name))

    def int8(self, name: str) -> Sequence[int]:
        """Zero-copy int sequence over an ``int8`` segment."""
        entry = self._entry(name)
        if entry["kind"] != "int8":
            raise ReproError(
                f"segment {name!r} of {self.source_path} is {entry['kind']}, not int8"
            )
        return self.raw(name).cast("b")

    def segment_names(self) -> List[str]:
        return [entry["name"] for entry in self.header["segments"]]

    def cached_index(self, position: int, build) -> object:
        """Per-snapshot memo for reopened name indexes (worker fast path)."""
        with self.lock:
            index = self._index_cache.get(position)
            if index is None:
                index = self._index_cache[position] = build()
            return index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenSnapshot(path={self.source_path!r}, "
            f"segments={len(self._segments)})"
        )


#: Per-process open-snapshot cache: N pool workers unpickling tasks against the
#: same frozen file attach to one mapping instead of re-opening per task.
_OPEN_CACHE: Dict[Tuple[str, int, int], FrozenSnapshot] = {}
_OPEN_LOCK = threading.Lock()


def open_frozen(path: str | Path, *, cached: bool = True) -> FrozenSnapshot:
    """Open (or reuse this process's mapping of) a frozen snapshot.

    The cache key is ``(resolved path, size, mtime_ns)``, so replacing the
    file — every freeze is an atomic rename — naturally misses the cache and
    maps the new generation while old readers keep their old (still mapped)
    pages.
    """
    target = Path(path)
    if not cached:
        return FrozenSnapshot(target)
    try:
        stat = target.stat()
    except OSError as exc:
        raise ReproError(f"cannot open frozen snapshot {target}: {exc}") from exc
    key = (str(target.resolve()), stat.st_size, stat.st_mtime_ns)
    with _OPEN_LOCK:
        snapshot = _OPEN_CACHE.get(key)
        if snapshot is None:
            snapshot = _OPEN_CACHE[key] = FrozenSnapshot(target)
        return snapshot

"""Frozen storage subsystem: segmented mmap snapshots + banded candidate index.

The JSON snapshot (:mod:`repro.service.snapshot`) is one parse-everything
document; it tops out around tens of thousands of nodes because open time is
linear in repository size.  This package adds a *frozen* carrier for the same
logical document: a segmented, versioned binary file whose fixed-width
little-endian arrays are mapped — not parsed — at open, so
:func:`repro.service.snapshot.load_snapshot` on a frozen file returns a ready
service in O(header) time regardless of repository size.

* :mod:`repro.storage.format` — the container (magic, header, segment table,
  validation, the shared int32 packing carrier, the per-process open cache);
* :mod:`repro.storage.frozen` — mmap-backed view classes satisfying the same
  contracts as the JSON-loaded structures, plus :func:`load_frozen_service`;
* :mod:`repro.storage.builder` — streaming freeze/convert/compact writers.
"""

from repro.storage.builder import (
    compact_frozen,
    freeze_service,
    freeze_snapshot_file,
)
from repro.storage.format import (
    FROZEN_FORMAT,
    FROZEN_MAGIC,
    FROZEN_VERSION,
    FrozenSnapshot,
    is_frozen_file,
    is_frozen_prefix,
    open_frozen,
    pack_int32,
    unpack_int32,
)
from repro.storage.frozen import (
    FrozenNameIndex,
    FrozenPartition,
    FrozenRepository,
    FrozenRepositoryDistanceOracle,
    load_frozen_service,
)

__all__ = [
    "FROZEN_FORMAT",
    "FROZEN_MAGIC",
    "FROZEN_VERSION",
    "FrozenNameIndex",
    "FrozenPartition",
    "FrozenRepository",
    "FrozenRepositoryDistanceOracle",
    "FrozenSnapshot",
    "compact_frozen",
    "freeze_service",
    "freeze_snapshot_file",
    "is_frozen_file",
    "is_frozen_prefix",
    "load_frozen_service",
    "open_frozen",
    "pack_int32",
    "unpack_int32",
]

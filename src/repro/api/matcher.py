"""The ``Matcher`` protocol and the mixin that implements it for backends.

Every query backend — :class:`~repro.system.bellflower.Bellflower`, the
:class:`~repro.service.MatchingService`, the sharded fan-out — now speaks one
four-method surface:

* ``match(request)`` — one :class:`~repro.api.envelope.MatchRequest` in, one
  :class:`~repro.api.envelope.MatchResponse` out;
* ``match_many(requests)`` — a batch, with fingerprint dedup on every backend
  (promoted from the shard layer down to the base service by this PR);
* ``stats()`` — the uniform operational dict (backend kind, protocol
  version, executor, cache capacities, shard breakdown where applicable);
* ``describe()`` — the static capability card.

Backward compatibility is a *shim, not a fork*: the same ``match`` /
``match_many`` names keep accepting the legacy
:class:`~repro.schema.tree.SchemaTree` + kwargs signatures bit-identically
(they dispatch on the argument type to the backend's ``_match_schema`` /
``_match_many_schemas``, which hold the pre-existing implementations).  The
typed path validates options at the boundary, builds the schema, groups
requests by ``(delta, top_k)`` and executes each group through the *legacy
batch path* — so typed and legacy queries run literally the same code and
the bit-identity acceptance tests compare equal by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence, Set, runtime_checkable

from repro.api import encode
from repro.api.envelope import PROTOCOL_VERSION, MatchRequest, MatchResponse
from repro.errors import InvalidRequestError
from repro.resilience.deadline import Deadline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.utils.executor import TaskExecutor


@runtime_checkable
class Matcher(Protocol):
    """The one query surface every backend implements.

    ``match``/``match_many`` accept typed envelopes (and, for backward
    compatibility, the legacy tree + kwargs form); ``stats`` and ``describe``
    return uniform JSON-serializable dicts.  Checkable at runtime
    (``isinstance(backend, Matcher)``) because front-ends accept any
    implementation, not just the three bundled ones.
    """

    def match(self, request, *args, **kwargs): ...

    def match_many(self, requests, *args, **kwargs): ...

    def stats(self) -> Dict[str, object]: ...

    def describe(self) -> Dict[str, object]: ...


class MatcherAPIMixin:
    """Typed-envelope dispatch layered over a backend's legacy entry points.

    A backend subclasses this and provides:

    * ``_match_schema(personal_schema, delta=None, top_k=None, ...)`` — the
      pre-existing single-query implementation (the old ``match`` body);
    * ``_match_many_schemas(schemas, delta=None, top_k=None)`` — the batch
      implementation (dedup + batching);
    * ``backend_kind`` — the stable name ``describe()``/``stats()`` report;
    * optionally ``_task_executor()``, ``_capabilities()`` and
      ``_describe_extra()`` to refine the capability card.
    """

    backend_kind: str = "matcher"

    # -- the Matcher surface --------------------------------------------------

    def match(self, request, *args, **kwargs):
        """Typed: ``match(MatchRequest) -> MatchResponse``.  Legacy: unchanged."""
        if isinstance(request, MatchRequest):
            if args or kwargs:
                raise InvalidRequestError(
                    "a typed MatchRequest carries every option; extra arguments are not allowed"
                )
            return self._execute_requests([request])[0]
        return self._match_schema(request, *args, **kwargs)

    def match_many(self, requests, *args, **kwargs):
        """Typed: list of envelopes -> list of responses.  Legacy: unchanged."""
        items = list(requests)
        typed = [isinstance(item, MatchRequest) for item in items]
        if any(typed):
            if not all(typed):
                raise InvalidRequestError(
                    "match_many cannot mix MatchRequest envelopes with schema trees"
                )
            if args or kwargs:
                raise InvalidRequestError(
                    "typed MatchRequests carry every option; extra arguments are not allowed"
                )
            return self._execute_requests(items)
        return self._match_many_schemas(items, *args, **kwargs)

    def describe(self) -> Dict[str, object]:
        """The backend's capability card (static; ``stats()`` is the live view)."""
        executor = self._task_executor()
        card: Dict[str, object] = {
            "backend": self.backend_kind,
            "protocol_version": PROTOCOL_VERSION,
            "delta": self.delta,
            "element_threshold": self.element_threshold,
            "executor": "serial" if executor is None else executor.name,
            "capabilities": sorted(self._capabilities()),
            "repository": {
                "trees": self.repository.tree_count,
                "nodes": self.repository.node_count,
            },
        }
        card.update(self._describe_extra())
        return card

    # -- typed execution ------------------------------------------------------

    def _execute_requests(self, requests: Sequence[MatchRequest]) -> List[MatchResponse]:
        """Validate, group by (δ, top_k, timeout), and run each group through the batch path.

        Grouping keeps the fingerprint dedup of ``_match_many_schemas``
        effective for typed batches (duplicate schemas with equal options
        collapse to one search) while still honouring per-request ``explain``
        and paging, which only shape the encoding.  A group's ``timeout_ms``
        becomes one :class:`~repro.resilience.Deadline` covering the whole
        group — the budget a client sets is wall-clock, so queries batched
        together share it rather than each restarting the clock.
        """
        for request in requests:
            request.options.validate()
        schemas = [request.build_schema() for request in requests]
        groups: Dict[tuple, List[int]] = {}
        for index, request in enumerate(requests):
            options = request.options
            groups.setdefault((options.delta, options.top_k, options.timeout_ms), []).append(index)
        responses: List[Optional[MatchResponse]] = [None] * len(requests)
        for (delta, top_k, timeout_ms), indexes in groups.items():
            # Only pass `deadline` when one was requested: foreign backends
            # overriding _match_many_schemas without the kwarg keep working.
            extra = (
                {} if timeout_ms is None else {"deadline": Deadline.after_ms(timeout_ms)}
            )
            results = self._match_many_schemas(
                [schemas[index] for index in indexes], delta=delta, top_k=top_k, **extra
            )
            for index, result in zip(indexes, results):
                responses[index] = encode.match_response(
                    self.repository,
                    schemas[index],
                    result,
                    requests[index].options,
                    warnings=requests[index].warnings,
                )
        return responses  # type: ignore[return-value]

    # -- hooks ---------------------------------------------------------------

    def _match_many_schemas(self, personal_schemas, delta=None, top_k=None, deadline=None):
        """Default batch path: one ``_match_schema`` call per schema."""
        extra = {} if deadline is None else {"deadline": deadline}
        return [
            self._match_schema(schema, delta=delta, top_k=top_k, **extra)
            for schema in personal_schemas
        ]

    def _task_executor(self) -> Optional["TaskExecutor"]:
        return getattr(self, "executor", None)

    def _capabilities(self) -> Set[str]:
        return {"match", "match_many", "top_k", "explain", "stats", "describe"}

    def _describe_extra(self) -> Dict[str, object]:
        return {}

"""Request-parameter validation shared by every backend and front-end.

Before this module existed each backend policed its own inputs: ``Bellflower``
checked ``top_k`` deep inside :meth:`generate_mappings
<repro.system.bellflower.Bellflower.generate_mappings>`, the sharded service
re-implemented the same check in ``match_many``, and the base
:class:`~repro.service.MatchingService` computed its cache key *before* any
validation fired downstream — so an invalid request could touch service state
before being rejected, and the three backends raised differently-worded
errors.  These helpers are the single definition of what a valid query
parameter is; all three backends and the :mod:`repro.api` envelope codecs call
them at the API boundary, before any side effect, and every violation raises
the one :class:`~repro.errors.InvalidRequestError`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InvalidRequestError


def validate_delta(delta: Optional[float]) -> Optional[float]:
    """Check a ``δ`` threshold override: ``None`` or a real number in [0, 1]."""
    if delta is None:
        return None
    if isinstance(delta, bool) or not isinstance(delta, (int, float)):
        raise InvalidRequestError(f"delta must be a number in [0, 1], got {delta!r}")
    if not 0.0 <= float(delta) <= 1.0:
        raise InvalidRequestError(f"delta must be in [0, 1], got {delta!r}")
    return float(delta)


def validate_top_k(top_k: Optional[int]) -> Optional[int]:
    """Check a search bound: ``None`` (complete ``Δ >= δ`` search) or an int >= 1."""
    if top_k is None:
        return None
    if isinstance(top_k, bool) or not isinstance(top_k, int):
        raise InvalidRequestError(f"top_k must be an integer >= 1, got {top_k!r}")
    if top_k < 1:
        raise InvalidRequestError(f"top_k must be at least 1 when given, got {top_k}")
    return top_k


def validate_timeout_ms(timeout_ms: Optional[int]) -> Optional[int]:
    """Check a query deadline: ``None`` (no deadline) or an integer >= 1 ms."""
    if timeout_ms is None:
        return None
    if isinstance(timeout_ms, bool) or not isinstance(timeout_ms, int):
        raise InvalidRequestError(f"timeout_ms must be an integer >= 1, got {timeout_ms!r}")
    if timeout_ms < 1:
        raise InvalidRequestError(f"timeout_ms must be at least 1 when given, got {timeout_ms}")
    return timeout_ms


def validate_query(delta: Optional[float], top_k: Optional[int]) -> None:
    """The boundary check every backend runs before any side effect."""
    validate_delta(delta)
    validate_top_k(top_k)


def validate_top(top: int) -> int:
    """Check a legacy serve-protocol ``top`` print limit (non-negative int)."""
    if isinstance(top, bool) or not isinstance(top, int):
        raise InvalidRequestError(f"top must be a non-negative integer, got {top!r}")
    if top < 0:
        raise InvalidRequestError(f"top must be non-negative, got {top}")
    return top


def validate_page(offset: int, limit: Optional[int]) -> None:
    """Check result-page parameters (``offset`` >= 0, ``limit`` ``None`` or >= 0)."""
    if isinstance(offset, bool) or not isinstance(offset, int) or offset < 0:
        raise InvalidRequestError(f"offset must be a non-negative integer, got {offset!r}")
    if limit is None:
        return
    if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
        raise InvalidRequestError(f"limit must be a non-negative integer when given, got {limit!r}")

"""Typed request/response envelopes with a versioned wire codec.

One wire format for every front-end.  Before this package, the repo exposed
four query surfaces: three divergent ``match`` signatures and the untyped
JSON dicts of the serve loop (with its ``"top"`` vs ``"top_k"`` naming wart).
The envelopes below are the single typed vocabulary all of them now share:

* :class:`MatchRequest` — a personal schema plus :class:`MatchOptions`
  (``delta``, ``top_k``, ``explain``, result page);
* :class:`MatchResponse` — the ranked :class:`MappingRecord` page, counters,
  stage timings and an optional :class:`ExplainReport`;
* :class:`BatchRequest` / :class:`BatchResponse` — many match requests in one
  envelope (served by ``match_many``: fingerprint dedup + batching);
* :class:`MutationRequest` / :class:`MutationResponse` — add/remove a tree;
* :class:`StatsRequest` / :class:`StatsResponse` — operational stats or the
  backend's :meth:`describe` card;
* :class:`ErrorResponse` — the failure envelope.

Wire format and version policy
------------------------------
``to_wire()`` emits a plain JSON-serializable dict carrying ``{"v": 1,
"kind": "<kind>", ...}``; ``from_wire()`` parses one back.  The codec is
versioned as a unit: a payload whose ``"v"`` differs from
:data:`PROTOCOL_VERSION` is rejected with
:class:`~repro.errors.InvalidRequestError` (clients must not guess), while
*unknown fields are ignored* so v1 servers tolerate forward-compatible
additive clients.  Every codec satisfies ``from_wire(to_wire(x)) == x``
(pinned by hypothesis round-trip properties in ``tests/api``).

Deprecated aliases
------------------
v1 match options accept ``"top"`` as a deprecated alias for ``"top_k"`` (the
legacy serve protocol used ``top`` to trim the printed list and ``top_k`` to
bound the search — the wart this codec retires).  The alias maps through and
the response carries a warning string; new clients must send ``top_k`` and
use ``offset``/``limit`` for result paging.

Tree-id shift rule
------------------
Repository tree ids are *positional*: removing tree ``t`` shifts every id
``> t`` down by one.  Mutation responses therefore return the stable
``tree_name`` alongside the positional ``tree_id``, and removal requests may
name the tree (``tree_name``) instead of numbering it — names survive
shifts, ids returned by earlier ``add`` responses are invalidated by any
remove.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.api.validation import (
    validate_delta,
    validate_page,
    validate_timeout_ms,
    validate_top_k,
)
from repro.errors import InvalidRequestError
from repro.schema.builder import TreeBuilder
from repro.schema.serialization import tree_from_dict, tree_to_dict
from repro.schema.tree import SchemaTree

#: The wire-protocol version this build speaks.  Bumped only by PRs that
#: change envelope semantics; additive fields do not bump it (v1 parsers
#: ignore unknown keys).
PROTOCOL_VERSION = 1

#: Accepted encodings of a schema on the wire: the nested ``{root: children}``
#: shorthand the CLI always spoke, and the full-fidelity serialized tree
#: (kinds, datatypes, properties) of :func:`~repro.schema.serialization.tree_to_dict`.
SCHEMA_FORMATS = ("nested", "tree")

DEPRECATED_TOP_WARNING = (
    "field 'top' is deprecated in v1 match options: it was mapped to 'top_k'; "
    "use 'top_k' to bound the search and 'offset'/'limit' to page results"
)

DEPRECATED_TOP_IGNORED_WARNING = (
    "field 'top' is deprecated in v1 match options and was ignored because "
    "'top_k' was also given; use 'offset'/'limit' to page results"
)


def check_envelope(payload: object, kind: Optional[str] = None) -> Mapping:
    """Validate the ``{"v": 1, "kind": ...}`` frame shared by every envelope."""
    if not isinstance(payload, Mapping):
        raise InvalidRequestError(
            f"envelope must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("v")
    # Strict: the version must be the integer 1 — True and 1.0 compare equal
    # to 1 in Python but are not valid protocol versions on the wire.
    if (
        isinstance(version, bool)
        or not isinstance(version, int)
        or version != PROTOCOL_VERSION
    ):
        raise InvalidRequestError(
            f"unsupported protocol version {version!r} (this build speaks v{PROTOCOL_VERSION})"
        )
    if kind is not None and payload.get("kind") != kind:
        raise InvalidRequestError(
            f"expected a {kind!r} envelope, got kind {payload.get('kind')!r}"
        )
    return payload


def build_schema_payload(schema: Mapping, schema_format: str, name: str) -> SchemaTree:
    """Materialize the schema a request carries into a :class:`SchemaTree`."""
    if schema_format == "tree":
        return tree_from_dict(dict(schema))
    return TreeBuilder.from_nested(schema, name=name)


def _check_schema_payload(schema: object, schema_format: object) -> None:
    if not isinstance(schema, Mapping) or not schema:
        raise InvalidRequestError("request needs a non-empty 'schema' object")
    if schema_format not in SCHEMA_FORMATS:
        raise InvalidRequestError(
            f"schema_format must be one of {SCHEMA_FORMATS}, got {schema_format!r}"
        )


# -- match -------------------------------------------------------------------


@dataclass(frozen=True)
class MatchOptions:
    """Everything that shapes one query besides the schema itself.

    ``delta`` / ``top_k`` override the backend's search semantics (validated
    at the API boundary, see :mod:`repro.api.validation`); ``explain``
    requests an :class:`ExplainReport`; ``offset``/``limit`` page the ranked
    mapping list *after* the search (they never change what is searched,
    only what is returned).  ``timeout_ms`` puts a cooperative
    :class:`~repro.resilience.Deadline` on the search: on expiry the backend
    returns its current incumbents with ``partial: true`` in the response
    instead of running to completion (an additive v1 field — servers without
    it ignore the key and simply never produce partials).
    """

    delta: Optional[float] = None
    top_k: Optional[int] = None
    explain: bool = False
    offset: int = 0
    limit: Optional[int] = None
    timeout_ms: Optional[int] = None

    def validate(self) -> "MatchOptions":
        validate_delta(self.delta)
        validate_top_k(self.top_k)
        if not isinstance(self.explain, bool):
            raise InvalidRequestError(f"explain must be a boolean, got {self.explain!r}")
        validate_page(self.offset, self.limit)
        validate_timeout_ms(self.timeout_ms)
        return self

    def to_wire(self) -> Dict[str, object]:
        return {
            "delta": self.delta,
            "top_k": self.top_k,
            "explain": self.explain,
            "offset": self.offset,
            "limit": self.limit,
            "timeout_ms": self.timeout_ms,
        }

    @classmethod
    def from_wire(cls, payload: object) -> "MatchOptions":
        options, _warnings = options_from_wire(payload)
        return options


def options_from_wire(payload: object) -> Tuple[MatchOptions, Tuple[str, ...]]:
    """Parse match options, returning deprecation warnings alongside.

    The warnings (currently only the ``top`` → ``top_k`` alias) belong in the
    *response*, so the caller threads them through the request's
    non-comparing ``warnings`` field.
    """
    if payload is None:
        return MatchOptions(), ()
    if not isinstance(payload, Mapping):
        raise InvalidRequestError(
            f"options must be a JSON object, got {type(payload).__name__}"
        )
    warnings = []
    top_k = payload.get("top_k")
    if payload.get("top") is not None:
        if top_k is None:
            top_k = payload["top"]
            warnings.append(DEPRECATED_TOP_WARNING)
        else:
            warnings.append(DEPRECATED_TOP_IGNORED_WARNING)
    options = MatchOptions(
        delta=payload.get("delta"),
        top_k=top_k,
        explain=payload.get("explain", False),
        offset=payload.get("offset", 0),
        limit=payload.get("limit"),
        timeout_ms=payload.get("timeout_ms"),
    ).validate()
    return options, tuple(warnings)


@dataclass(frozen=True)
class MatchRequest:
    """One typed query: a schema (wire form) plus :class:`MatchOptions`.

    ``schema`` stays in wire form (a plain dict) so the request is cheap to
    build, compare and re-serialize; :meth:`build_schema` materializes the
    :class:`~repro.schema.tree.SchemaTree` when a backend executes it.
    ``warnings`` carries parse-time deprecation notices into the response; it
    is excluded from equality so codec round-trips compare on content.
    """

    schema: Mapping[str, object]
    schema_format: str = "nested"
    name: str = "personal"
    options: MatchOptions = MatchOptions()
    warnings: Tuple[str, ...] = field(default=(), compare=False)
    #: Memoized result of :meth:`build_schema` — re-executing one request
    #: object (retries, fan-out to several backends) must not re-parse the
    #: tree.  Never compared, never on the wire.
    _schema_cache: Optional[SchemaTree] = field(
        default=None, init=False, compare=False, repr=False
    )

    kind = "match"

    @classmethod
    def from_schema(
        cls,
        tree: SchemaTree,
        *,
        delta: Optional[float] = None,
        top_k: Optional[int] = None,
        explain: bool = False,
        offset: int = 0,
        limit: Optional[int] = None,
        timeout_ms: Optional[int] = None,
    ) -> "MatchRequest":
        """Wrap an in-memory tree with full fidelity (kinds, datatypes, properties)."""
        return cls(
            schema=tree_to_dict(tree),
            schema_format="tree",
            name=tree.name,
            options=MatchOptions(
                delta=delta,
                top_k=top_k,
                explain=explain,
                offset=offset,
                limit=limit,
                timeout_ms=timeout_ms,
            ),
        )

    def build_schema(self) -> SchemaTree:
        if self._schema_cache is None:
            # A benign race under concurrent executors: both threads build
            # the same tree, last write wins.
            object.__setattr__(
                self,
                "_schema_cache",
                build_schema_payload(self.schema, self.schema_format, self.name),
            )
        return self._schema_cache

    def to_wire(self) -> Dict[str, object]:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "schema": dict(self.schema),
            "schema_format": self.schema_format,
            "name": self.name,
            "options": self.options.to_wire(),
        }

    @classmethod
    def from_wire(cls, payload: object) -> "MatchRequest":
        data = check_envelope(payload, kind=cls.kind)
        schema = data.get("schema")
        schema_format = data.get("schema_format", "nested")
        _check_schema_payload(schema, schema_format)
        name = data.get("name", "personal")
        if not isinstance(name, str) or not name:
            raise InvalidRequestError(f"name must be a non-empty string, got {name!r}")
        options, warnings = options_from_wire(data.get("options"))
        return cls(
            schema=dict(schema),
            schema_format=schema_format,
            name=name,
            options=options,
            warnings=warnings,
        )


@dataclass(frozen=True)
class AssignmentEntry:
    """One personal-node → repository-node edge of a mapping (path form)."""

    personal: str
    repository: str
    similarity: float

    def to_wire(self) -> Dict[str, object]:
        return {
            "personal": self.personal,
            "repository": self.repository,
            "similarity": self.similarity,
        }

    @classmethod
    def from_wire(cls, payload: object) -> "AssignmentEntry":
        if not isinstance(payload, Mapping):
            raise InvalidRequestError("assignment entry must be a JSON object")
        return cls(
            personal=payload.get("personal", ""),
            repository=payload.get("repository", ""),
            similarity=payload.get("similarity", 0.0),
        )


@dataclass(frozen=True)
class MappingRecord:
    """One ranked mapping in wire form: score, target tree, assignment paths."""

    score: float
    tree: str
    tree_id: int
    assignment: Tuple[AssignmentEntry, ...]

    def to_wire(self) -> Dict[str, object]:
        return {
            "score": self.score,
            "tree": self.tree,
            "tree_id": self.tree_id,
            "assignment": [entry.to_wire() for entry in self.assignment],
        }

    @classmethod
    def from_wire(cls, payload: object) -> "MappingRecord":
        if not isinstance(payload, Mapping):
            raise InvalidRequestError("mapping record must be a JSON object")
        return cls(
            score=payload.get("score", 0.0),
            tree=payload.get("tree", ""),
            tree_id=payload.get("tree_id", -1),
            assignment=tuple(
                AssignmentEntry.from_wire(entry) for entry in payload.get("assignment", [])
            ),
        )


@dataclass(frozen=True)
class ClusterStat:
    """Per-cluster search statistics for :class:`ExplainReport`."""

    cluster_id: int
    tree_id: int
    member_count: int
    mapping_element_count: int
    search_space: int

    def to_wire(self) -> Dict[str, object]:
        return {
            "cluster_id": self.cluster_id,
            "tree_id": self.tree_id,
            "member_count": self.member_count,
            "mapping_element_count": self.mapping_element_count,
            "search_space": self.search_space,
        }

    @classmethod
    def from_wire(cls, payload: object) -> "ClusterStat":
        if not isinstance(payload, Mapping):
            raise InvalidRequestError("cluster stat must be a JSON object")
        return cls(
            cluster_id=payload.get("cluster_id", -1),
            tree_id=payload.get("tree_id", -1),
            member_count=payload.get("member_count", 0),
            mapping_element_count=payload.get("mapping_element_count", 0),
            search_space=payload.get("search_space", 0),
        )


@dataclass(frozen=True)
class ExplainReport:
    """How the search went: useful clusters, search space, pruning totals.

    ``partial`` mirrors the response-level flag: the search hit its deadline
    and these statistics describe the truncated run, not a complete one.
    """

    useful_clusters: int
    search_space: int
    partial_mappings: int
    clusters: Tuple[ClusterStat, ...] = ()
    partial: bool = False

    def to_wire(self) -> Dict[str, object]:
        return {
            "useful_clusters": self.useful_clusters,
            "search_space": self.search_space,
            "partial_mappings": self.partial_mappings,
            "clusters": [stat.to_wire() for stat in self.clusters],
            "partial": self.partial,
        }

    @classmethod
    def from_wire(cls, payload: object) -> "ExplainReport":
        if not isinstance(payload, Mapping):
            raise InvalidRequestError("explain report must be a JSON object")
        return cls(
            useful_clusters=payload.get("useful_clusters", 0),
            search_space=payload.get("search_space", 0),
            partial_mappings=payload.get("partial_mappings", 0),
            clusters=tuple(
                ClusterStat.from_wire(stat) for stat in payload.get("clusters", [])
            ),
            partial=bool(payload.get("partial", False)),
        )


@dataclass(frozen=True)
class MatchResponse:
    """The ranked mapping page plus everything a client needs to trust it.

    ``mappings`` is the requested page (``offset``/``limit`` applied);
    ``mapping_count`` is the total the search produced, so clients can page.
    ``counters``/``timings`` carry the run's
    :class:`~repro.utils.counters.CounterSet` and stage timer values.

    Two resilience flags qualify the answer (both additive v1 fields):
    ``partial`` — the search deadline expired and the mappings are the
    incumbents found so far, not the complete ranking; ``degraded`` — one or
    more shards were skipped (dead or breaker-open) and ``skipped_shards``
    names them, so the ranking covers only the surviving shards.  A response
    with neither flag is exact.
    """

    mappings: Tuple[MappingRecord, ...]
    mapping_count: int
    offset: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    explain: Optional[ExplainReport] = None
    warnings: Tuple[str, ...] = ()
    partial: bool = False
    degraded: bool = False
    skipped_shards: Tuple[int, ...] = ()

    kind = "match_response"

    def to_wire(self) -> Dict[str, object]:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "mappings": [record.to_wire() for record in self.mappings],
            "mapping_count": self.mapping_count,
            "offset": self.offset,
            "counters": dict(self.counters),
            "timings": dict(self.timings),
            "explain": None if self.explain is None else self.explain.to_wire(),
            "warnings": list(self.warnings),
            "partial": self.partial,
            "degraded": self.degraded,
            "skipped_shards": list(self.skipped_shards),
        }

    @classmethod
    def from_wire(cls, payload: object) -> "MatchResponse":
        data = check_envelope(payload, kind=cls.kind)
        explain = data.get("explain")
        return cls(
            mappings=tuple(
                MappingRecord.from_wire(record) for record in data.get("mappings", [])
            ),
            mapping_count=data.get("mapping_count", 0),
            offset=data.get("offset", 0),
            counters=dict(data.get("counters", {})),
            timings=dict(data.get("timings", {})),
            explain=None if explain is None else ExplainReport.from_wire(explain),
            warnings=tuple(data.get("warnings", [])),
            partial=bool(data.get("partial", False)),
            degraded=bool(data.get("degraded", False)),
            skipped_shards=tuple(data.get("skipped_shards", [])),
        )


# -- batch -------------------------------------------------------------------


@dataclass(frozen=True)
class BatchRequest:
    """Many match requests in one envelope — the wire form of ``match_many``."""

    requests: Tuple[MatchRequest, ...]

    kind = "batch"

    def to_wire(self) -> Dict[str, object]:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "requests": [request.to_wire() for request in self.requests],
        }

    @classmethod
    def from_wire(cls, payload: object) -> "BatchRequest":
        data = check_envelope(payload, kind=cls.kind)
        requests = data.get("requests")
        if not isinstance(requests, (list, tuple)) or not requests:
            raise InvalidRequestError(
                "batch request needs a non-empty 'requests' array of match envelopes"
            )
        return cls(requests=tuple(MatchRequest.from_wire(entry) for entry in requests))


@dataclass(frozen=True)
class BatchResponse:
    """One :class:`MatchResponse` per request, in request order."""

    results: Tuple[MatchResponse, ...]

    kind = "batch_response"

    # repro: allow[RPA006] 'queries' is a redundant convenience count for JSONL
    # consumers; the decoder derives it as len(results), so it cannot drift
    def to_wire(self) -> Dict[str, object]:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "results": [result.to_wire() for result in self.results],
            "queries": len(self.results),
        }

    @classmethod
    def from_wire(cls, payload: object) -> "BatchResponse":
        data = check_envelope(payload, kind=cls.kind)
        return cls(
            results=tuple(MatchResponse.from_wire(entry) for entry in data.get("results", []))
        )


# -- mutations ---------------------------------------------------------------


@dataclass(frozen=True)
class MutationRequest:
    """Add or remove a repository tree.

    ``add`` carries the new tree (``schema``/``schema_format``/``name``,
    exactly like a match request).  ``remove`` names the victim by positional
    ``tree_id`` *or* stable ``tree_name`` (exactly one): names survive the
    id shift every removal causes (see the module docstring), ids do not.
    """

    action: str
    schema: Optional[Mapping[str, object]] = None
    schema_format: str = "nested"
    name: Optional[str] = None
    tree_id: Optional[int] = None
    tree_name: Optional[str] = None
    warnings: Tuple[str, ...] = field(default=(), compare=False)

    kind = "mutation"

    def validate(self) -> "MutationRequest":
        if self.action not in ("add", "remove"):
            raise InvalidRequestError(
                f"mutation action must be 'add' or 'remove', got {self.action!r}"
            )
        if self.action == "add":
            _check_schema_payload(self.schema, self.schema_format)
        else:
            by_id = self.tree_id is not None
            by_name = self.tree_name is not None
            if by_id == by_name:
                raise InvalidRequestError(
                    "remove needs exactly one of 'tree_id' (positional) or 'tree_name' (stable)"
                )
            if by_id and (isinstance(self.tree_id, bool) or not isinstance(self.tree_id, int)):
                raise InvalidRequestError(f"tree_id must be an integer, got {self.tree_id!r}")
            if by_name and (not isinstance(self.tree_name, str) or not self.tree_name):
                raise InvalidRequestError(
                    f"tree_name must be a non-empty string, got {self.tree_name!r}"
                )
        return self

    def build_schema(self, default_name: str) -> SchemaTree:
        assert self.schema is not None  # validate() enforces it for "add"
        return build_schema_payload(self.schema, self.schema_format, self.name or default_name)

    def to_wire(self) -> Dict[str, object]:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "action": self.action,
            "schema": None if self.schema is None else dict(self.schema),
            "schema_format": self.schema_format,
            "name": self.name,
            "tree_id": self.tree_id,
            "tree_name": self.tree_name,
        }

    @classmethod
    def from_wire(cls, payload: object) -> "MutationRequest":
        data = check_envelope(payload, kind=cls.kind)
        schema = data.get("schema")
        return cls(
            action=data.get("action", ""),
            schema=None if schema is None else dict(schema),
            schema_format=data.get("schema_format", "nested"),
            name=data.get("name"),
            tree_id=data.get("tree_id"),
            tree_name=data.get("tree_name"),
        ).validate()


@dataclass(frozen=True)
class MutationResponse:
    """Outcome of a mutation: positional id *and* stable name, plus new size.

    ``tree_id`` is positional and is invalidated for every later tree by any
    subsequent remove; ``tree_name`` is the stable handle clients should keep.
    """

    ok: bool
    action: str
    tree_id: int
    tree_name: str
    trees: int
    warnings: Tuple[str, ...] = ()

    kind = "mutation_response"

    def to_wire(self) -> Dict[str, object]:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "ok": self.ok,
            "action": self.action,
            "tree_id": self.tree_id,
            "tree_name": self.tree_name,
            "trees": self.trees,
            "warnings": list(self.warnings),
        }

    @classmethod
    def from_wire(cls, payload: object) -> "MutationResponse":
        data = check_envelope(payload, kind=cls.kind)
        return cls(
            ok=data.get("ok", False),
            action=data.get("action", ""),
            tree_id=data.get("tree_id", -1),
            tree_name=data.get("tree_name", ""),
            trees=data.get("trees", 0),
            warnings=tuple(data.get("warnings", [])),
        )


# -- stats -------------------------------------------------------------------


@dataclass(frozen=True)
class StatsRequest:
    """Ask for operational stats — or the backend's ``describe()`` card."""

    describe: bool = False

    kind = "stats"

    def to_wire(self) -> Dict[str, object]:
        return {"v": PROTOCOL_VERSION, "kind": self.kind, "describe": self.describe}

    @classmethod
    def from_wire(cls, payload: object) -> "StatsRequest":
        data = check_envelope(payload, kind=cls.kind)
        describe = data.get("describe", False)
        if not isinstance(describe, bool):
            raise InvalidRequestError(f"describe must be a boolean, got {describe!r}")
        return cls(describe=describe)


@dataclass(frozen=True)
class StatsResponse:
    """The uniform stats/describe dict every backend now produces."""

    stats: Dict[str, object]

    kind = "stats_response"

    def to_wire(self) -> Dict[str, object]:
        return {"v": PROTOCOL_VERSION, "kind": self.kind, "stats": dict(self.stats)}

    @classmethod
    def from_wire(cls, payload: object) -> "StatsResponse":
        data = check_envelope(payload, kind=cls.kind)
        stats = data.get("stats")
        if not isinstance(stats, Mapping):
            raise InvalidRequestError("stats response needs a 'stats' object")
        return cls(stats=dict(stats))


# -- errors ------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorResponse:
    """The v1 failure envelope (``error_type`` only for unexpected failures)."""

    error: str
    error_type: Optional[str] = None
    warnings: Tuple[str, ...] = ()

    kind = "error"

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "error": self.error,
            "warnings": list(self.warnings),
        }
        if self.error_type is not None:
            wire["type"] = self.error_type
        return wire

    @classmethod
    def from_wire(cls, payload: object) -> "ErrorResponse":
        data = check_envelope(payload, kind=cls.kind)
        return cls(
            error=data.get("error", ""),
            error_type=data.get("type"),
            warnings=tuple(data.get("warnings", [])),
        )


#: Request envelopes by wire kind — the dispatch table of :func:`parse_request`.
REQUEST_KINDS = {
    MatchRequest.kind: MatchRequest,
    BatchRequest.kind: BatchRequest,
    MutationRequest.kind: MutationRequest,
    StatsRequest.kind: StatsRequest,
}


def parse_request(payload: object):
    """Parse any v1 request envelope by its ``kind`` field."""
    data = check_envelope(payload)
    kind = data.get("kind")
    request_cls = REQUEST_KINDS.get(kind)
    if request_cls is None:
        raise InvalidRequestError(
            f"unknown request kind {kind!r}; v{PROTOCOL_VERSION} requests are one of: "
            + ", ".join(sorted(REQUEST_KINDS))
        )
    return request_cls.from_wire(data)

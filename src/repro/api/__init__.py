"""The unified query API: typed envelopes, one ``Matcher`` protocol, a server.

PRs 1-4 grew three divergent query entry points (``Bellflower.match``,
``MatchingService.match``, ``ShardedMatchingService.match/match_many``) plus
the untyped JSON dicts of the serve loop.  This package is the one stable,
versioned surface over all of them:

* :mod:`repro.api.envelope` — typed request/response dataclasses with a
  versioned ``to_wire()``/``from_wire()`` codec (``{"v": 1, ...}``), the
  single wire format for CLI, server and tests;
* :mod:`repro.api.validation` — the API-boundary parameter checks every
  backend shares (one :class:`~repro.errors.InvalidRequestError`);
* :mod:`repro.api.matcher` — the :class:`Matcher` protocol and the mixin
  that layers typed dispatch over each backend's legacy entry points;
* :mod:`repro.api.dispatch` — the transport-free request dispatcher the
  stdin loop and the TCP server share;
* :mod:`repro.api.server` — the concurrent asyncio JSONL TCP server
  (``cli serve --port``).

This package never imports a backend at runtime (backends import *it*), so
``repro.system`` / ``repro.service`` / ``repro.shard`` can all implement the
protocol without import cycles.
"""

from repro.api.dispatch import RequestDispatcher, ServeDefaults
from repro.api.encode import explain_report, mapping_record, match_response
from repro.api.envelope import (
    DEPRECATED_TOP_WARNING,
    PROTOCOL_VERSION,
    AssignmentEntry,
    BatchRequest,
    BatchResponse,
    ClusterStat,
    ErrorResponse,
    ExplainReport,
    MappingRecord,
    MatchOptions,
    MatchRequest,
    MatchResponse,
    MutationRequest,
    MutationResponse,
    StatsRequest,
    StatsResponse,
    check_envelope,
    parse_request,
)
from repro.api.matcher import Matcher, MatcherAPIMixin
from repro.api.server import MatcherServer, run_server
from repro.api.validation import (
    validate_delta,
    validate_page,
    validate_query,
    validate_top,
    validate_top_k,
)

__all__ = [
    "AssignmentEntry",
    "BatchRequest",
    "BatchResponse",
    "ClusterStat",
    "DEPRECATED_TOP_WARNING",
    "ErrorResponse",
    "ExplainReport",
    "MappingRecord",
    "MatchOptions",
    "MatchRequest",
    "MatchResponse",
    "Matcher",
    "MatcherAPIMixin",
    "MatcherServer",
    "MutationRequest",
    "MutationResponse",
    "PROTOCOL_VERSION",
    "RequestDispatcher",
    "ServeDefaults",
    "StatsRequest",
    "StatsResponse",
    "check_envelope",
    "explain_report",
    "mapping_record",
    "match_response",
    "parse_request",
    "run_server",
    "validate_delta",
    "validate_page",
    "validate_query",
    "validate_top",
    "validate_top_k",
]

"""Encode backend results into wire envelopes.

The translation from a :class:`~repro.system.results.MatchResult` (live
objects: mappings holding repository node refs, counter sets, stage timers)
into a :class:`~repro.api.envelope.MatchResponse` (plain records a JSON line
can carry) lives here, in one place, so the CLI, the stdin serve loop, the
asyncio server and the tests all render a mapping identically.  The functions
are duck-typed over the repository (``tree(tree_id)`` + path rendering) so
they serve the real :class:`~repro.schema.repository.SchemaRepository` and the
sharded merged-coordinate view alike — no runtime import of any backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.api.envelope import (
    AssignmentEntry,
    ClusterStat,
    ExplainReport,
    MappingRecord,
    MatchOptions,
    MatchResponse,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids backend imports
    from repro.mapping.model import SchemaMapping
    from repro.schema.tree import SchemaTree
    from repro.system.results import MatchResult


def mapping_record(repository, personal: "SchemaTree", mapping: "SchemaMapping") -> MappingRecord:
    """Render one mapping as paths (the stable, coordinate-free identity)."""
    tree = repository.tree(mapping.tree_id)
    return MappingRecord(
        score=mapping.score,
        tree=tree.name,
        tree_id=mapping.tree_id,
        assignment=tuple(
            AssignmentEntry(
                personal="/" + "/".join(personal.root_path_names(node_id)),
                repository="/" + "/".join(tree.root_path_names(element.ref.node_id)),
                similarity=element.similarity,
            )
            for node_id, element in sorted(mapping.assignment.items())
        ),
    )


def explain_report(result: "MatchResult") -> ExplainReport:
    """Per-cluster search statistics plus the run's pruning totals."""
    return ExplainReport(
        useful_clusters=result.useful_cluster_count,
        search_space=result.search_space,
        partial_mappings=result.partial_mappings,
        partial=bool(getattr(result, "partial", False)),
        clusters=tuple(
            ClusterStat(
                cluster_id=report.cluster_id,
                tree_id=report.tree_id,
                member_count=report.member_count,
                mapping_element_count=report.mapping_element_count,
                search_space=report.search_space,
            )
            for report in result.cluster_reports
        ),
    )


def match_response(
    repository,
    personal: "SchemaTree",
    result: "MatchResult",
    options: MatchOptions,
    warnings: Tuple[str, ...] = (),
) -> MatchResponse:
    """Page and encode one result according to the request's options."""
    end = None if options.limit is None else options.offset + options.limit
    page = result.mappings[options.offset : end]
    timings = dict(result.timers.elapsed())
    timings["total"] = result.total_seconds
    # getattr: foreign Matcher implementations may return result objects that
    # predate the resilience flags; absent flags mean an exact result.
    return MatchResponse(
        mappings=tuple(mapping_record(repository, personal, mapping) for mapping in page),
        mapping_count=len(result.mappings),
        offset=options.offset,
        counters=result.counters.as_dict(),
        timings=timings,
        explain=explain_report(result) if options.explain else None,
        warnings=warnings,
        partial=bool(getattr(result, "partial", False)),
        degraded=bool(getattr(result, "degraded", False)),
        skipped_shards=tuple(getattr(result, "skipped_shards", ()) or ()),
    )

"""A concurrent asyncio JSONL TCP server over any :class:`Matcher`.

``cli serve --port`` replaces the blocking stdin loop with a real server:
many clients connect concurrently, each speaking the same JSON-lines
protocol the stdin loop speaks (one request per line, one response per
line), with both the v1 envelope dialect and the legacy dict dialect
accepted — the :class:`~repro.api.dispatch.RequestDispatcher` is shared, so
the two transports cannot diverge.

Concurrency model
-----------------
* **Per-connection isolation**: each connection is one asyncio task with its
  own reader/writer; a client's malformed line or failure never affects
  another client, and responses are written strictly in that client's
  request order (no interleaving — the protocol has no request ids).
* **Executor offload**: request handling is CPU work (the matching
  pipeline), so it runs on a thread pool via ``run_in_executor`` — the event
  loop stays responsive for accepts, reads and writes while queries crunch.
* **Bounded in-flight requests**: a global semaphore caps how many requests
  may execute concurrently across all connections (admission control's
  simplest form); excess requests queue at their connection in arrival
  order.
* **Mutation safety**: the dispatcher's readers-writer lock lets queries
  from many clients overlap while ``add``/``remove`` runs exclusively.

On connect the server sends one ``{"v": 1, "kind": "ready", ...}`` line so
clients can sync before issuing requests.  :meth:`MatcherServer.stop` is the
graceful shutdown: the listener closes, connections get a drain window for
their in-flight requests, stragglers are cancelled, the thread pool shuts
down.
"""

from __future__ import annotations

import asyncio
import json
import signal
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Set

from repro.api.dispatch import RequestDispatcher, ServeDefaults
from repro.api.envelope import PROTOCOL_VERSION, ErrorResponse

#: Default cap on a single request line (protects the server from unbounded
#: buffering on a garbage stream; generous for real schema payloads).
DEFAULT_MAX_LINE_BYTES = 1 << 20

#: Frame-read sentinels: the request line overran the cap and the stream was
#: resynchronized on its terminator / hit EOF before one was found.
_OVERSIZED = object()
_OVERSIZED_EOF = object()


class MatcherServer:
    """Serve one matcher over TCP (JSON lines, v1 envelopes + legacy dicts)."""

    def __init__(
        self,
        matcher,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        defaults: Optional[ServeDefaults] = None,
        max_in_flight: int = 8,
        worker_threads: Optional[int] = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be positive, got {max_in_flight}")
        self.matcher = matcher
        self.host = host
        self.port = port
        self.dispatcher = RequestDispatcher(matcher, defaults)
        self.max_in_flight = max_in_flight
        self.max_line_bytes = max_line_bytes
        self._worker_threads = worker_threads or max_in_flight
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._connections: Set[asyncio.Task] = set()
        self._closing = False
        self._stop_event: Optional[asyncio.Event] = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "MatcherServer":
        """Bind and start accepting; resolves ``self.port`` when it was 0.

        A stopped server may be started again (fresh listener, pool and
        connection set; the dispatcher and its mutation bookkeeping carry
        over).
        """
        self._closing = False
        self._connections = set()
        self._pool = ThreadPoolExecutor(
            max_workers=self._worker_threads, thread_name_prefix="repro-api"
        )
        self._semaphore = asyncio.Semaphore(self.max_in_flight)
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=self.max_line_bytes
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight work, cancel stragglers.

        Idle connections (blocked waiting for the next request line) are woken
        immediately via the stop event and exit without consuming the drain
        window; the timeout only matters for requests actually executing.
        """
        self._closing = True
        if self._stop_event is not None:
            self._stop_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._connections if not task.done()}
        if pending:
            _done, pending = await asyncio.wait(pending, timeout=drain_timeout)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- connections ----------------------------------------------------------

    def _ready_envelope(self) -> dict:
        repository = getattr(self.matcher, "repository", None)
        return {
            "v": PROTOCOL_VERSION,
            "kind": "ready",
            "ready": True,
            "protocol_version": PROTOCOL_VERSION,
            "backend": getattr(self.matcher, "backend_kind", type(self.matcher).__name__),
            "trees": getattr(repository, "tree_count", 0),
            "nodes": getattr(repository, "node_count", 0),
        }

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        loop = asyncio.get_running_loop()
        assert self._stop_event is not None
        stop_waiter = asyncio.ensure_future(self._stop_event.wait())
        try:
            await self._send(writer, self._ready_envelope())
            while not self._closing:
                read_task = asyncio.ensure_future(self._read_frame(reader))
                # Wake on either the next request line or server shutdown, so
                # an idle connection never holds up a graceful stop.
                await asyncio.wait(
                    {read_task, stop_waiter}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read_task.done():
                    read_task.cancel()
                    await asyncio.gather(read_task, return_exceptions=True)
                    break
                line = read_task.result()
                if line is _OVERSIZED or line is _OVERSIZED_EOF:
                    # One request line blew the cap.  Answer with a proper v1
                    # error; the framing is already resynchronized, so the
                    # connection keeps serving — one bad request must not cost
                    # the client its session (EOF mid-line still closes).
                    await self._send(
                        writer,
                        ErrorResponse(
                            error=f"request line exceeds {self.max_line_bytes} bytes"
                        ).to_wire(),
                    )
                    if line is _OVERSIZED:
                        continue
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                assert self._semaphore is not None and self._pool is not None
                async with self._semaphore:
                    response = await loop.run_in_executor(
                        self._pool, self.dispatcher.handle_line, text
                    )
                await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # client went away or shutdown cancelled us; nothing to answer
        finally:
            stop_waiter.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # The task stays registered until the transport is fully
                # closed, so stop() (and therefore run_server's loop
                # teardown) waits for this cleanup instead of cancelling it
                # mid-close and spraying "Exception in callback" noise.
                pass
            if task is not None:
                self._connections.discard(task)

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader):
        """Next request line; sentinels for an oversized one.

        ``StreamReader.readline`` is unusable for recovery — it clears its
        buffer before raising on a limit overrun, silently discarding the
        terminator when one was already buffered, after which the framing is
        unrecoverable.  Reading via ``readuntil`` keeps the buffer intact on
        overrun, so the oversized line can be discarded up to (and through)
        its terminator: ``readexactly`` drops the scanned prefix the overrun
        reports, then ``readuntil`` retries until the terminator lands within
        the limit.  Returns the line (``b""`` at EOF, matching ``readline``),
        or ``_OVERSIZED`` after resynchronizing past an oversized line, or
        ``_OVERSIZED_EOF`` when the stream ended inside one.
        """
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as error:
            return error.partial  # EOF; an unterminated tail still dispatches
        except asyncio.LimitOverrunError as error:
            consumed = error.consumed
            try:
                while True:
                    await reader.readexactly(consumed)
                    try:
                        await reader.readuntil(b"\n")
                        return _OVERSIZED
                    except asyncio.LimitOverrunError as again:
                        consumed = again.consumed
            except asyncio.IncompleteReadError:
                return _OVERSIZED_EOF

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await writer.drain()


def run_server(
    matcher,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    defaults: Optional[ServeDefaults] = None,
    max_in_flight: int = 8,
    worker_threads: Optional[int] = None,
    drain_timeout: float = 5.0,
    on_ready=None,
) -> int:
    """Run a :class:`MatcherServer` until SIGINT/SIGTERM, then stop gracefully.

    The synchronous entry point the CLI uses.  ``on_ready(server)`` fires
    after the bind (the CLI prints the listening address from it, which is
    also how tests discover an ephemeral port).  On SIGINT/SIGTERM the
    listener closes and in-flight requests get ``drain_timeout`` seconds to
    finish before stragglers are cancelled.
    """

    async def _main() -> None:
        server = MatcherServer(
            matcher,
            host=host,
            port=port,
            defaults=defaults,
            max_in_flight=max_in_flight,
            worker_threads=worker_threads,
        )
        await server.start()
        if on_ready is not None:
            on_ready(server)
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
                pass
        try:
            await stop_event.wait()
        except asyncio.CancelledError:  # pragma: no cover - external cancellation
            pass
        finally:
            await server.stop(drain_timeout=drain_timeout)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal handler unavailable
        pass
    return 0

"""The one request dispatcher behind every serving front-end.

:class:`RequestDispatcher` turns one parsed JSON request into one JSON
response dict against any :class:`~repro.api.matcher.Matcher`.  The stdin
serve loop (``cli serve``) and the asyncio TCP server
(:mod:`repro.api.server`) are both thin adapters over it, so protocol
behaviour — envelope parsing, the legacy dict dialect, error classification,
mutation bookkeeping — cannot drift between transports.

Two dialects share the dispatcher:

* **v1 envelopes** — any payload carrying ``"v"`` is parsed with
  :func:`~repro.api.envelope.parse_request` and answered with a v1 response
  envelope (including v1 :class:`~repro.api.envelope.ErrorResponse` frames);
* **legacy dicts** — payloads without ``"v"`` keep the pre-PR serve
  protocol (``{"personal"| "batch" | "add" | "remove" | "stats"}`` with
  ``top``/``top_k``/``delta``).  Every pre-existing response field keeps its
  exact shape and meaning; mutation responses additionally carry the stable
  identifiers (``name`` on add, ``tree_id`` on remove) the tree-id shift
  rule demands — additive only, so existing clients keep working.

Robustness contract (inherited from the old serve loop, now enforced for
every transport): *nothing* a client sends may escape as an exception.
Expected failures — :class:`~repro.errors.ReproError` (including every
:class:`~repro.errors.InvalidRequestError` the validation layer raises),
``ValueError``, ``KeyError``, ``TypeError`` — become plain error envelopes;
anything else additionally reports the exception class under ``"type"``.

Concurrency: the dispatcher is thread-safe.  Queries and stats run under a
shared (read) lock, mutations under an exclusive (write) lock, so the asyncio
server can overlap many clients' queries while an ``add``/``remove`` never
races a query against half-patched derived state.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional

from repro.api.encode import mapping_record
from repro.api.envelope import (
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    MatchRequest,
    MutationRequest,
    MutationResponse,
    StatsRequest,
    StatsResponse,
    parse_request,
)
from repro.api.validation import validate_timeout_ms, validate_top
from repro.errors import InvalidRequestError, ReproError
from repro.resilience.deadline import Deadline
from repro.schema.builder import TreeBuilder

#: Failures a client can cause; reported without the exception class.
_EXPECTED_ERRORS = (ReproError, ValueError, KeyError, TypeError)


def personal_schema_from_spec(spec, name: str = "personal"):
    """Build a personal schema from a nested JSON spec (the one shared validator).

    Both the CLI front-end and the dispatcher's legacy dialect accept the
    same shape, so they share this helper — accepting a new spec form in one
    place cannot silently diverge the stdin path from the server path.
    """
    if not isinstance(spec, dict):
        raise ReproError(
            "a personal schema must be a JSON object mapping the root name to its children"
        )
    return TreeBuilder.from_nested(spec, name=name)


class _ReadWriteLock:
    """Many concurrent readers or one writer, writer-preferring (no reentrancy).

    The serve workload is read-heavy (queries) with rare mutations — which
    is precisely why naive reader preference would be a liveness bug: under
    a sustained query stream the reader count never drains and an
    ``add``/``remove`` would block forever while pinning a worker thread.
    The turnstile gives writers priority: a waiting writer holds it, which
    stops *new* readers from joining, the in-flight readers drain, the
    writer runs, and the queued readers resume.
    """

    def __init__(self) -> None:
        self._readers = 0
        self._readers_mutex = threading.Lock()
        self._writer_mutex = threading.Lock()
        self._turnstile = threading.Lock()

    @contextmanager
    def read(self):
        # The turnstile is held only momentarily on the uncontended path; a
        # waiting writer holds it for its whole wait, parking new readers.
        with self._turnstile:
            with self._readers_mutex:
                self._readers += 1
                if self._readers == 1:
                    self._writer_mutex.acquire()
        try:
            yield
        finally:
            with self._readers_mutex:
                self._readers -= 1
                if self._readers == 0:
                    self._writer_mutex.release()

    @contextmanager
    def write(self):
        with self._turnstile:
            # Acquire while holding the turnstile so no new reader can slip
            # in ahead; release the turnstile once exclusive.
            self._writer_mutex.acquire()
        try:
            yield
        finally:
            self._writer_mutex.release()


@dataclass
class ServeDefaults:
    """Per-process defaults for *legacy* requests (v1 envelopes are self-contained).

    ``top`` trims the printed mapping list, ``top_k`` bounds the search —
    the very distinction the v1 protocol renames to ``limit``/``top_k``.
    ``timeout_ms`` is the default per-request search deadline (``None`` — the
    default — means unbounded, the pre-existing behaviour).
    """

    top: int = 10
    top_k: Optional[int] = None
    timeout_ms: Optional[int] = None


class RequestDispatcher:
    """Dispatch parsed requests against one matcher (thread-safe, transport-free)."""

    def __init__(self, matcher, defaults: Optional[ServeDefaults] = None) -> None:
        self.matcher = matcher
        self.defaults = defaults or ServeDefaults()
        self._added = 0
        self._lock = _ReadWriteLock()

    # -- entry points ---------------------------------------------------------

    def handle_line(self, line: str) -> Dict[str, object]:
        """One raw request line in, one response dict out — never raises."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            return {"error": str(error) or type(error).__name__}
        return self.handle_request(payload)

    def handle_request(self, payload: object) -> Dict[str, object]:
        """Dispatch one parsed payload; failures become error envelopes."""
        v1 = isinstance(payload, dict) and "v" in payload
        try:
            if not isinstance(payload, dict):
                raise ReproError(
                    f"request must be a JSON object, got {type(payload).__name__}"
                )
            if v1:
                return self._handle_v1(payload)
            return self._handle_legacy(payload)
        except _EXPECTED_ERRORS as error:
            message = str(error) or type(error).__name__
            if v1:
                return ErrorResponse(error=message).to_wire()
            return {"error": message}
        except Exception as error:  # noqa: BLE001 - serving must survive anything
            message = str(error) or type(error).__name__
            if v1:
                return ErrorResponse(error=message, error_type=type(error).__name__).to_wire()
            return {"error": message, "type": type(error).__name__}

    # -- v1 envelopes ---------------------------------------------------------

    def _handle_v1(self, payload: dict) -> Dict[str, object]:
        request = parse_request(payload)
        if isinstance(request, MatchRequest):
            with self._lock.read():
                return self.matcher.match(request).to_wire()
        if isinstance(request, BatchRequest):
            with self._lock.read():
                results = self.matcher.match_many(list(request.requests))
            return BatchResponse(results=tuple(results)).to_wire()
        if isinstance(request, MutationRequest):
            with self._lock.write():
                return self._execute_mutation(request).to_wire()
        assert isinstance(request, StatsRequest)
        with self._lock.read():
            stats = self.matcher.describe() if request.describe else self.matcher.stats()
        return StatsResponse(stats=stats).to_wire()

    def _execute_mutation(self, request: MutationRequest) -> MutationResponse:
        matcher = self.matcher
        if not hasattr(matcher, "add_tree"):
            raise InvalidRequestError(
                f"backend {getattr(matcher, 'backend_kind', type(matcher).__name__)!r} "
                "does not support mutations"
            )
        if request.action == "add":
            self._added += 1
            tree = request.build_schema(default_name=f"added-{self._added}")
            tree_id = matcher.add_tree(tree)
            return MutationResponse(
                ok=True,
                action="add",
                tree_id=tree_id,
                tree_name=tree.name,
                trees=matcher.repository.tree_count,
                warnings=request.warnings,
            )
        tree_id = request.tree_id
        if request.tree_name is not None:
            tree_id = self._resolve_tree_name(request.tree_name)
        removed = matcher.remove_tree(tree_id)
        return MutationResponse(
            ok=True,
            action="remove",
            tree_id=tree_id,
            tree_name=removed.name,
            trees=matcher.repository.tree_count,
            warnings=request.warnings,
        )

    def _resolve_tree_name(self, tree_name: str) -> int:
        repository = self.matcher.repository
        matches = [
            tree_id
            for tree_id in range(repository.tree_count)
            if repository.tree(tree_id).name == tree_name
        ]
        if not matches:
            raise InvalidRequestError(f"no tree named {tree_name!r} in the repository")
        if len(matches) > 1:
            raise InvalidRequestError(
                f"tree name {tree_name!r} is ambiguous ({len(matches)} trees); remove by tree_id"
            )
        return matches[0]

    # -- the legacy dict dialect ---------------------------------------------

    def _handle_legacy(self, request: dict) -> Dict[str, object]:
        matcher = self.matcher
        if "personal" in request:
            personal = personal_schema_from_spec(request["personal"])
            top_k = request.get("top_k", self.defaults.top_k)
            top = validate_top(int(request.get("top", self.defaults.top)))
            with self._lock.read():
                result = matcher.match(
                    personal,
                    delta=request.get("delta"),
                    top_k=None if top_k is None else int(top_k),
                    **self._legacy_deadline(request),
                )
            response = {
                "mappings": [
                    self._legacy_mapping(personal, mapping)
                    for mapping in result.mappings[:top]
                ],
                "mapping_count": len(result.mappings),
                "elapsed_seconds": round(result.total_seconds, 6),
            }
            self._legacy_result_flags(response, result)
            return response
        if "batch" in request:
            specs = request["batch"]
            if not isinstance(specs, list) or not specs:
                raise ReproError("batch must be a non-empty JSON array of personal schemas")
            schemas = [
                personal_schema_from_spec(spec, name=f"batch-{index}")
                for index, spec in enumerate(specs, start=1)
            ]
            top_k = request.get("top_k", self.defaults.top_k)
            top = validate_top(int(request.get("top", self.defaults.top)))
            with self._lock.read():
                results = matcher.match_many(
                    schemas,
                    delta=request.get("delta"),
                    top_k=None if top_k is None else int(top_k),
                    **self._legacy_deadline(request),
                )
            entries = []
            for personal, result in zip(schemas, results):
                entry = {
                    "mappings": [
                        self._legacy_mapping(personal, mapping)
                        for mapping in result.mappings[:top]
                    ],
                    "mapping_count": len(result.mappings),
                }
                self._legacy_result_flags(entry, result)
                entries.append(entry)
            return {"results": entries, "queries": len(schemas)}
        if "add" in request:
            with self._lock.write():
                self._added += 1
                tree = TreeBuilder.from_nested(
                    request["add"], name=str(request.get("name", f"added-{self._added}"))
                )
                return {
                    "ok": True,
                    "tree_id": matcher.add_tree(tree),
                    "name": tree.name,
                    "trees": matcher.repository.tree_count,
                }
        if "remove" in request:
            with self._lock.write():
                tree_id = int(request["remove"])
                removed = matcher.remove_tree(tree_id)
                return {
                    "ok": True,
                    "removed": removed.name,
                    "tree_id": tree_id,
                    "trees": matcher.repository.tree_count,
                }
        if "stats" in request:
            with self._lock.read():
                return {"stats": matcher.stats()}
        raise ReproError("request needs one of: personal, batch, add, remove, stats")

    def _legacy_deadline(self, request: dict) -> Dict[str, object]:
        """The ``deadline=`` kwarg for a legacy query, or ``{}`` when unbounded.

        Passed as ``**kwargs`` so foreign matchers whose ``match`` does not
        know the keyword keep working as long as no timeout is requested.
        """
        timeout_ms = request.get("timeout_ms", self.defaults.timeout_ms)
        if timeout_ms is None:
            return {}
        # Validate before any coercion: int("soon") would hide the field name
        # and int(True) would launder a boolean past the type check.
        timeout_ms = validate_timeout_ms(timeout_ms)
        return {"deadline": Deadline.after_ms(timeout_ms)}

    @staticmethod
    def _legacy_result_flags(response: Dict[str, object], result) -> None:
        """Mark truncated/degraded legacy responses — additive, only when true."""
        if getattr(result, "partial", False):
            response["partial"] = True
        if getattr(result, "degraded", False):
            response["degraded"] = True
            response["skipped_shards"] = sorted(getattr(result, "skipped_shards", ()))

    def _legacy_mapping(self, personal, mapping) -> Dict[str, object]:
        return legacy_mapping_dict(self.matcher.repository, personal, mapping)


def legacy_mapping_dict(repository, personal, mapping) -> Dict[str, object]:
    """One mapping in the legacy response shape (paths via the one shared renderer)."""
    record = mapping_record(repository, personal, mapping)
    return {
        "score": round(record.score, 6),
        "tree": record.tree,
        "assignment": [
            {"personal": entry.personal, "repository": entry.repository}
            for entry in record.assignment
        ],
    }

"""The long-lived matching service facade.

The paper assumes a repository that is indexed and clustered *once* and then
queried by many personal schemas; the experiment harness instead rebuilt every
piece of derived state per process.  :class:`MatchingService` closes that gap:
it owns a :class:`~repro.system.bellflower.Bellflower` pipeline together with
all of its derived state — the batch matcher's name/trigram index, the
per-tree labeling distance oracles and an optional precomputed repository
partition — and keeps that state *live* across repository mutations and
queries:

* **snapshots** — :func:`repro.service.snapshot.write_snapshot` /
  :func:`~repro.service.snapshot.load_snapshot` persist the repository plus
  every piece of built derived state, so a service process starts from one
  file read instead of recomputing (see ``benchmarks/bench_service_query.py``
  for the cold-load vs snapshot-load numbers);
* **incremental updates** — :meth:`add_tree` / :meth:`remove_tree` mutate the
  repository and patch only the affected index postings, oracle rows and
  partition entries, with results provably identical to a full rebuild
  (``tests/service/test_incremental.py`` pins the equivalence);
* **concurrent queries** — per-cluster mapping generation dispatches through
  a pluggable :class:`~repro.utils.executor.TaskExecutor`, and a bounded LRU
  cache keyed by a personal-schema fingerprint reuses whole element-matching
  tables across repeated queries (the heavy-traffic scenario).

Example
-------
>>> from repro.service import MatchingService
>>> from repro.workload import RepositoryGenerator, RepositoryProfile, paper_personal_schema
>>> repository = RepositoryGenerator(RepositoryProfile(target_node_count=2000)).generate()
>>> service = MatchingService(repository, element_threshold=0.45)
>>> result = service.match(paper_personal_schema())   # cold: builds + caches
>>> result = service.match(paper_personal_schema())   # warm: cache hit
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.api.envelope import PROTOCOL_VERSION
from repro.api.matcher import MatcherAPIMixin
from repro.api.validation import validate_query
from repro.clustering.kmeans import Clusterer
from repro.clustering.reclustering import ReclusteringStrategy
from repro.errors import ConfigurationError
from repro.labeling.distance import RepositoryDistanceOracle
from repro.mapping.base import MappingGenerator
from repro.matchers.base import BatchElementMatcher, ElementMatcher
from repro.matchers.index import LRUMemo
from repro.objective.base import ObjectiveFunction
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree
from repro.service.fingerprint import schema_fingerprint
from repro.service.partition import PartitionClusterer, RepositoryPartition
from repro.system.bellflower import Bellflower
from repro.system.results import MatchResult
from repro.system.variants import clustering_variant
from repro.utils.counters import ThreadSafeCounterSet
from repro.utils.executor import TaskExecutor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (shard layer imports service)
    from repro.mapping.engine import TopKPool
    from repro.resilience.deadline import Deadline


class MatchingService(MatcherAPIMixin):
    """A persistent, incrementally updatable matching facade over Bellflower.

    Parameters
    ----------
    repository:
        The repository forest to serve (must be non-empty, as for
        :class:`~repro.system.bellflower.Bellflower`).
    matcher, objective, generator:
        Forwarded to the underlying pipeline (defaults as there).
    clusterer / variant:
        Mutually exclusive cluster configuration: an explicit
        :class:`~repro.clustering.kmeans.Clusterer` instance, a named preset
        from :func:`~repro.system.variants.clustering_variant`, or — the
        default when both are omitted — a snapshot-friendly
        :class:`~repro.service.partition.PartitionClusterer` over a
        :class:`~repro.service.partition.RepositoryPartition` (precomputed
        offline fragments; the only clusterer whose state a snapshot can
        persist, because k-means clusters depend on the query).
    element_threshold, delta, use_batch_matching:
        As for :class:`~repro.system.bellflower.Bellflower`.
    executor:
        Optional :class:`~repro.utils.executor.TaskExecutor` for concurrent
        per-cluster mapping generation.  Results are identical for every
        executor; see :mod:`repro.utils.executor` for the determinism
        contract.
    query_cache_size:
        Capacity of the per-query element-match-table cache (``0`` disables
        it; required for custom matchers that read node ``properties``, which
        the fingerprint does not cover).
    partition_max_fragment_size, partition_reclustering:
        Shape of the default repository partition (ignored when ``clusterer``
        or ``variant`` is given).
    """

    backend_kind = "service"

    def __init__(
        self,
        repository: SchemaRepository,
        *,
        matcher: Optional[ElementMatcher] = None,
        objective: Optional[ObjectiveFunction] = None,
        generator: Optional[MappingGenerator] = None,
        clusterer: Optional[Clusterer] = None,
        variant: Optional[str] = None,
        element_threshold: float = 0.6,
        delta: float = 0.75,
        use_batch_matching: Optional[bool] = None,
        executor: Optional[TaskExecutor] = None,
        query_cache_size: int = 64,
        partition_max_fragment_size: int = 20,
        partition_reclustering: Optional[ReclusteringStrategy] = None,
    ) -> None:
        if clusterer is not None and variant is not None:
            raise ConfigurationError("pass either clusterer or variant, not both")
        if query_cache_size < 0:
            raise ConfigurationError(
                f"query_cache_size must be non-negative, got {query_cache_size}"
            )
        self.partition: Optional[RepositoryPartition] = None
        self._variant_name: Optional[str] = None
        if variant == PartitionClusterer.name:
            # "partition" is the name the service itself reports (and snapshots
            # record); accept it even though it is not a system-variant preset.
            variant = None
        if isinstance(clusterer, PartitionClusterer):
            # Adopt the clusterer's partition so incremental mutations keep
            # maintaining it — otherwise remove_tree would leave the clusterer
            # reading the wrong trees' fragment maps.
            self.partition = clusterer.partition
            self._variant_name = PartitionClusterer.name
        if clusterer is None:
            if variant is None:
                self.partition = RepositoryPartition(
                    max_fragment_size=partition_max_fragment_size,
                    reclustering=partition_reclustering,
                )
                clusterer = PartitionClusterer(self.partition)
                self._variant_name = PartitionClusterer.name
            else:
                spec = clustering_variant(variant)
                clusterer = spec.make_clusterer()
                self._variant_name = spec.name
        self.query_cache_size = query_cache_size
        self._query_cache = LRUMemo(query_cache_size)
        # Thread-safe: the asyncio server runs concurrent queries against one
        # service instance from thread-pool workers.
        self.counters = ThreadSafeCounterSet()
        self._system = Bellflower(
            repository,
            matcher=matcher,
            objective=objective,
            generator=generator,
            clusterer=clusterer,
            element_threshold=element_threshold,
            delta=delta,
            variant_name=self._variant_name,
            use_batch_matching=use_batch_matching,
            executor=executor,
        )
        # Live shared-memory publication of this service's repository and
        # derived state, if share_memory() has been called (see
        # repro.service.sharedmem).
        self._shared_view = None

    # -- accessors ----------------------------------------------------------

    @property
    def repository(self) -> SchemaRepository:
        return self._system.repository

    @property
    def matcher(self) -> ElementMatcher:
        return self._system.matcher

    @property
    def oracle(self) -> RepositoryDistanceOracle:
        return self._system.oracle

    @property
    def system(self) -> Bellflower:
        """The underlying pipeline (for harness-style stage-level access)."""
        return self._system

    @property
    def element_threshold(self) -> float:
        return self._system.element_threshold

    @property
    def delta(self) -> float:
        return self._system.delta

    @property
    def variant_name(self) -> Optional[str]:
        """Preset name the service was configured with (``None`` for a custom clusterer)."""
        return self._variant_name

    @property
    def query_cache_len(self) -> int:
        return len(self._query_cache)

    # -- warm-up -------------------------------------------------------------

    def build_derived_state(self) -> None:
        """Eagerly materialize everything a snapshot would persist.

        Builds the batch matcher's name index, every per-tree distance oracle
        and (for the partition clusterer) every tree's fragments.  A serving
        process calls this once at start-up — or skips it entirely by loading
        a snapshot — so that no query pays first-touch construction costs.
        """
        matcher = self._system.matcher
        if isinstance(matcher, BatchElementMatcher) and getattr(matcher, "supports_batch", False):
            matcher.name_index(self.repository).ensure_blocking()
        self.oracle.build_all()
        if self.partition is not None:
            self.partition.build_all(self.repository, self.oracle)

    # -- shared memory --------------------------------------------------------

    @property
    def shared_view(self):
        """The live shared-memory view, or ``None`` (see :meth:`share_memory`)."""
        view = self._shared_view
        if view is not None and not view.stale:
            return view
        return None

    def share_memory(self):
        """Publish the repository and derived state into shared memory.

        While the returned view is live (and the repository unmutated),
        pickling this service — or the distance oracle inside any of its
        mapping problems — ships only the segment name: process-pool workers
        attach to the published tables instead of unpickling a copy.
        Idempotent; republishes after a mutation.  Raises
        :class:`~repro.errors.ConfigurationError` for custom matcher /
        clusterer / objective / generator objects, whose behaviour a worker
        could not reconstruct from a descriptor.
        """
        from repro.service.sharedmem import SharedMemoryRepositoryView

        view = self._shared_view
        if (
            view is not None
            and not view.stale
            and view.repository_version == self.repository.version
        ):
            return view
        self.unshare_memory()
        view = SharedMemoryRepositoryView.publish(self)
        self._shared_view = view
        self.repository._shared_view = view
        return view

    def unshare_memory(self) -> None:
        """Unpublish and unlink the shared segment (idempotent)."""
        view = self._shared_view
        if view is None:
            return
        self._shared_view = None
        if getattr(self.repository, "_shared_view", None) is view:
            self.repository._shared_view = None
        view.close()

    # -- pickling (process executors) -----------------------------------------

    def __getstate__(self) -> dict:
        # Only reached when the shared-memory redirect below does not apply;
        # the view wraps an OS segment handle and never travels by copy.
        state = self.__dict__.copy()
        state["_shared_view"] = None
        return state

    def __reduce_ex__(self, protocol):
        view = self._shared_view
        if (
            view is not None
            and not view.stale
            and view.repository_version == self.repository.version
        ):
            from repro.service.sharedmem import _attach_shared_service

            return (_attach_shared_service, (view.name,))
        return super().__reduce_ex__(protocol)

    # -- queries -------------------------------------------------------------

    def _match_schema(
        self,
        personal_schema: SchemaTree,
        delta: Optional[float] = None,
        top_k: Optional[int] = None,
        shared_pool: Optional["TopKPool"] = None,
        deadline: Optional["Deadline"] = None,
        *,
        fingerprint: Optional[str] = None,
    ) -> MatchResult:
        """Match one personal schema, reusing cached element-match tables.

        This is the legacy entry point behind the public :meth:`match
        <repro.api.matcher.MatcherAPIMixin.match>` shim — ``match(tree,
        delta=..., top_k=...)`` lands here unchanged, ``match(MatchRequest)``
        lands here via the typed dispatch, so both paths are bit-identical.

        ``top_k`` restricts the query to the ``k`` best mappings and enables
        cross-cluster bound sharing in the generator (see
        :meth:`Bellflower.match <repro.system.bellflower.Bellflower.match>`);
        ``None`` keeps the complete ``Δ >= δ`` semantics.  ``shared_pool``
        extends the sharing across sibling services answering the same
        logical query (the shard fan-out — see :mod:`repro.shard`); it never
        changes this service's own results, only how much of its search gets
        pruned.

        The cache key combines the
        :func:`~repro.service.fingerprint.schema_fingerprint` of the personal
        schema with the query's *effective* ``δ`` and the repository's
        mutation :attr:`~repro.schema.repository.SchemaRepository.version`.
        The cached value (the element-match table) does not itself depend on
        ``δ``, but keying on the effective threshold guarantees a
        ``match(tree, delta=...)`` override can never observe an entry cached
        under different query semantics, and the version guard makes stale
        hits impossible even when the repository is mutated *directly*
        (bypassing :meth:`add_tree`/:meth:`remove_tree`, which also clear the
        cache eagerly).  A hit can therefore only ever return the table a
        fresh run would recompute — cached and uncached queries produce
        bit-identical mappings (only stage timers and cache counters differ).
        ``top_k`` is deliberately not part of the key: the element-match
        table is computed before mapping generation and is identical for
        every ``k``.  ``fingerprint`` lets the batch path pass the schema's
        already-computed fingerprint so it is hashed once per unique schema.
        """
        # Validate before the cache key is computed: an invalid request must
        # be rejected at the boundary, not after touching service state (the
        # pre-unification behaviour let the key build first and the error
        # fire deep inside mapping generation).
        validate_query(delta, top_k)
        effective_delta = self.delta if delta is None else delta
        cached = None
        key = None
        if self.query_cache_size:
            key = (
                fingerprint or schema_fingerprint(personal_schema),
                effective_delta,
                self.repository.version,
            )
            cached = self._query_cache.get(key)
        result = self._system.match(
            personal_schema,
            delta=delta,
            candidates=cached,
            top_k=top_k,
            shared_pool=shared_pool,
            deadline=deadline,
        )
        if key is not None:
            if cached is not None:
                self.counters.increment("query_cache_hits")
            else:
                self.counters.increment("query_cache_misses")
                # Caching the *candidates* (element-match tables) of a partial
                # result is sound: element matching completed before the
                # generation stage was cut short, so the table is the same one
                # a deadline-free run would compute.
                self._query_cache.put(key, result.candidates)
        self.counters.increment("queries")
        if result.partial:
            self.counters.increment("partials_returned")
        return result

    def _match_many_schemas(
        self,
        personal_schemas: Sequence[SchemaTree],
        delta: Optional[float] = None,
        top_k: Optional[int] = None,
        deadline: Optional["Deadline"] = None,
    ) -> List[MatchResult]:
        """Answer a batch of queries; result ``i`` belongs to schema ``i``.

        The fingerprint dedup + batching front-end PR 4 built for the shard
        layer, promoted down to the base service so batching pays off
        unsharded too: structurally identical schemas (same
        :func:`~repro.service.fingerprint.schema_fingerprint`, same effective
        ``δ``/``top_k``, same repository version) collapse to one search and
        share the result object.  Duplicates are the *whole* win here — the
        per-query candidate cache only reuses element-match tables, the
        mapping search re-runs every time — which is why the API benchmark
        gates this path at >= 2x on duplicate-heavy workloads.

        The dedup trusts the fingerprint the same way the candidate cache
        does, so it honours the same escape hatch: a service constructed
        with ``query_cache_size=0`` (required for custom matchers that read
        node ``properties``, which the fingerprint does not cover) answers
        every batch entry independently.
        """
        validate_query(delta, top_k)
        if not personal_schemas:
            return []
        if not self.query_cache_size:
            return [
                self._match_schema(schema, delta=delta, top_k=top_k, deadline=deadline)
                for schema in personal_schemas
            ]
        effective_delta = self.delta if delta is None else delta
        results: List[Optional[MatchResult]] = [None] * len(personal_schemas)
        resolved: Dict[tuple, MatchResult] = {}
        duplicates = 0
        for index, schema in enumerate(personal_schemas):
            fingerprint = schema_fingerprint(schema)
            key = (fingerprint, effective_delta, top_k, self.repository.version)
            result = resolved.get(key)
            if result is None:
                result = self._match_schema(
                    schema, delta=delta, top_k=top_k, deadline=deadline, fingerprint=fingerprint
                )
                resolved[key] = result
            else:
                duplicates += 1
            results[index] = result
        # _match_schema counted each unique query; account for the collapsed
        # duplicates so the batch counters mirror the sharded front-end's.
        self.counters.increment("queries", duplicates)
        self.counters.increment("duplicate_queries", duplicates)
        return results  # type: ignore[return-value]

    # -- incremental updates --------------------------------------------------

    def add_tree(self, tree: SchemaTree) -> int:
        """Register a new tree, patching derived state instead of rebuilding.

        Every cached name index gains only the new tree's postings
        (:meth:`~repro.matchers.index.RepositoryNameIndex.with_tree_added`),
        existing oracle rows stay untouched (the new tree's oracle builds on
        first use), and the partition fragments only the new tree.  The
        resulting service state is provably identical to one built from
        scratch over the enlarged forest — the repository's id assignment is
        append-only, and every maintained structure is per-tree or
        append-compatible.
        """
        self.unshare_memory()
        repository = self.repository
        indexes = repository.cached_name_indexes()
        tree_id = repository.add_tree(tree)
        for index in indexes.values():
            repository.install_name_index(index.with_tree_added(repository, tree_id))
        if self.partition is not None:
            self.partition.on_tree_added(repository, tree_id, self.oracle)
        self._query_cache.clear()
        self.counters.increment("trees_added")
        return tree_id

    def remove_tree(self, tree_id: int) -> SchemaTree:
        """Unregister a tree, patching derived state instead of rebuilding.

        Name-index postings referencing the tree are dropped and later trees'
        references shifted; the tree's oracle row is evicted (later rows are
        re-keyed, their tables are untouched and stay valid); the partition
        drops one entry.  Equivalent to a rebuild over the surviving forest
        because :meth:`SchemaRepository.remove_tree` leaves the repository
        indistinguishable from one freshly built from the survivors.
        """
        if self.repository.tree_count <= 1:
            raise ConfigurationError("cannot remove the last tree of a served repository")
        self.unshare_memory()
        repository = self.repository
        indexes = repository.cached_name_indexes()
        removed_node_count = repository.tree(tree_id).node_count
        removed = repository.remove_tree(tree_id)
        for index in indexes.values():
            repository.install_name_index(
                index.with_tree_removed(repository, tree_id, removed_node_count)
            )
        self.oracle.on_tree_removed(tree_id)
        if self.partition is not None:
            self.partition.on_tree_removed(tree_id)
        self._query_cache.clear()
        self.counters.increment("trees_removed")
        return removed

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Operational summary (repository sizes, cache state, service counters).

        Everything a monitoring endpoint needs in one JSON-serializable dict:
        repository sizes and mutation version, the clustering variant, the
        executor backend answering per-cluster searches, query-cache shape and
        hit/miss counters, and every service counter.
        """
        summary: Dict[str, object] = dict(self.repository.summary())
        summary["backend"] = self.backend_kind
        summary["protocol_version"] = PROTOCOL_VERSION
        summary["repository_version"] = self.repository.version
        summary["variant"] = self._variant_name or self._system.clusterer.name
        executor = self._system.executor
        summary["executor"] = "serial" if executor is None else executor.name
        summary["built_oracles"] = self.oracle.built_oracle_count
        summary["shared_memory"] = self.shared_view is not None
        summary["query_cache_capacity"] = self.query_cache_size
        summary["query_cache_entries"] = len(self._query_cache)
        if self.partition is not None:
            summary["partitioned_trees"] = self.partition.built_tree_count
        summary.update(self.counters.as_dict())
        return summary

    def _task_executor(self):
        return self._system.executor

    def _capabilities(self):
        return super()._capabilities() | {"mutations"}

    def _describe_extra(self) -> Dict[str, object]:
        return {
            "variant": self._variant_name or self._system.clusterer.name,
            "query_cache_capacity": self.query_cache_size,
            "query_cache_kind": "element-match tables",
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchingService(repository={self.repository.name!r}, "
            f"trees={self.repository.tree_count}, variant={self._variant_name!r})"
        )

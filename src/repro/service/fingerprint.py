"""Personal-schema fingerprints for the service query cache.

Two personal schemas produce identical element-matching tables whenever every
input the matcher reads is identical: node names, kinds, datatypes and the
parent structure (structural matchers walk the tree).  The fingerprint hashes
exactly those inputs in node-id order, so it is a sound cache key for the
per-query ``MappingElementSets`` table kept by
:class:`~repro.service.MatchingService` — schemas that hash alike match alike.

Deliberately *not* part of the fingerprint:

* the tree's display ``name`` (no matcher reads it);
* the nodes' free-form ``properties`` dictionaries (no bundled matcher reads
  them either; a custom matcher that does must disable the query cache by
  constructing the service with ``query_cache_size=0``).
"""

from __future__ import annotations

import hashlib

from repro.schema.tree import SchemaTree


def schema_fingerprint(tree: SchemaTree) -> str:
    """A stable hex digest of everything the element matchers can observe."""
    hasher = hashlib.sha256()
    hasher.update(f"nodes={tree.node_count}".encode())
    for node_id in tree.node_ids():
        node = tree.node(node_id)
        parent = tree.parent_id(node_id)
        record = (
            -1 if parent is None else parent,
            node.kind.value,
            node.datatype.value,
            node.name,
        )
        hasher.update(repr(record).encode())
    return hasher.hexdigest()

"""Precomputed repository partitions and the clusterer that serves them.

The paper's k-means clusters depend on the query (they group the *mapping
elements* of one personal schema), so they cannot be precomputed.  What *can*
be precomputed — and therefore snapshotted and updated incrementally — is an
offline, personal-schema-agnostic partition of every repository tree into
fragments (the Rahm-style baseline of
:class:`~repro.clustering.baselines.FragmentClusterer`), optionally
post-processed by a :class:`~repro.clustering.reclustering.ReclusteringStrategy`
(e.g. *join & remove* to merge adjacent slivers and drop single-node
fragments).

Locality argument (why incremental updates equal a full rebuild)
----------------------------------------------------------------

Fragmentation is a deterministic function of one tree
(:func:`~repro.clustering.baselines.fragment_tree`), and every bundled
reclustering strategy is *tree-local*: join only merges clusters whose
centroids share a tree (cross-tree distance is infinite), and remove inspects
each cluster in isolation.  The partition of tree ``T`` therefore never
depends on any other tree, so recomputing only the added tree's entry (or
deleting only the removed tree's entry and re-keying the rest) produces
exactly the partition a full rebuild would — the equivalence the service's
incremental-update tests pin.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.clustering.baselines import fragment_tree
from repro.clustering.cluster import Cluster, clusters_from_groups
from repro.clustering.distance import PathLengthDistance
from repro.clustering.kmeans import Clusterer, ClusteringResult
from repro.clustering.reclustering import ReclusteringStrategy
from repro.errors import ClusteringError
from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.selection import MappingElementSets
from repro.schema.repository import RepositoryNodeRef, SchemaRepository, shift_tree_keys
from repro.utils.counters import CounterSet


class RepositoryPartition:
    """Per-tree fragment lists, maintained incrementally and snapshottable.

    Fragments are stored as sorted tree-local node-id lists (global ids shift
    on removals; node ids never do), keyed by tree id.  Entries are built
    lazily on first use, eagerly by :meth:`build_all` (service warm-up /
    snapshot write), and maintained by :meth:`on_tree_added` /
    :meth:`on_tree_removed`.

    Parameters
    ----------
    max_fragment_size:
        Fragment size cap passed to
        :func:`~repro.clustering.baselines.fragment_tree`.
    reclustering:
        Optional strategy applied to each tree's fragments after splitting.
        Must be tree-local (all bundled strategies are); a strategy that
        joined clusters across trees would break both the cluster invariant
        and the incremental-update equivalence.
    """

    def __init__(
        self,
        max_fragment_size: int = 20,
        reclustering: Optional[ReclusteringStrategy] = None,
    ) -> None:
        if max_fragment_size < 1:
            raise ClusteringError(f"max_fragment_size must be positive, got {max_fragment_size}")
        self.max_fragment_size = max_fragment_size
        self.reclustering = reclustering
        self._fragments: Dict[int, List[List[int]]] = {}
        self._node_fragment: Dict[int, Dict[int, int]] = {}

    # -- construction -------------------------------------------------------

    def _build_tree(
        self,
        repository: SchemaRepository,
        tree_id: int,
        oracle: Optional[RepositoryDistanceOracle],
    ) -> List[List[int]]:
        tree = repository.tree(tree_id)
        assignment = fragment_tree(tree, self.max_fragment_size)
        groups: Dict[int, List[int]] = {}
        for node_id in tree.node_ids():
            groups.setdefault(assignment[node_id], []).append(node_id)
        fragments = [sorted(members) for _, members in sorted(groups.items())]
        if self.reclustering is not None:
            offset = repository.tree_offset(tree_id)
            clusters = [
                Cluster(
                    cluster_id=index,
                    tree_id=tree_id,
                    members={
                        RepositoryNodeRef(
                            global_id=offset + node_id, tree_id=tree_id, node_id=node_id
                        )
                        for node_id in members
                    },
                    centroid=RepositoryNodeRef(
                        global_id=offset + members[0], tree_id=tree_id, node_id=members[0]
                    ),
                )
                for index, members in enumerate(fragments)
            ]
            distance = PathLengthDistance(oracle or RepositoryDistanceOracle(repository))
            clusters = self.reclustering.recluster(clusters, distance, CounterSet())
            fragments = sorted(
                sorted(member.node_id for member in cluster.members) for cluster in clusters
            )
        return fragments

    def fragments_for(
        self,
        repository: SchemaRepository,
        tree_id: int,
        oracle: Optional[RepositoryDistanceOracle] = None,
    ) -> List[List[int]]:
        """The tree's fragments (sorted node-id lists), built on first use."""
        fragments = self._fragments.get(tree_id)
        if fragments is None:
            fragments = self._build_tree(repository, tree_id, oracle)
            self._fragments[tree_id] = fragments
            self._node_fragment[tree_id] = {
                node_id: index for index, members in enumerate(fragments) for node_id in members
            }
        return fragments

    def fragment_of(
        self,
        repository: SchemaRepository,
        tree_id: int,
        node_id: int,
        oracle: Optional[RepositoryDistanceOracle] = None,
    ) -> Optional[int]:
        """Fragment index of a node, ``None`` when reclustering dropped it."""
        self.fragments_for(repository, tree_id, oracle)
        return self._node_fragment[tree_id].get(node_id)

    def build_all(
        self, repository: SchemaRepository, oracle: Optional[RepositoryDistanceOracle] = None
    ) -> None:
        """Materialize every tree's fragments (service warm-up, snapshot write)."""
        for tree in repository.trees():
            self.fragments_for(repository, tree.tree_id, oracle)

    @property
    def built_tree_count(self) -> int:
        return len(self._fragments)

    # -- incremental maintenance --------------------------------------------

    def on_tree_added(
        self,
        repository: SchemaRepository,
        tree_id: int,
        oracle: Optional[RepositoryDistanceOracle] = None,
    ) -> None:
        """Fragment only the new tree (existing entries are untouched).

        The new entry is built eagerly only when the partition was fully
        materialized before the mutation, keeping serve-time latency flat; a
        partially built partition stays lazy.
        """
        self._fragments.pop(tree_id, None)
        self._node_fragment.pop(tree_id, None)
        if len(self._fragments) == repository.tree_count - 1:
            self.fragments_for(repository, tree_id, oracle)

    def on_tree_removed(self, removed_tree_id: int) -> None:
        """Drop the removed tree's entry and re-key entries behind it."""
        self._fragments = shift_tree_keys(self._fragments, removed_tree_id)
        self._node_fragment = shift_tree_keys(self._node_fragment, removed_tree_id)

    # -- (de)serialization ---------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-friendly form for repository snapshots."""
        return {
            "max_fragment_size": self.max_fragment_size,
            "reclustering": None if self.reclustering is None else self.reclustering.name,
            "fragments": {
                str(tree_id): [list(members) for members in fragments]
                for tree_id, fragments in sorted(self._fragments.items())
            },
        }

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, object],
        reclustering: Optional[ReclusteringStrategy] = None,
    ) -> "RepositoryPartition":
        """Rebuild a partition from :meth:`to_payload` output.

        A snapshot records only the *name* of the reclustering strategy (the
        strategy object holds thresholds that do not serialize generically);
        when the snapshot names one, the caller must supply an equivalent
        instance — loading without it would silently change how future
        incremental updates fragment new trees.
        """
        recorded = payload.get("reclustering")
        if recorded is not None and reclustering is None:
            raise ClusteringError(
                f"snapshot partition was built with reclustering strategy {recorded!r}; "
                "pass an equivalent strategy via partition_reclustering to load it"
            )
        partition = cls(
            max_fragment_size=int(payload["max_fragment_size"]),
            reclustering=reclustering,
        )
        for tree_key, fragments in payload.get("fragments", {}).items():
            tree_id = int(tree_key)
            entry = [sorted(int(node_id) for node_id in members) for members in fragments]
            partition._fragments[tree_id] = entry
            partition._node_fragment[tree_id] = {
                node_id: index for index, members in enumerate(entry) for node_id in members
            }
        return partition

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RepositoryPartition(max_fragment_size={self.max_fragment_size}, "
            f"built_trees={self.built_tree_count})"
        )


class PartitionClusterer(Clusterer):
    """Serve clusters from a precomputed :class:`RepositoryPartition`.

    Equivalent to :class:`~repro.clustering.baselines.FragmentClusterer` with
    the same fragment size (and no reclustering), but O(1) per mapping element
    at query time: the per-tree fragmentation runs once per repository
    mutation instead of once per query, which is exactly the state a snapshot
    persists.
    """

    name = "partition"

    def __init__(self, partition: RepositoryPartition) -> None:
        self.partition = partition

    def cluster(
        self,
        candidates: MappingElementSets,
        repository: SchemaRepository,
        oracle: Optional[RepositoryDistanceOracle] = None,
    ) -> ClusteringResult:
        started = time.perf_counter()
        counters = CounterSet()
        grouped: Dict[Tuple[int, int], set] = {}
        dropped = 0
        seen_trees = set()
        for element in candidates.iter_all_elements():
            ref = element.ref
            seen_trees.add(ref.tree_id)
            fragment = self.partition.fragment_of(repository, ref.tree_id, ref.node_id, oracle)
            if fragment is None:
                dropped += 1
                continue
            grouped.setdefault((ref.tree_id, fragment), set()).add(ref)

        clusters = clusters_from_groups(grouped)
        counters.set("iterations", 0)
        counters.set("clustered_items", sum(len(members) for members in grouped.values()))
        counters.set("partition_trees_touched", len(seen_trees))
        counters.set("unclustered_items", dropped)
        return ClusteringResult(
            clusters=clusters, counters=counters, elapsed_seconds=time.perf_counter() - started
        )

"""Versioned on-disk snapshots of a matching service's repository + derived state.

A snapshot is one JSON document holding everything a serving process needs:

* the repository forest itself (via :mod:`repro.schema.serialization`);
* every built name/trigram index — the unique keys, a per-node name-id array
  and the trigram blocking structures
  (:meth:`~repro.matchers.index.RepositoryNameIndex.from_serialized` restores
  the refs in one pass, without re-folding a single name);
* every built per-tree labeling distance oracle — Euler tour, depth sequence,
  first occurrences and the sparse-table levels, so the O(n log n) doubling
  construction is skipped on load;
* the precomputed repository partition (when the service uses the default
  partition clusterer);
* the service configuration (thresholds, matcher, variant), so
  :func:`load_snapshot` returns a ready :class:`~repro.service.MatchingService`.

Packed integer arrays
---------------------

The derived state is dominated by large flat integer sequences (Euler tours,
sparse-table rows, posting lists).  Parsing them as JSON arrays costs one
Python object per integer; instead they are stored as base64-encoded
little-endian ``int32`` buffers (:func:`_pack_ints`), which the C base64 and
``array`` machinery decode two orders of magnitude faster.  The document
remains a single self-describing JSON file.  On load the buffers are kept as
*live* ``array('i')`` objects wherever the consumer tolerates a sequence
(oracle tours, sparse-table rows): no per-integer Python object is ever
materialized for them.

The packing is injectable: :func:`service_to_snapshot_dict` and
:func:`snapshot_to_service` accept ``pack``/``unpack`` callables so the same
document structure can be serialized against a different carrier — the
shared-memory view (:mod:`repro.service.sharedmem`) stores the int32 regions
as raw offsets into one shared segment and keeps only the JSON-sized header
per worker.

Version policy
--------------

``format`` identifies the document family; ``version`` is a single integer.
Loaders reject any version they were not written for (derived state is pure
acceleration — a wrong guess would *silently* corrupt match results, so there
is no best-effort path).  Adding optional top-level keys is allowed within a
version; changing the meaning or layout of an existing key — including the
packed-array encoding — requires a bump.  The embedded tree/repository
payloads carry their own independent version
(:data:`repro.schema.serialization._FORMAT_VERSION`).

Not everything is serializable: custom matcher objects, custom clusterers and
reclustering strategies carry code.  Snapshots record what they can (a config
descriptor for the bundled matchers, the preset variant name, the reclustering
strategy *name*) and :func:`load_snapshot` insists the caller supply the
missing objects rather than silently substituting defaults.
"""

from __future__ import annotations

import base64
import json
from array import array
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.clustering.kmeans import Clusterer
from repro.clustering.reclustering import ReclusteringStrategy
from repro.errors import ConfigurationError, ReproError
from repro.labeling.distance import TreeDistanceOracle
from repro.mapping.base import MappingGenerator
from repro.matchers.base import ElementMatcher
from repro.matchers.index import RepositoryNameIndex
from repro.matchers.name import FuzzyNameMatcher, NGramNameMatcher, TokenNameMatcher
from repro.objective.base import ObjectiveFunction
from repro.schema.serialization import repository_from_dict, repository_to_dict
from repro.service.partition import PartitionClusterer, RepositoryPartition
from repro.service.service import MatchingService
from repro.utils.executor import TaskExecutor
from repro.utils.fileio import write_text_atomic

SNAPSHOT_FORMAT = "bellflower-service-snapshot"
SNAPSHOT_VERSION = 1


def _pack_ints(values) -> str:
    """Encode an int sequence as base64 little-endian int32 (see module docs).

    The byte layout is the storage subsystem's shared carrier
    (:func:`repro.storage.format.pack_int32`) — identical to a frozen-snapshot
    segment and the shared-memory region, base64-armored for JSON.
    """
    from repro.storage.format import pack_int32

    return base64.b64encode(pack_int32(values)).decode("ascii")


def _unpack_ints(text: str) -> array:
    """Decode a packed buffer into a *live* ``array('i')`` (no int objects)."""
    from repro.storage.format import unpack_int32

    return unpack_int32(base64.b64decode(text))


def _pack_oracle(payload: Dict[str, Any], pack=_pack_ints) -> Dict[str, Any]:
    """Pack a :meth:`TreeDistanceOracle.to_payload` dict for the snapshot.

    Sparse-table level 0 is always ``range(size)`` and every deeper level's
    width is ``size - 2**level + 1``, so the levels from 1 up are stored as
    one flat buffer and re-sliced on load.
    """
    return {
        "euler_nodes": pack(payload["euler_nodes"]),
        "euler_depths": pack(payload["euler_depths"]),
        "first_occurrence": pack(payload["first_occurrence"]),
        "rmq": pack(
            [index for level in payload["rmq_levels"][1:] for index in level]
        ),
    }


def _unpack_oracle(packed: Dict[str, Any], unpack=_unpack_ints) -> Dict[str, Any]:
    euler_depths = unpack(packed["euler_depths"])
    size = len(euler_depths)
    # Level 0 of the sparse table is the identity; ``range`` is a live O(1)
    # sequence, so no length-``size`` list is ever built for it.
    levels: List[Any] = [range(size)]
    flat = unpack(packed["rmq"])
    position = 0
    level = 1
    while (1 << level) <= size:
        width = size - (1 << level) + 1
        levels.append(flat[position : position + width])
        position += width
        level += 1
    return {
        "euler_nodes": unpack(packed["euler_nodes"]),
        "euler_depths": euler_depths,
        "first_occurrence": unpack(packed["first_occurrence"]),
        "rmq_levels": levels,
    }


def _pack_partition(payload: Dict[str, Any], pack=_pack_ints) -> Dict[str, Any]:
    """Pack a :meth:`RepositoryPartition.to_payload` dict (flat members + sizes)."""
    return {
        "max_fragment_size": payload["max_fragment_size"],
        "reclustering": payload["reclustering"],
        "fragments": {
            tree_key: {
                "sizes": pack([len(members) for members in fragments]),
                "members": pack(
                    [node_id for members in fragments for node_id in members]
                ),
            }
            for tree_key, fragments in payload["fragments"].items()
        },
    }


def _unpack_partition(packed: Dict[str, Any], unpack=_unpack_ints) -> Dict[str, Any]:
    fragments: Dict[str, List[Any]] = {}
    for tree_key, entry in packed.get("fragments", {}).items():
        sizes = unpack(entry["sizes"])
        flat = unpack(entry["members"])
        members: List[Any] = []
        position = 0
        for size in sizes:
            members.append(flat[position : position + size])
            position += size
        fragments[tree_key] = members
    return {
        "max_fragment_size": packed["max_fragment_size"],
        "reclustering": packed.get("reclustering"),
        "fragments": fragments,
    }


def _matcher_config(matcher: ElementMatcher) -> Optional[Dict[str, Any]]:
    """A reconstructible descriptor of a bundled matcher, else ``None``."""
    if type(matcher) is FuzzyNameMatcher:
        return {"type": "fuzzy-name", "case_sensitive": matcher.case_sensitive}
    if type(matcher) is NGramNameMatcher:
        return {
            "type": "ngram-name",
            "size": matcher.size,
            "case_sensitive": matcher.case_sensitive,
        }
    if type(matcher) is TokenNameMatcher and matcher.synonyms is None:
        return {
            "type": "token-name",
            "expand": matcher.expand,
            "coverage_weight": matcher.coverage_weight,
        }
    return None


def _matcher_from_config(config: Optional[Dict[str, Any]]) -> ElementMatcher:
    if config is None:
        raise ReproError(
            "snapshot does not describe its matcher (a custom matcher was used); "
            "pass matcher= to load_snapshot"
        )
    kind = config.get("type")
    if kind == "fuzzy-name":
        return FuzzyNameMatcher(case_sensitive=bool(config.get("case_sensitive", False)))
    if kind == "ngram-name":
        return NGramNameMatcher(
            size=int(config.get("size", 3)),
            case_sensitive=bool(config.get("case_sensitive", False)),
        )
    if kind == "token-name":
        return TokenNameMatcher(
            expand=bool(config.get("expand", True)),
            coverage_weight=float(config.get("coverage_weight", 0.5)),
        )
    raise ReproError(f"snapshot names an unknown matcher type {kind!r}")


def service_to_snapshot_dict(
    service: MatchingService, build: bool = True, pack=_pack_ints
) -> Dict[str, Any]:
    """Serialize a service into the snapshot document.

    With ``build`` (the default) all derived state is materialized first, so
    the snapshot is *complete* — a loader never rebuilds anything.  Without
    it, only state that happens to be built is persisted (useful for tests).
    ``pack`` converts each flat int sequence into its wire form (base64 text
    by default; the shared-memory view substitutes buffer descriptors).
    """
    if build:
        service.build_derived_state()
    repository = service.repository
    name_indexes = []
    for index in repository.cached_name_indexes().values():
        blocking = index.blocking_payload()
        entry: Dict[str, Any] = {
            "case_sensitive": index.case_sensitive,
            "keys": list(index.keys),
            "node_name_ids": pack(index.node_name_ids()),
            "blocking": None,
        }
        if blocking is not None:
            postings = blocking["postings"]
            grams = sorted(postings)
            entry["blocking"] = {
                "gram_counts": pack(blocking["gram_counts"]),
                "grams": grams,
                "posting_sizes": pack([len(postings[gram]) for gram in grams]),
                "posting_values": pack(
                    [name_id for gram in grams for name_id in postings[gram]]
                ),
            }
        name_indexes.append(entry)
    oracle = service.oracle
    oracles = {
        str(tree_id): _pack_oracle(oracle.oracle(tree_id).to_payload(), pack)
        for tree_id in oracle.built_tree_ids()
    }
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "repository": repository_to_dict(repository),
        "config": {
            "element_threshold": service.element_threshold,
            "delta": service.delta,
            "variant": service.variant_name,
            "matcher": _matcher_config(service.matcher),
            "use_batch_matching": service.system.use_batch_matching,
            "query_cache_size": service.query_cache_size,
        },
        "name_indexes": name_indexes,
        "oracles": oracles,
        "partition": (
            None
            if service.partition is None
            else _pack_partition(service.partition.to_payload(), pack)
        ),
    }


def write_snapshot(service: MatchingService, path: str | Path, build: bool = True) -> Dict[str, Any]:
    """Write a service snapshot to ``path`` and return the document.

    The write is atomic (temp file + rename in the target directory), so a
    crash mid-write can never truncate an existing good snapshot — serving
    processes keep a loadable file at all times.
    """
    payload = service_to_snapshot_dict(service, build=build)
    write_text_atomic(Path(path), json.dumps(payload))
    return payload


def snapshot_to_service(
    payload: Dict[str, Any],
    *,
    matcher: Optional[ElementMatcher] = None,
    objective: Optional[ObjectiveFunction] = None,
    generator: Optional[MappingGenerator] = None,
    clusterer: Optional[Clusterer] = None,
    executor: Optional[TaskExecutor] = None,
    partition_reclustering: Optional[ReclusteringStrategy] = None,
    query_cache_size: Optional[int] = None,
    unpack=_unpack_ints,
) -> MatchingService:
    """Reconstruct a :class:`MatchingService` from a snapshot document.

    Keyword overrides replace the corresponding snapshot configuration; they
    are *required* where the snapshot records that a non-serializable object
    was in play (custom matcher or clusterer, partition reclustering).
    ``unpack`` must invert the ``pack`` the document was written with.
    """
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ReproError(f"not a service snapshot (format={payload.get('format')!r})")
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ReproError(
            f"unsupported snapshot version {payload.get('version')!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    repository = repository_from_dict(payload["repository"])
    config = payload.get("config", {})
    if matcher is None:
        matcher = _matcher_from_config(config.get("matcher"))

    variant = config.get("variant")
    kwargs: Dict[str, Any] = {}
    if clusterer is not None:
        kwargs["clusterer"] = clusterer
    elif variant == PartitionClusterer.name:
        partition_payload = payload.get("partition")
        if partition_payload is not None:
            # The constructor adopts the clusterer's partition, so mutations
            # on the loaded service keep maintaining the loaded fragments.
            kwargs["clusterer"] = PartitionClusterer(
                RepositoryPartition.from_payload(
                    _unpack_partition(partition_payload, unpack),
                    reclustering=partition_reclustering,
                )
            )
    elif variant is not None:
        kwargs["variant"] = variant
    else:
        raise ConfigurationError(
            "snapshot was written with a custom clusterer; pass clusterer= to load_snapshot"
        )

    service = MatchingService(
        repository,
        matcher=matcher,
        objective=objective,
        generator=generator,
        element_threshold=float(config.get("element_threshold", 0.6)),
        delta=float(config.get("delta", 0.75)),
        use_batch_matching=config.get("use_batch_matching"),
        executor=executor,
        query_cache_size=(
            int(config.get("query_cache_size", 64))
            if query_cache_size is None
            else query_cache_size
        ),
        **kwargs,
    )
    for entry in payload.get("name_indexes", []):
        index = RepositoryNameIndex.from_serialized(
            repository,
            case_sensitive=bool(entry["case_sensitive"]),
            keys=list(entry["keys"]),
            node_name_ids=unpack(entry["node_name_ids"]),
        )
        blocking = entry.get("blocking")
        if blocking is not None:
            sizes = unpack(blocking["posting_sizes"])
            flat = unpack(blocking["posting_values"])
            postings: Dict[str, List[int]] = {}
            position = 0
            for gram, size in zip(blocking["grams"], sizes):
                postings[gram] = flat[position : position + size]
                position += size
            index.install_blocking(unpack(blocking["gram_counts"]), postings)
        repository.install_name_index(index)
    for tree_key, oracle_payload in payload.get("oracles", {}).items():
        tree_id = int(tree_key)
        service.oracle.install(
            tree_id,
            TreeDistanceOracle.from_payload(
                repository.tree(tree_id), _unpack_oracle(oracle_payload, unpack)
            ),
        )
    return service


def load_snapshot(path: str | Path, **overrides: Any) -> MatchingService:
    """Load a service from a snapshot file — JSON or frozen, same call.

    The carrier is sniffed from the file's magic bytes: frozen snapshots
    (:mod:`repro.storage`) dispatch to the mmap-backed O(header) loader,
    anything else takes the JSON parse path.  The keyword overrides are
    identical either way.
    """
    try:
        with open(path, "rb") as stream:
            prefix = stream.read(8)
    except OSError as exc:
        raise ReproError(f"cannot read snapshot {path}: {exc}") from exc
    from repro.storage.format import is_frozen_prefix

    if is_frozen_prefix(prefix):
        from repro.storage.frozen import load_frozen_service

        return load_frozen_service(path, **overrides)
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(f"cannot read snapshot {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"snapshot {path} is not valid JSON: {exc}") from exc
    return snapshot_to_service(payload, **overrides)

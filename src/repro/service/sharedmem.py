"""Shared-memory repository views for process-pool workers.

The process executor's historical cost was the payload: every per-cluster (or
per-shard) task pickled the repository and distance-oracle tables into the
worker, where they were rebuilt into Python objects — for a large repository
that copy dwarfed the search it was shipped to run.  This module publishes a
service's repository and derived state **once** into a
:mod:`multiprocessing.shared_memory` segment; workers *attach* to the segment
(a page-table mapping, not a copy) and rebuild live views lazily, caching the
heavy parts per segment so every subsequent task in the same worker reuses
them.

Segment layout
--------------
::

    [8 bytes little-endian header length][JSON header][raw int32 data region]

The header is exactly the snapshot document of
:func:`repro.service.snapshot.service_to_snapshot_dict`, serialized with a
``pack`` codec that appends each flat int sequence to the raw data region and
leaves a ``{"__shm__": [offset, count]}`` descriptor in its place.  Attaching
inverts the codec: each descriptor becomes a live ``array('i')`` copied out of
the mapped region (the dominant cost — base64 decode — is gone, and the JSON
header is small because every bulk sequence lives in the raw region).

Attach vs. copy
---------------
Publishing is *opt-in* (:meth:`MatchingService.share_memory
<repro.service.service.MatchingService.share_memory>`).  While a service has
a live, version-matched view, pickling redirects:

* pickling its :class:`~repro.labeling.distance.RepositoryDistanceOracle`
  (what every per-cluster :class:`~repro.mapping.model.MappingProblem`
  carries) yields ``_attach_repository_oracle(segment_name)`` — the worker
  gets the prototype's fully built oracle over the shared repository;
* pickling the whole service (what every shard fan-out task carries) yields
  ``_attach_shared_service(segment_name)`` — the worker builds a *fresh*
  service wrapper (fresh matcher memos, fresh counters, fresh query cache —
  exactly the state a conventionally unpickled copy would have, keeping the
  per-chunk counters deterministic) around the cached heavy parts.

Without a view — or when the repository has mutated since ``share_memory()``
— pickling falls back to the plain copy path unchanged.  Mutations through
the service (:meth:`add_tree`/:meth:`remove_tree`) unpublish eagerly; the
server's read/write lock keeps mutations out of in-flight query windows.

Lifecycle
---------
The publishing process owns the segment: ``close()`` unmaps and unlinks it,
and an ``atexit`` hook unlinks anything still published at interpreter exit.
Pool workers attach read-only through the tracker they inherit from the
publisher's process tree, so their attachments deduplicate against the
publisher's own registration and a crashed worker never destroys the segment.
An *unrelated* attaching process (its own tracker) additionally deregisters
its attachment — on this Python version the tracker would otherwise unlink
the publisher's segment when that process exits.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing
import struct
import threading
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError, ReproError

_HEADER_STRUCT = struct.Struct("<Q")

#: Key of a packed-buffer descriptor inside the shared-segment header.
_DESCRIPTOR_KEY = "__shm__"


class _BufferPacker:
    """``pack`` codec: append int32 bytes to one region, emit descriptors.

    The wire encoding is the storage subsystem's shared little-endian int32
    carrier (:func:`repro.storage.format.pack_int32`) — the same bytes a
    frozen-snapshot segment holds, so the shared-memory region and the on-disk
    format can never drift apart.
    """

    def __init__(self) -> None:
        self._chunks: list = []
        self._offset = 0

    def __call__(self, values) -> Dict[str, Any]:
        from repro.storage.format import pack_int32

        raw = pack_int32(values)
        descriptor = {_DESCRIPTOR_KEY: [self._offset, len(raw) // 4]}
        self._chunks.append(raw)
        self._offset += len(raw)
        return descriptor

    def data(self) -> bytes:
        return b"".join(self._chunks)


class _BufferUnpacker:
    """``unpack`` codec: resolve descriptors against the mapped data region."""

    def __init__(self, view: memoryview) -> None:
        self._view = view

    def __call__(self, descriptor: Dict[str, Any]) -> array:
        from repro.storage.format import unpack_int32

        offset, count = descriptor[_DESCRIPTOR_KEY]
        return unpack_int32(self._view[offset : offset + 4 * count])


#: Segments created by this process, for the atexit sweep.
_PUBLISHED: Dict[str, shared_memory.SharedMemory] = {}
_PUBLISHED_LOCK = threading.Lock()


def _cleanup_published() -> None:  # pragma: no cover - interpreter teardown
    with _PUBLISHED_LOCK:
        segments = list(_PUBLISHED.values())
        _PUBLISHED.clear()
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass


atexit.register(_cleanup_published)


def _objective_config(objective) -> Optional[Dict[str, Any]]:
    """Reconstructible descriptor of a bundled objective, else ``None``.

    Exact type checks: a subclass may override scoring, so it must refuse.
    """
    from repro.objective.bellflower import (
        BellflowerObjective,
        NameOnlyObjective,
        PathOnlyObjective,
    )

    if type(objective) is BellflowerObjective:
        return {
            "type": "bellflower",
            "alpha": objective.alpha,
            "path_normalization": objective.path_normalization,
        }
    if type(objective) is NameOnlyObjective:
        return {"type": "name-only"}
    if type(objective) is PathOnlyObjective:
        return {"type": "path-only", "path_normalization": objective.path_normalization}
    return None


def _objective_from_config(config: Dict[str, Any]):
    from repro.objective.bellflower import (
        BellflowerObjective,
        NameOnlyObjective,
        PathOnlyObjective,
    )

    kind = config.get("type")
    if kind == "bellflower":
        return BellflowerObjective(
            alpha=float(config["alpha"]),
            path_normalization=float(config["path_normalization"]),
        )
    if kind == "name-only":
        return NameOnlyObjective()
    if kind == "path-only":
        return PathOnlyObjective(path_normalization=float(config["path_normalization"]))
    raise ReproError(f"shared segment names an unknown objective type {kind!r}")


def _generator_config(generator) -> Optional[Dict[str, Any]]:
    """Reconstructible descriptor of a bundled mapping generator, else ``None``."""
    from repro.mapping.astar import AStarGenerator
    from repro.mapping.beam import BeamSearchGenerator
    from repro.mapping.branch_and_bound import BranchAndBoundGenerator
    from repro.mapping.exhaustive import ExhaustiveGenerator

    if type(generator) is BranchAndBoundGenerator:
        return {"type": "branch-and-bound", "use_bounding": generator.use_bounding}
    if type(generator) is AStarGenerator:
        return {"type": "astar", "max_expansions": generator.max_expansions}
    if type(generator) is BeamSearchGenerator:
        return {"type": "beam", "beam_width": generator.beam_width}
    if type(generator) is ExhaustiveGenerator:
        return {"type": "exhaustive"}
    return None


def _generator_from_config(config: Dict[str, Any]):
    from repro.mapping.astar import AStarGenerator
    from repro.mapping.beam import BeamSearchGenerator
    from repro.mapping.branch_and_bound import BranchAndBoundGenerator
    from repro.mapping.exhaustive import ExhaustiveGenerator

    kind = config.get("type")
    if kind == "branch-and-bound":
        return BranchAndBoundGenerator(use_bounding=bool(config["use_bounding"]))
    if kind == "astar":
        budget = config.get("max_expansions")
        return AStarGenerator(max_expansions=None if budget is None else int(budget))
    if kind == "beam":
        return BeamSearchGenerator(beam_width=int(config["beam_width"]))
    if kind == "exhaustive":
        return ExhaustiveGenerator()
    raise ReproError(f"shared segment names an unknown generator type {kind!r}")


class SharedMemoryRepositoryView:
    """A published repository + derived state, owned by the serving process."""

    def __init__(
        self, segment: shared_memory.SharedMemory, repository_version: int
    ) -> None:
        self._segment = segment
        self.name = segment.name
        self.repository_version = repository_version
        self.stale = False

    @classmethod
    def publish(cls, service) -> "SharedMemoryRepositoryView":
        """Serialize ``service`` into a fresh shared-memory segment.

        Refuses configurations whose behaviour a descriptor cannot carry
        (custom matchers, clusterers, objectives or generators): silently
        substituting defaults in the workers would change results.
        """
        from repro.service.snapshot import _matcher_config, service_to_snapshot_dict

        if _matcher_config(service.matcher) is None:
            raise ConfigurationError(
                "share_memory() requires a bundled matcher "
                "(custom matcher objects cannot be reconstructed by workers)"
            )
        if service.variant_name is None:
            raise ConfigurationError(
                "share_memory() requires a named clustering variant or the "
                "default partition clusterer (custom clusterers cannot be "
                "reconstructed by workers)"
            )
        objective_config = _objective_config(service.system.objective)
        if objective_config is None:
            raise ConfigurationError(
                "share_memory() requires a bundled objective function "
                "(custom objectives cannot be reconstructed by workers)"
            )
        generator_config = _generator_config(service.system.generator)
        if generator_config is None:
            raise ConfigurationError(
                "share_memory() requires a bundled mapping generator "
                "(custom generators cannot be reconstructed by workers)"
            )

        packer = _BufferPacker()
        payload = service_to_snapshot_dict(service, build=True, pack=packer)
        payload["shared"] = {
            "objective": objective_config,
            "generator": generator_config,
        }
        header = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        data = packer.data()
        total = _HEADER_STRUCT.size + len(header) + len(data)
        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
        try:
            segment.buf[: _HEADER_STRUCT.size] = _HEADER_STRUCT.pack(len(header))
            start = _HEADER_STRUCT.size
            segment.buf[start : start + len(header)] = header
            start += len(header)
            segment.buf[start : start + len(data)] = data
        except Exception:
            segment.close()
            segment.unlink()
            raise
        with _PUBLISHED_LOCK:
            _PUBLISHED[segment.name] = segment
        return cls(segment, getattr(service.repository, "version", 0))

    @property
    def size_bytes(self) -> int:
        return self._segment.size

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self.stale:
            return
        self.stale = True
        with _PUBLISHED_LOCK:
            _PUBLISHED.pop(self.name, None)
        try:
            self._segment.close()
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedMemoryRepositoryView(name={self.name!r}, "
            f"size={self.size_bytes}, stale={self.stale})"
        )


class _AttachedSegment:
    """Worker-side cache of the heavy parts rebuilt from one segment."""

    __slots__ = ("prototype", "shared_config")

    def __init__(self, prototype, shared_config: Dict[str, Any]) -> None:
        self.prototype = prototype
        self.shared_config = shared_config


_ATTACHED: Dict[str, _AttachedSegment] = {}
_ATTACH_LOCK = threading.Lock()

#: Whether this process shares its resource tracker with a parent process
#: (decided once, *before* our first attach spawns a tracker of our own).
_TRACKER_INHERITED: Optional[bool] = None


def _tracker_is_inherited() -> bool:
    """True when this process inherited a running resource tracker.

    Fork children started after the tracker exists — and spawn children, which
    receive the tracker fd during bootstrap — share the publisher tree's
    tracker, where the segment registration is deduplicated against (and owned
    by) the publisher's own entry.  A process whose tracker only starts with
    our first attach owns that tracker outright.  Must be called before the
    first ``SharedMemory`` attach, which is why the result is cached.
    """
    global _TRACKER_INHERITED
    if _TRACKER_INHERITED is None:
        tracker_fd = getattr(resource_tracker._resource_tracker, "_fd", None)  # type: ignore[attr-defined]
        _TRACKER_INHERITED = (
            multiprocessing.parent_process() is not None and tracker_fd is not None
        )
    return _TRACKER_INHERITED


def _load_segment(name: str) -> _AttachedSegment:
    """Attach to a segment and rebuild its prototype service (cached)."""
    with _ATTACH_LOCK:
        cached = _ATTACHED.get(name)
        if cached is not None:
            return cached
        from repro.service.snapshot import snapshot_to_service

        shared_tracker = _tracker_is_inherited()  # must precede the attach
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError as exc:
            raise ReproError(
                f"shared repository segment {name!r} is gone (unpublished or "
                "the owning service exited); re-run the query"
            ) from exc
        with _PUBLISHED_LOCK:
            is_owner = name in _PUBLISHED
        if not is_owner and not shared_tracker:
            try:
                # On this Python version attaching registers the segment with
                # our own resource tracker, which would unlink the publisher's
                # segment when this process exits; deregister the attachment.
                # Processes sharing the publisher tree's tracker must NOT do
                # this — there the registration deduplicated against the
                # publisher's own entry, which close()/unlink() removes.
                resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - tracker internals vary
                pass
        try:
            (header_length,) = _HEADER_STRUCT.unpack_from(segment.buf, 0)
            start = _HEADER_STRUCT.size
            header = bytes(segment.buf[start : start + header_length])
            payload = json.loads(header.decode("utf-8"))
            data_view = segment.buf[start + header_length :]
            unpacker = _BufferUnpacker(data_view)
            shared_config = payload.get("shared", {})
            prototype = snapshot_to_service(
                payload,
                objective=_objective_from_config(shared_config["objective"]),
                generator=_generator_from_config(shared_config["generator"]),
                unpack=unpacker,
            )
        finally:
            # Every descriptor was copied into a private array('i'); release
            # the exported memoryview so the segment can be closed.  The
            # mapping itself stays open for the worker's lifetime (the cache
            # entry keeps the rebuilt state, not the raw pages).
            try:
                data_view.release()
            except UnboundLocalError:  # pragma: no cover - header parse failed
                pass
            segment.close()
        attached = _AttachedSegment(prototype, shared_config)
        _ATTACHED[name] = attached
        return attached


def _fresh_service(attached: _AttachedSegment):
    """A fresh service wrapper over the cached heavy parts.

    Mirrors what a conventional unpickle hands a worker: the shared
    repository (with its installed name indexes), the prototype's fully built
    distance oracle and partition — all read-only during queries — wrapped in
    a brand-new :class:`MatchingService` with empty matcher memos, counters
    and query cache, so per-chunk counter semantics are identical to the
    copy path.
    """
    from repro.service.partition import PartitionClusterer
    from repro.service.service import MatchingService
    from repro.service.snapshot import _matcher_config, _matcher_from_config

    prototype = attached.prototype
    kwargs: Dict[str, Any] = {}
    if prototype.partition is not None:
        kwargs["clusterer"] = PartitionClusterer(prototype.partition)
    else:
        kwargs["variant"] = prototype.variant_name
    service = MatchingService(
        prototype.repository,
        matcher=_matcher_from_config(_matcher_config(prototype.matcher)),
        objective=_objective_from_config(attached.shared_config["objective"]),
        generator=_generator_from_config(attached.shared_config["generator"]),
        element_threshold=prototype.element_threshold,
        delta=prototype.delta,
        use_batch_matching=prototype.system.use_batch_matching,
        executor=None,
        query_cache_size=prototype.query_cache_size,
        **kwargs,
    )
    for tree_id in prototype.oracle.built_tree_ids():
        service.oracle.install(tree_id, prototype.oracle.oracle(tree_id))
    return service


def _attach_repository_oracle(name: str):
    """Pickle target for a redirected :class:`RepositoryDistanceOracle`."""
    return _load_segment(name).prototype.oracle


def _attach_shared_service(name: str):
    """Pickle target for a redirected :class:`MatchingService`."""
    return _fresh_service(_load_segment(name))


def attached_segment_names() -> list:
    """Names of segments this process has attached to (tests/diagnostics)."""
    with _ATTACH_LOCK:
        return sorted(_ATTACHED)

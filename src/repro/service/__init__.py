"""Service layer: snapshots, incremental updates, concurrent query execution.

The experiment harness treats every matching run as a throwaway process; this
package treats the repository as a long-lived, versioned asset.

* :class:`MatchingService` — the facade: query caching, incremental
  ``add_tree``/``remove_tree``, pluggable concurrency.
* :mod:`repro.service.snapshot` — one-file persistence of the repository and
  all derived state (indexes, oracles, partition).
* :class:`RepositoryPartition` / :class:`PartitionClusterer` — the
  precomputable, snapshot-friendly clustering configuration.
* :func:`schema_fingerprint` — the query-cache key.

Executors live in :mod:`repro.utils.executor` (the system layer depends on
them too); they are re-exported here for convenience.
"""

from repro.service.fingerprint import schema_fingerprint
from repro.service.partition import PartitionClusterer, RepositoryPartition
from repro.service.service import MatchingService
from repro.service.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    load_snapshot,
    service_to_snapshot_dict,
    snapshot_to_service,
    write_snapshot,
)
from repro.utils.executor import (
    ProcessPoolTaskExecutor,
    SerialExecutor,
    TaskExecutor,
    ThreadPoolTaskExecutor,
)

__all__ = [
    "MatchingService",
    "PartitionClusterer",
    "ProcessPoolTaskExecutor",
    "RepositoryPartition",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SerialExecutor",
    "TaskExecutor",
    "ThreadPoolTaskExecutor",
    "load_snapshot",
    "schema_fingerprint",
    "service_to_snapshot_dict",
    "snapshot_to_service",
    "write_snapshot",
]

"""A small bundled corpus of DTD and XSD documents.

The corpus exercises the real ingestion path (DTD and XSD parsing) end to end
and gives the examples something concrete to match against without generating
a synthetic repository.  The documents are hand-written but modelled on the
kinds of schemas the paper's web crawl found: bibliographic data, commerce,
contact directories.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.schema.dtd_parser import parse_dtd
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree
from repro.schema.xsd_parser import parse_xsd

_LIBRARY_DTD = """
<!-- A small lending-library schema. -->
<!ELEMENT library (book+, member*, address?)>
<!ELEMENT book (title, data, price?)>
<!ELEMENT data (authorName, shelf)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT authorName (#PCDATA)>
<!ELEMENT shelf (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT member (name, address, email?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT address (street, city, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ATTLIST book isbn CDATA #REQUIRED>
<!ATTLIST member id ID #REQUIRED>
"""

_BOOKSTORE_DTD = """
<!ELEMENT bookstore (bookEntry*, owner)>
<!ELEMENT bookEntry (heading, writer, cost, category?)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT writer (fname, lname)>
<!ELEMENT fname (#PCDATA)>
<!ELEMENT lname (#PCDATA)>
<!ELEMENT cost (#PCDATA)>
<!ELEMENT category (#PCDATA)>
<!ELEMENT owner (fullName, location, mail, tel)>
<!ELEMENT fullName (#PCDATA)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT mail (#PCDATA)>
<!ELEMENT tel (#PCDATA)>
"""

_DIRECTORY_DTD = """
<!ELEMENT directory (person+)>
<!ELEMENT person (name, addr, eMail?, telephone*, employer?)>
<!ELEMENT name (givenName, familyName)>
<!ELEMENT givenName (#PCDATA)>
<!ELEMENT familyName (#PCDATA)>
<!ELEMENT addr (street, town, postcode, country)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT town (#PCDATA)>
<!ELEMENT postcode (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT eMail (#PCDATA)>
<!ELEMENT telephone (#PCDATA)>
<!ELEMENT employer (companyName, department?)>
<!ELEMENT companyName (#PCDATA)>
<!ELEMENT department (#PCDATA)>
"""

_ORDER_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="purchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="customer">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="custName" type="xs:string"/>
              <xs:element name="shipAddress" type="xs:string"/>
              <xs:element name="emailAddress" type="xs:string" minOccurs="0"/>
            </xs:sequence>
            <xs:attribute name="customerId" type="xs:ID"/>
          </xs:complexType>
        </xs:element>
        <xs:element name="orderLine" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="product" type="xs:string"/>
              <xs:element name="quantity" type="xs:int"/>
              <xs:element name="unitPrice" type="xs:decimal"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="orderDate" type="xs:date"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""

_JOURNAL_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="journal">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="issue" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="article" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="title" type="xs:string"/>
                    <xs:element name="creator" type="xs:string" maxOccurs="unbounded"/>
                    <xs:element name="abstract" type="xs:string" minOccurs="0"/>
                    <xs:element name="pages" type="xs:string"/>
                  </xs:sequence>
                  <xs:attribute name="doi" type="xs:anyURI"/>
                </xs:complexType>
              </xs:element>
              <xs:element name="publicationYear" type="xs:int"/>
            </xs:sequence>
            <xs:attribute name="number" type="xs:int"/>
          </xs:complexType>
        </xs:element>
        <xs:element name="publisherName" type="xs:string"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""

_STAFF_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="staffList">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="employee" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="empName" type="xs:string"/>
              <xs:element name="homeAddress" type="xs:string"/>
              <xs:element name="workEmail" type="xs:string"/>
              <xs:element name="salary" type="xs:decimal"/>
              <xs:element name="hireDate" type="xs:date"/>
            </xs:sequence>
            <xs:attribute name="badge" type="xs:ID"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""


def bundled_corpus_documents() -> Dict[str, Tuple[str, str]]:
    """The bundled documents as ``name -> (format, text)`` (format is ``dtd`` or ``xsd``)."""
    return {
        "library": ("dtd", _LIBRARY_DTD),
        "bookstore": ("dtd", _BOOKSTORE_DTD),
        "directory": ("dtd", _DIRECTORY_DTD),
        "purchase-order": ("xsd", _ORDER_XSD),
        "journal": ("xsd", _JOURNAL_XSD),
        "staff": ("xsd", _STAFF_XSD),
    }


def load_bundled_corpus(name: str = "bundled-corpus") -> SchemaRepository:
    """Parse every bundled document into one :class:`SchemaRepository`."""
    repository = SchemaRepository(name=name)
    for document_name, (format_name, text) in bundled_corpus_documents().items():
        trees: List[SchemaTree]
        if format_name == "dtd":
            trees = parse_dtd(text, schema_name=document_name)
        else:
            trees = parse_xsd(text, schema_name=document_name)
        repository.add_trees(trees)
    return repository

"""Synthetic schema-repository generator.

Generates a forest of schema trees whose statistical shape mirrors the paper's
web-harvested repository: many small-to-medium trees (tens to a few hundred
nodes), moderate depth, fan-out skewed towards small values, recurring domain
vocabularies with naming noise, and localized "contact blocks" that give the
experiment's personal schema concentrated regions of mapping elements.

Generation is fully deterministic for a given :class:`RepositoryProfile` (seed
included), so benchmark runs across clustering variants see byte-identical
input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.schema.node import DataType, NodeKind, SchemaNode
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree
from repro.utils.rng import SeededRandom
from repro.workload.vocabulary import CONTACT_BLOCK, DOMAINS, Domain, NamePerturber

_LEAF_DATATYPES = (
    DataType.STRING,
    DataType.STRING,
    DataType.STRING,
    DataType.INTEGER,
    DataType.DECIMAL,
    DataType.DATE,
    DataType.BOOLEAN,
)


@dataclass(frozen=True)
class RepositoryProfile:
    """Parameters controlling the shape of a generated repository.

    The defaults target the paper's main experiment: roughly 9 750 nodes spread
    over ~260 trees of 20–80 nodes each.
    """

    target_node_count: int = 9750
    min_tree_size: int = 12
    max_tree_size: int = 90
    max_depth: int = 7
    max_fanout: int = 8
    fanout_geometric_p: float = 0.35
    attribute_probability: float = 0.12
    perturbation_strength: float = 1.0
    domains: Sequence[Domain] = field(default_factory=lambda: tuple(DOMAINS))
    seed: int = 20060403  # ICDE 2006 started on 3 April 2006.
    name: str = "synthetic-repository"

    def __post_init__(self) -> None:
        if self.target_node_count < 1:
            raise WorkloadError("target_node_count must be positive")
        if not 1 <= self.min_tree_size <= self.max_tree_size:
            raise WorkloadError(
                f"invalid tree size range [{self.min_tree_size}, {self.max_tree_size}]"
            )
        if self.max_depth < 1:
            raise WorkloadError("max_depth must be at least 1")
        if self.max_fanout < 1:
            raise WorkloadError("max_fanout must be at least 1")
        if not 0.0 < self.fanout_geometric_p <= 1.0:
            raise WorkloadError("fanout_geometric_p must be in (0, 1]")
        if not 0.0 <= self.attribute_probability <= 1.0:
            raise WorkloadError("attribute_probability must be in [0, 1]")
        if self.perturbation_strength < 0.0:
            raise WorkloadError("perturbation_strength must be non-negative")
        if not self.domains:
            raise WorkloadError("at least one domain is required")

    def scaled(self, target_node_count: int, name: Optional[str] = None) -> "RepositoryProfile":
        """A copy of this profile with a different target size (same seed and shape)."""
        return RepositoryProfile(
            target_node_count=target_node_count,
            min_tree_size=self.min_tree_size,
            max_tree_size=self.max_tree_size,
            max_depth=self.max_depth,
            max_fanout=self.max_fanout,
            fanout_geometric_p=self.fanout_geometric_p,
            attribute_probability=self.attribute_probability,
            perturbation_strength=self.perturbation_strength,
            domains=self.domains,
            seed=self.seed,
            name=name or f"{self.name}-{target_node_count}",
        )


class RepositoryGenerator:
    """Builds a :class:`SchemaRepository` from a :class:`RepositoryProfile`."""

    def __init__(self, profile: Optional[RepositoryProfile] = None) -> None:
        self.profile = profile or RepositoryProfile()

    def generate(self) -> SchemaRepository:
        """Generate the repository (deterministic for a fixed profile)."""
        profile = self.profile
        rng = SeededRandom(profile.seed)
        strength = profile.perturbation_strength
        perturber = NamePerturber(
            rng.spawn("perturber"),
            abbreviation_probability=min(1.0, 0.15 * strength),
            synonym_probability=min(1.0, 0.15 * strength),
            style_probability=min(1.0, 0.2 * strength),
            suffix_probability=min(1.0, 0.08 * strength),
            typo_probability=min(1.0, 0.03 * strength),
        )

        repository = SchemaRepository(name=profile.name)
        generated_nodes = 0
        tree_index = 0
        while generated_nodes < profile.target_node_count:
            domain = rng.choice(list(profile.domains))
            remaining = profile.target_node_count - generated_nodes
            size_cap = min(profile.max_tree_size, max(profile.min_tree_size, remaining))
            target_size = rng.randint(profile.min_tree_size, size_cap)
            tree = self._generate_tree(
                tree_index=tree_index,
                domain=domain,
                target_size=target_size,
                rng=rng.spawn("tree", tree_index),
                perturber=perturber,
            )
            repository.add_tree(tree)
            generated_nodes += tree.node_count
            tree_index += 1
        return repository

    # -- tree construction -------------------------------------------------------

    def _generate_tree(
        self,
        tree_index: int,
        domain: Domain,
        target_size: int,
        rng: SeededRandom,
        perturber: NamePerturber,
    ) -> SchemaTree:
        profile = self.profile
        root_name = perturber.perturb(rng.choice(list(domain.roots)))
        tree = SchemaTree(name=f"{domain.name}-{tree_index}")
        root = tree.add_root(SchemaNode(name=root_name, kind=NodeKind.ELEMENT))

        # Frontier of nodes that may still receive children, with their depth.
        frontier: List[tuple[int, int]] = [(root.node_id, 0)]
        while tree.node_count < target_size:
            if not frontier:
                # The tree died out before reaching its target size (every branch
                # ended in leaves).  Re-seed the frontier from existing internal
                # nodes that still have headroom, which keeps generated tree
                # sizes close to the requested distribution.
                candidates_to_extend = [
                    (node_id, tree.depth(node_id))
                    for node_id in tree.node_ids()
                    if tree.depth(node_id) < profile.max_depth - 1 and not tree.node(node_id).is_attribute
                ]
                if not candidates_to_extend:
                    break
                frontier.append(rng.choice(candidates_to_extend))
            parent_id, depth = frontier.pop(0)
            if depth >= profile.max_depth:
                continue
            fanout = rng.geometric(profile.fanout_geometric_p, profile.max_fanout)
            fanout = min(fanout, target_size - tree.node_count)
            if fanout <= 0:
                continue

            # Occasionally emit a contact block instead of random children; this
            # creates the localized regions the clustering step discovers.
            if rng.random() < domain.contact_block_probability and fanout >= 2:
                self._add_contact_block(tree, parent_id, rng, perturber, target_size)
                continue

            for _ in range(fanout):
                if tree.node_count >= target_size:
                    break
                make_leaf = depth + 1 >= profile.max_depth or rng.random() < 0.5
                if make_leaf:
                    name = perturber.perturb(rng.choice(list(domain.leaves)))
                    kind = (
                        NodeKind.ATTRIBUTE
                        if rng.random() < profile.attribute_probability
                        else NodeKind.ELEMENT
                    )
                    datatype = rng.choice(list(_LEAF_DATATYPES))
                    tree.add_child(parent_id, SchemaNode(name=name, kind=kind, datatype=datatype))
                else:
                    name = perturber.perturb(rng.choice(list(domain.containers)))
                    child = tree.add_child(parent_id, SchemaNode(name=name, kind=NodeKind.ELEMENT))
                    frontier.append((child.node_id, depth + 1))
        return tree

    def _add_contact_block(
        self,
        tree: SchemaTree,
        parent_id: int,
        rng: SeededRandom,
        perturber: NamePerturber,
        target_size: int,
    ) -> None:
        """Attach a small person/address group under ``parent_id``."""
        block = list(CONTACT_BLOCK)
        # Keep between 2 and all 4 of the block's members, in a random order.
        keep = rng.randint(2, len(block))
        members = rng.sample(block, keep)
        for member in members:
            if tree.node_count >= target_size:
                break
            name = perturber.perturb(member)
            tree.add_child(
                parent_id,
                SchemaNode(name=name, kind=NodeKind.ELEMENT, datatype=DataType.STRING),
            )

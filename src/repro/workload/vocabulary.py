"""Domain vocabularies and name perturbation for the synthetic repository.

Real web schema collections mix a limited set of recurring domains
(bibliographic data, commerce, contact/person data, publishing, logistics …)
with heavy naming-convention noise (camelCase vs. underscores, abbreviations,
synonyms, the occasional typo).  The synthetic repository reproduces both: each
generated tree is themed on one :class:`Domain`, and every element name passes
through a :class:`NamePerturber` that applies the same kinds of noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import WorkloadError
from repro.utils.rng import SeededRandom


@dataclass(frozen=True)
class Domain:
    """A vocabulary theme for generated schema trees.

    Attributes
    ----------
    name:
        Domain identifier (e.g. ``"library"``).
    roots:
        Candidate names for tree roots.
    containers:
        Names of elements that typically have children.
    leaves:
        Names of leaf elements / attributes.
    contact_block_probability:
        Probability that a container receives a "contact block" — a small group
        of person/address elements.  Contact blocks are what gives the
        experiment's personal schema (*name*, *address*, *email*) localized
        regions of mapping elements to discover.
    """

    name: str
    roots: Sequence[str]
    containers: Sequence[str]
    leaves: Sequence[str]
    contact_block_probability: float = 0.15


#: Element names that make up a "contact block".
CONTACT_BLOCK: Sequence[str] = ("name", "address", "email", "phone")

DOMAINS: List[Domain] = [
    Domain(
        name="library",
        roots=("library", "catalog", "bookstore", "collection"),
        containers=("book", "author", "publisher", "chapter", "section", "series", "loan", "member"),
        leaves=(
            "title", "isbn", "year", "price", "language", "edition", "pages", "genre",
            "firstName", "lastName", "birthDate", "shelf", "summary", "keyword",
        ),
        contact_block_probability=0.25,
    ),
    Domain(
        name="commerce",
        roots=("order", "invoice", "store", "cart", "purchaseOrder"),
        containers=("customer", "item", "shipment", "payment", "billing", "shipping", "supplier", "lineItem"),
        leaves=(
            "quantity", "price", "sku", "discount", "total", "currency", "orderDate",
            "status", "tax", "weight", "description", "productName",
        ),
        contact_block_probability=0.35,
    ),
    Domain(
        name="people",
        roots=("people", "directory", "organization", "company", "staff"),
        containers=("person", "employee", "contact", "department", "team", "manager", "member"),
        leaves=(
            "name", "firstName", "lastName", "email", "phone", "address", "city",
            "country", "zipcode", "title", "salary", "hireDate", "birthDate",
        ),
        contact_block_probability=0.45,
    ),
    Domain(
        name="publishing",
        roots=("journal", "proceedings", "magazine", "articleSet"),
        containers=("article", "issue", "volume", "editor", "reviewer", "reference", "conference"),
        leaves=(
            "title", "abstract", "doi", "year", "month", "pages", "keyword",
            "affiliation", "subject", "url",
        ),
        contact_block_probability=0.2,
    ),
    Domain(
        name="logistics",
        roots=("warehouse", "inventory", "fleet", "shipmentManifest"),
        containers=("location", "container", "vehicle", "route", "stop", "parcel", "carrier"),
        leaves=(
            "capacity", "weight", "volume", "arrivalDate", "departureDate", "status",
            "trackingNumber", "distance", "cost",
        ),
        contact_block_probability=0.15,
    ),
    Domain(
        name="events",
        roots=("calendar", "schedule", "eventList", "conferenceProgram"),
        containers=("event", "session", "speaker", "venue", "registration", "attendee", "sponsor"),
        leaves=(
            "title", "startTime", "endTime", "date", "room", "topic", "fee",
            "capacity", "description",
        ),
        contact_block_probability=0.3,
    ),
]

_DOMAIN_INDEX: Dict[str, Domain] = {domain.name: domain for domain in DOMAINS}

#: Abbreviation table applied by the perturber (the reverse direction of the
#: matcher-side expansion table, plus a few extras).
_ABBREVIATIONS: Dict[str, str] = {
    "address": "addr",
    "author": "auth",
    "customer": "cust",
    "department": "dept",
    "description": "desc",
    "email": "mail",
    "employee": "emp",
    "firstname": "fname",
    "identifier": "id",
    "information": "info",
    "lastname": "lname",
    "location": "loc",
    "number": "num",
    "organization": "org",
    "phone": "tel",
    "publisher": "pub",
    "quantity": "qty",
    "reference": "ref",
    "telephone": "tel",
}

#: Synonym substitutions applied by the perturber.
_SYNONYM_SUBSTITUTIONS: Dict[str, Sequence[str]] = {
    "name": ("label", "fullName"),
    "address": ("location", "residence"),
    "email": ("eMail", "electronicMail"),
    "phone": ("telephone", "phoneNumber"),
    "price": ("cost", "amount"),
    "customer": ("client", "buyer"),
    "item": ("product", "article"),
    "author": ("writer", "creator"),
    "title": ("heading", "caption"),
}


def domain_by_name(name: str) -> Domain:
    """Look up one of the built-in domains."""
    try:
        return _DOMAIN_INDEX[name]
    except KeyError as exc:
        raise WorkloadError(f"unknown domain {name!r}; available: {sorted(_DOMAIN_INDEX)}") from exc


class NamePerturber:
    """Applies naming-convention noise to element names, deterministically.

    Each perturbation is applied independently with its own probability:

    * *abbreviation* — ``address`` → ``addr``;
    * *synonym* — ``address`` → ``location``;
    * *style change* — camelCase → snake_case or the reverse;
    * *suffix* — a numeric or generic suffix (``address2``, ``addressInfo``);
    * *typo* — one adjacent-character transposition.
    """

    def __init__(
        self,
        rng: SeededRandom,
        abbreviation_probability: float = 0.15,
        synonym_probability: float = 0.15,
        style_probability: float = 0.2,
        suffix_probability: float = 0.08,
        typo_probability: float = 0.03,
    ) -> None:
        for label, probability in (
            ("abbreviation", abbreviation_probability),
            ("synonym", synonym_probability),
            ("style", style_probability),
            ("suffix", suffix_probability),
            ("typo", typo_probability),
        ):
            if not 0.0 <= probability <= 1.0:
                raise WorkloadError(f"{label} probability must be in [0, 1], got {probability}")
        self._rng = rng
        self.abbreviation_probability = abbreviation_probability
        self.synonym_probability = synonym_probability
        self.style_probability = style_probability
        self.suffix_probability = suffix_probability
        self.typo_probability = typo_probability

    def perturb(self, name: str) -> str:
        """Return a (possibly) noised version of ``name``."""
        result = name
        if self._rng.random() < self.synonym_probability:
            options = _SYNONYM_SUBSTITUTIONS.get(result.lower())
            if options:
                result = self._rng.choice(list(options))
        if self._rng.random() < self.abbreviation_probability:
            result = _ABBREVIATIONS.get(result.lower(), result)
        if self._rng.random() < self.style_probability:
            result = self._toggle_style(result)
        if self._rng.random() < self.suffix_probability:
            result = f"{result}{self._rng.choice(['2', 'Info', 'Data', 'Value'])}"
        if self._rng.random() < self.typo_probability and len(result) > 3:
            result = self._transpose(result)
        return result

    def _toggle_style(self, name: str) -> str:
        if "_" in name:
            # snake_case -> camelCase
            parts = [part for part in name.split("_") if part]
            return parts[0] + "".join(part.capitalize() for part in parts[1:]) if parts else name
        # camelCase (or plain) -> snake_case
        pieces: List[str] = []
        current = ""
        for char in name:
            if char.isupper() and current:
                pieces.append(current)
                current = char.lower()
            else:
                current += char.lower()
        if current:
            pieces.append(current)
        return "_".join(pieces)

    def _transpose(self, name: str) -> str:
        index = self._rng.randint(1, len(name) - 2)
        chars = list(name)
        chars[index], chars[index + 1] = chars[index + 1], chars[index]
        return "".join(chars)

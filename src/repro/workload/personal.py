"""Personal-schema builders used by the experiments and examples.

A personal schema is the small tree a user writes to describe the data they
are looking for (Sec. 1 of the paper).  The builders below cover the schemas
the paper mentions plus a few larger ones for the scaling ablations.
"""

from __future__ import annotations

from repro.schema.builder import TreeBuilder
from repro.schema.tree import SchemaTree


def paper_personal_schema() -> SchemaTree:
    """The schema of the paper's main experiment (Sec. 5).

    "The personal schema has nodes *name*, *address*, and *email*, and a
    structure similar to schema *s* in Fig. 1" — i.e. three nodes, one root
    with two children.
    """
    builder = TreeBuilder("personal-name-address-email")
    root = builder.root("name", datatype="string")
    builder.child(root, "address", datatype="string")
    builder.child(root, "email", datatype="string")
    return builder.build()


def contact_personal_schema() -> SchemaTree:
    """A four-node contact schema (root ``contact`` with name/address/email children)."""
    builder = TreeBuilder("personal-contact")
    root = builder.root("contact")
    builder.child(root, "name", datatype="string")
    builder.child(root, "address", datatype="string")
    builder.child(root, "email", datatype="string")
    return builder.build()


def book_personal_schema() -> SchemaTree:
    """The running example of the paper's Fig. 1: ``book`` with ``title`` and ``author``."""
    builder = TreeBuilder("personal-book")
    root = builder.root("book")
    builder.child(root, "title", datatype="string")
    builder.child(root, "author", datatype="string")
    return builder.build()


def publication_personal_schema() -> SchemaTree:
    """A five-node bibliographic schema used by the scaling ablation."""
    builder = TreeBuilder("personal-publication")
    root = builder.root("publication")
    builder.child(root, "title", datatype="string")
    author = builder.child(root, "author")
    builder.child(author, "name", datatype="string")
    builder.child(root, "year", datatype="integer")
    return builder.build()


def purchase_personal_schema() -> SchemaTree:
    """A six-node commerce schema (order / customer / item) for the scaling ablation."""
    builder = TreeBuilder("personal-purchase")
    root = builder.root("order")
    customer = builder.child(root, "customer")
    builder.child(customer, "name", datatype="string")
    item = builder.child(root, "item")
    builder.child(item, "price", datatype="decimal")
    builder.child(item, "quantity", datatype="integer")
    return builder.build()

"""Recorded and synthesized query traces, replayable against any backend.

A *query trace* is a serialized stream of personal-schema queries with their
options — the workload side of the ingestion story.  Traces are plain JSON
(``bellflower-query-trace`` v1) so they can be recorded once and replayed
forever, and every query embeds its full schema (via
:func:`~repro.schema.serialization.tree_to_dict`) so a trace is self-contained:
replaying needs no access to whatever produced it.

Two ways to obtain one:

* **record** an explicit schema stream with :func:`trace_from_schemas`;
* **synthesize** a Zipf-skewed stream with :func:`synthesize_zipf_trace` —
  queries are drawn from a deterministic pool (the experiment's personal
  schemas plus small per-domain schemas built from the
  :data:`~repro.workload.vocabulary.DOMAINS` vocabulary) with weight
  ``1/rank^skew``, the classic shape of real query logs where a few hot
  queries dominate.  Synthesis is a pure function of ``(parameters, seed)``.

:func:`replay_trace` runs a trace against any :class:`~repro.api.Matcher`
backend and reduces each result to a digest of its
:meth:`~repro.system.results.MatchResult.ranking_key` — the repo's one
canonical bit-identity of a ranking.  Equal replay digests across backends
(unsharded service, sharded service, frozen snapshot) therefore mean equal
rankings, score bits included; ``benchmarks/bench_ingest.py`` gates on this.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.schema.serialization import tree_from_dict, tree_to_dict
from repro.schema.tree import SchemaTree
from repro.utils.fileio import write_json_atomic
from repro.utils.rng import SeededRandom
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
    publication_personal_schema,
    purchase_personal_schema,
)
from repro.workload.vocabulary import DOMAINS

TRACE_FORMAT = "bellflower-query-trace"
TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceQuery:
    """One query of a trace: a serialized personal schema plus its options.

    ``delta``/``top_k`` of ``None`` mean "use the backend's default", matching
    the legacy ``match`` signature, so a trace can exercise both explicit and
    default options.
    """

    schema: Dict[str, Any]
    delta: Optional[float] = None
    top_k: Optional[int] = None

    def build_schema(self) -> SchemaTree:
        return tree_from_dict(self.schema)

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": self.schema, "delta": self.delta, "top_k": self.top_k}


@dataclass
class QueryTrace:
    """A named, optionally seeded stream of :class:`TraceQuery` entries."""

    name: str
    queries: List[TraceQuery]
    seed: Optional[int] = None
    #: Synthesis parameters, recorded for provenance (empty for recorded traces).
    parameters: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.queries:
            raise TraceError(f"trace {self.name!r} contains no queries")

    def unique_query_count(self) -> int:
        """Distinct (schema, options) combinations — the dedup ceiling."""
        keys = {
            (json.dumps(query.schema, sort_keys=True), query.delta, query.top_k)
            for query in self.queries
        }
        return len(keys)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "name": self.name,
            "seed": self.seed,
            "parameters": self.parameters,
            "queries": [query.to_dict() for query in self.queries],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryTrace":
        if not isinstance(payload, dict) or payload.get("format") != TRACE_FORMAT:
            raise TraceError("not a bellflower-query-trace document")
        if payload.get("version") != TRACE_VERSION:
            raise TraceError(f"unsupported trace version {payload.get('version')!r}")
        raw_queries = payload.get("queries")
        if not isinstance(raw_queries, list) or not raw_queries:
            raise TraceError("trace document contains no queries")
        queries = []
        for index, entry in enumerate(raw_queries):
            if not isinstance(entry, dict) or not isinstance(entry.get("schema"), dict):
                raise TraceError(f"trace query #{index} has no schema document")
            queries.append(
                TraceQuery(
                    schema=entry["schema"],
                    delta=entry.get("delta"),
                    top_k=entry.get("top_k"),
                )
            )
        return cls(
            name=str(payload.get("name", "trace")),
            queries=queries,
            seed=payload.get("seed"),
            parameters=dict(payload.get("parameters", {})),
        )


def save_trace(trace: QueryTrace, path: str | Path) -> None:
    """Persist a trace atomically (one canonical JSON rendering)."""
    write_json_atomic(path, trace.to_dict())


def load_trace(path: str | Path) -> QueryTrace:
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceError(f"trace file {path} is not valid JSON: {exc}") from exc
    return QueryTrace.from_dict(payload)


def trace_from_schemas(
    name: str,
    schemas: Sequence[SchemaTree],
    *,
    delta: Optional[float] = None,
    top_k: Optional[int] = None,
) -> QueryTrace:
    """Record an explicit schema stream as a trace (uniform options)."""
    if not schemas:
        raise TraceError(f"trace {name!r} needs at least one schema")
    return QueryTrace(
        name=name,
        queries=[
            TraceQuery(schema=tree_to_dict(schema), delta=delta, top_k=top_k)
            for schema in schemas
        ],
    )


# -- synthesis ----------------------------------------------------------------


def _domain_schema(rng: SeededRandom, domain_name: str, roots, containers, leaves) -> SchemaTree:
    """A small personal schema drawn from one domain's vocabulary."""
    from repro.schema.builder import TreeBuilder

    builder = TreeBuilder(f"trace-{domain_name}")
    root = builder.root(rng.choice(list(roots)))
    container = builder.child(root, rng.choice(list(containers)))
    for leaf in rng.sample(list(leaves), k=min(3, len(leaves))):
        builder.child(container, leaf, datatype="string")
    return builder.build()


def query_pool(seed: int) -> List[SchemaTree]:
    """The deterministic schema pool Zipf synthesis draws from.

    Rank order (which the Zipf skew turns into popularity) is: the five
    experiment personal schemas first, then one schema per vocabulary domain.
    Every schema is a pure function of ``seed``.
    """
    pool: List[SchemaTree] = [
        paper_personal_schema(),
        contact_personal_schema(),
        book_personal_schema(),
        publication_personal_schema(),
        purchase_personal_schema(),
    ]
    base = SeededRandom(seed)
    for domain in DOMAINS:
        rng = base.spawn("trace-domain", domain.name)
        pool.append(_domain_schema(rng, domain.name, domain.roots, domain.containers, domain.leaves))
    return pool


def synthesize_zipf_trace(
    length: int,
    seed: int,
    *,
    name: Optional[str] = None,
    skew: float = 1.1,
    deltas: Sequence[Optional[float]] = (None,),
    top_ks: Sequence[Optional[int]] = (None, 5),
) -> QueryTrace:
    """Synthesize a Zipf-skewed query stream — a pure function of its arguments.

    Query ``i`` draws a pool schema with probability proportional to
    ``1/rank^skew`` and options uniformly from ``deltas`` × ``top_ks``.  The
    resulting duplicate density is what makes ``match_many``'s fingerprint
    dedup measurable during replay.
    """
    if length < 1:
        raise TraceError("trace length must be at least 1")
    if skew <= 0:
        raise TraceError("zipf skew must be positive")
    if not deltas or not top_ks:
        raise TraceError("deltas and top_ks must be non-empty")
    pool = query_pool(seed)
    weights = [1.0 / (rank**skew) for rank in range(1, len(pool) + 1)]
    rng = SeededRandom(seed).spawn("zipf-trace", length, skew)
    indexes = rng.choices(range(len(pool)), weights=weights, k=length)
    queries = [
        TraceQuery(
            schema=tree_to_dict(pool[index]),
            delta=rng.choice(list(deltas)),
            top_k=rng.choice(list(top_ks)),
        )
        for index in indexes
    ]
    return QueryTrace(
        name=name or f"zipf-s{skew}-n{length}-seed{seed}",
        queries=queries,
        seed=seed,
        parameters={"kind": "zipf", "length": length, "skew": skew, "pool": len(pool)},
    )


# -- replay -------------------------------------------------------------------


def ranking_digest(result: Any) -> str:
    """The digest of one result's canonical ranking (exact score bits)."""
    return hashlib.sha256(repr(result.ranking_key()).encode("utf-8")).hexdigest()


def replay_trace(trace: QueryTrace, backend: Any, *, use_match_many: bool = True) -> Dict[str, Any]:
    """Replay a trace against a backend; return the per-query ranking digests.

    Queries are grouped by ``(delta, top_k)`` in first-appearance order and
    each group goes through ``match_many`` (the batch path with fingerprint
    dedup) unless ``use_match_many`` is False, in which case every query runs
    individually — the contrast the ingestion benchmark times.  Digests are
    reported in original trace order either way, so the two modes (and any
    two backends) are comparable entry by entry.
    """
    groups: Dict[Tuple[Optional[float], Optional[int]], List[int]] = {}
    for index, query in enumerate(trace.queries):
        groups.setdefault((query.delta, query.top_k), []).append(index)
    digests: List[Optional[str]] = [None] * len(trace.queries)
    partial = degraded = 0
    for (delta, top_k), indexes in groups.items():
        schemas = [trace.queries[index].build_schema() for index in indexes]
        if use_match_many:
            results = backend.match_many(schemas, delta=delta, top_k=top_k)
        else:
            results = [backend.match(schema, delta=delta, top_k=top_k) for schema in schemas]
        for index, result in zip(indexes, results):
            digests[index] = ranking_digest(result)
            partial += bool(getattr(result, "partial", False))
            degraded += bool(getattr(result, "degraded", False))
    assert all(digest is not None for digest in digests)
    return {
        "trace": trace.name,
        "queries": len(trace.queries),
        "unique_queries": trace.unique_query_count(),
        "option_groups": len(groups),
        "partial": partial,
        "degraded": degraded,
        "query_digests": digests,
        "ranking_digest": hashlib.sha256("\n".join(digests).encode("utf-8")).hexdigest(),  # type: ignore[arg-type]
    }

"""Repository sub-sampling.

The paper builds "several smaller repositories with sizes from 2500 to 10200
elements, by randomly selecting schemas from the collection".  The same
operation over our repositories: pick whole trees at random until a node budget
is reached.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import WorkloadError
from repro.schema.repository import SchemaRepository
from repro.schema.serialization import tree_from_dict, tree_to_dict
from repro.schema.tree import SchemaTree
from repro.utils.rng import SeededRandom


def _clone_tree(tree: SchemaTree) -> SchemaTree:
    """A deep copy of a tree with its registration (tree_id) reset."""
    return tree_from_dict(tree_to_dict(tree))


def sample_repository(
    repository: SchemaRepository,
    target_node_count: int,
    seed: int = 11,
    name: Optional[str] = None,
) -> SchemaRepository:
    """Randomly select whole trees until roughly ``target_node_count`` nodes are collected.

    Trees are cloned, so the sample is independent of the source repository.
    The result can overshoot the target by at most one tree; it stops early if
    the source runs out of trees.
    """
    if target_node_count < 1:
        raise WorkloadError(f"target_node_count must be positive, got {target_node_count}")
    if repository.tree_count == 0:
        raise WorkloadError("cannot sample from an empty repository")

    rng = SeededRandom(seed)
    order: List[int] = rng.shuffle(list(range(repository.tree_count)))
    sample = SchemaRepository(name=name or f"{repository.name}-sample-{target_node_count}")
    collected = 0
    for tree_id in order:
        if collected >= target_node_count:
            break
        tree = repository.tree(tree_id)
        sample.add_tree(_clone_tree(tree))
        collected += tree.node_count
    return sample

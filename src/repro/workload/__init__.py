"""Workload generation: synthetic schema repositories and personal schemas.

The paper's repository was harvested from the web (1700 DTD/XSD documents,
178 252 element and attribute nodes over 3 889 trees) and sub-sampled into
experimental repositories of 2 500–10 200 elements.  That collection is not
available, so this package provides a deterministic, seeded generator that
produces forests with the same statistical shape — many small-to-medium trees
drawn from overlapping real-world domains, with naming-convention noise — plus
a small bundled corpus of hand-written DTD/XSD documents that exercises the
real ingestion path, and builders for the personal schemas used in the
experiments.
"""

from repro.workload.vocabulary import DOMAINS, Domain, NamePerturber, domain_by_name
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
    publication_personal_schema,
    purchase_personal_schema,
)
from repro.workload.corpus import bundled_corpus_documents, load_bundled_corpus
from repro.workload.sampling import sample_repository
from repro.workload.trace import (
    QueryTrace,
    TraceQuery,
    load_trace,
    replay_trace,
    save_trace,
    synthesize_zipf_trace,
    trace_from_schemas,
)

__all__ = [
    "DOMAINS",
    "Domain",
    "NamePerturber",
    "RepositoryGenerator",
    "RepositoryProfile",
    "book_personal_schema",
    "bundled_corpus_documents",
    "contact_personal_schema",
    "domain_by_name",
    "load_bundled_corpus",
    "paper_personal_schema",
    "publication_personal_schema",
    "purchase_personal_schema",
    "QueryTrace",
    "TraceQuery",
    "load_trace",
    "replay_trace",
    "sample_repository",
    "save_trace",
    "synthesize_zipf_trace",
    "trace_from_schemas",
]

"""The analysis driver: file discovery, rule execution, suppression resolution."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    FRAMEWORK_RULE,
    Checker,
    FileContext,
    Finding,
    Suppression,
    parse_suppressions,
    path_matches,
)
from repro.analysis.report import Report

#: Directories never scanned.  ``tests/analysis/fixtures`` holds deliberate
#: rule violations (the golden positive fixtures) and must not fail the live
#: tree; caches and VCS metadata are noise.
DEFAULT_EXCLUDES = (
    "tests/analysis/fixtures/**",
    "**/__pycache__/**",
    ".git/**",
    ".pytest_cache/**",
    "build/**",
    "dist/**",
)

#: Where the scan looks for Python files, relative to the root.
DEFAULT_SCAN_ROOTS = ("src", "tests", "benchmarks", "examples", "setup.py")


@dataclass
class AnalysisConfig:
    """Knobs for one analysis run (tests point these at fixture trees)."""

    root: Path
    scan_roots: Tuple[str, ...] = DEFAULT_SCAN_ROOTS
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDES
    #: The counter glossary RPA005 reconciles against, relative to ``root``.
    glossary_path: str = "docs/ARCHITECTURE.md"
    #: Restrict the run to these rule ids (None = every registered rule).
    rules: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        self.root = Path(self.root).resolve()


@dataclass
class AnalysisProject:
    """One run of the checker battery over a source tree."""

    config: AnalysisConfig
    checkers: Sequence[Checker]
    contexts: List[FileContext] = field(default_factory=list)

    def discover_files(self) -> List[Path]:
        files: List[Path] = []
        for scan_root in self.config.scan_roots:
            target = self.config.root / scan_root
            if target.is_file() and target.suffix == ".py":
                files.append(target)
            elif target.is_dir():
                files.extend(sorted(target.rglob("*.py")))
        unique = sorted(set(files))
        return [path for path in unique if not self._excluded(self._rel(path))]

    def _rel(self, path: Path) -> str:
        return path.resolve().relative_to(self.config.root).as_posix()

    def _excluded(self, rel: str) -> bool:
        return any(path_matches(rel, pattern) for pattern in self.config.exclude)

    def run(self) -> Report:
        active = [
            checker
            for checker in self.checkers
            if self.config.rules is None or checker.rule_id in self.config.rules
        ]
        findings: List[Finding] = []
        suppressions: List[Suppression] = []
        self.contexts = []
        for path in self.discover_files():
            rel = self._rel(path)
            try:
                ctx = FileContext.load(path, rel)
            except (SyntaxError, UnicodeDecodeError) as error:
                lineno = getattr(error, "lineno", 1) or 1
                findings.append(
                    Finding(
                        rule=FRAMEWORK_RULE,
                        path=rel,
                        line=int(lineno),
                        col=1,
                        message=f"file does not parse: {error}",
                    )
                )
                continue
            self.contexts.append(ctx)
            file_suppressions, marker_problems = parse_suppressions(rel, ctx.source)
            suppressions.extend(file_suppressions)
            findings.extend(marker_problems)
            for checker in active:
                if checker.applies_to(rel):
                    findings.extend(checker.check_file(ctx))
        for checker in active:
            findings.extend(checker.finalize(self))
        kept, suppressed = self._resolve_suppressions(findings, suppressions)
        active_rule_ids = {checker.rule_id for checker in active}
        for marker in suppressions:
            # A marker is only "unused" when the rules it names actually ran:
            # a --rules subset must not turn every other marker into noise.
            if not marker.used and any(rule in active_rule_ids for rule in marker.rules):
                kept.append(
                    Finding(
                        rule=FRAMEWORK_RULE,
                        path=marker.path,
                        line=marker.line,
                        col=1,
                        message=(
                            f"unused suppression of {', '.join(marker.rules)} — "
                            "no finding matched this line"
                        ),
                        hint="delete stale markers so every suppression documents a live exception",
                    )
                )
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
        suppressed.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].rule))
        return Report(
            root=str(self.config.root),
            rules=sorted(active_rule_ids),
            files_checked=len(self.contexts),
            findings=kept,
            suppressed=suppressed,
        )

    @staticmethod
    def _resolve_suppressions(
        findings: Iterable[Finding], suppressions: Sequence[Suppression]
    ) -> Tuple[List[Finding], List[Tuple[Finding, str]]]:
        by_location: Dict[Tuple[str, int], List[Suppression]] = {}
        for marker in suppressions:
            by_location.setdefault((marker.path, marker.line), []).append(marker)
        kept: List[Finding] = []
        silenced: List[Tuple[Finding, str]] = []
        for finding in findings:
            for marker in by_location.get((finding.path, finding.line), ()):
                if marker.covers(finding):
                    marker.used = True
                    silenced.append((finding, marker.justification))
                    break
            else:
                kept.append(finding)
        return kept, silenced


def run_analysis(
    root: Path,
    *,
    checkers: Optional[Sequence[Checker]] = None,
    rules: Optional[Tuple[str, ...]] = None,
    glossary_path: str = "docs/ARCHITECTURE.md",
) -> Report:
    """Convenience entry point: analyse ``root`` with the full battery."""
    from repro.analysis.rules import default_checkers

    config = AnalysisConfig(root=Path(root), rules=rules, glossary_path=glossary_path)
    project = AnalysisProject(
        config=config, checkers=list(checkers) if checkers is not None else default_checkers()
    )
    return project.run()

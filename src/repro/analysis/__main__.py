"""``python -m repro.analysis`` — run the invariant battery over the tree."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.project import AnalysisConfig, AnalysisProject
from repro.analysis.rules import CHECKER_CLASSES, default_checkers, rules_by_id
from repro.utils.fileio import write_text_atomic


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lints enforcing the repo's determinism, concurrency and drift contracts",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        help="repository root to analyse (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (json is the CI artifact schema)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the report (in the chosen format) to this file",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their contracts and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for cls in CHECKER_CLASSES:
            print(f"{cls.rule_id}  {cls.title}")
            print(f"    scope: {', '.join(cls.include)}"
                  + (f"  (excluding {', '.join(cls.exclude)})" if cls.exclude else ""))
            print(f"    {cls.contract}")
        return 0
    rules = None
    if args.rules:
        rules = tuple(part.strip() for part in args.rules.split(",") if part.strip())
        unknown = [rule for rule in rules if rule not in rules_by_id()]
        if unknown:
            print(
                f"unknown rule id(s) {', '.join(unknown)}; registered: "
                + ", ".join(sorted(rules_by_id())),
                file=sys.stderr,
            )
            return 2
    root = args.root.resolve()
    if not root.is_dir():
        print(f"--root {root} is not a directory", file=sys.stderr)
        return 2
    config = AnalysisConfig(root=root, rules=rules)
    report = AnalysisProject(config=config, checkers=default_checkers()).run()
    rendered = report.to_json() if args.format == "json" else report.to_human()
    print(rendered)
    if args.out is not None:
        # Atomic like every other persisted artifact: CI archives this file
        # even after a failing run, so it must never be observed truncated.
        write_text_atomic(args.out, rendered + "\n")
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())

"""Invariant analysis: AST lints that enforce the repo's contracts at CI time.

Seven PRs of growth layered bit-identity contracts on the paper pipeline —
executor-independent tie-breaking, shard-merge identity, versioned wire
envelopes, monotonic-clock deadlines, pickle-redirect boundaries.  Tests
enforce those contracts only when they happen to exercise the violating
path; this package enforces them *mechanically*, on every file, at CI time:

=========  ==================================================================
RPA001     determinism — no wall clock / unseeded randomness outside
           ``utils/rng.py`` and ``resilience/``
RPA002     hash-order dependence — no bare set / ``.keys()`` iteration on
           ranking, signature or wire paths (``mapping/``, ``shard/``, ``api/``)
RPA003     pickle boundary — classes crossing the process-pool boundary are
           audited (allowlist + hooks), no lambdas/closures into executors
RPA004     async hygiene — no blocking calls in ``api/`` async bodies, no
           sync lock held across an ``await``
RPA005     counter-glossary drift — ``counters.increment``/``set`` literals
           ↔ docs/ARCHITECTURE.md counter glossary, both directions
RPA006     wire-envelope drift — v1 ``to_wire``/``from_wire`` key sets match
           their envelope dataclass fields
=========  ==================================================================

Run ``python -m repro.analysis`` from the repo root (``--format json`` for
the CI artifact; nonzero exit on findings).  Violations are silenced in
place with ``# repro: allow[RPAnnn] justification`` — the justification is
mandatory and unused markers are themselves findings.
"""

from repro.analysis.core import (
    FRAMEWORK_RULE,
    Checker,
    FileContext,
    Finding,
    Suppression,
    parse_suppressions,
    path_matches,
)
from repro.analysis.project import (
    DEFAULT_EXCLUDES,
    DEFAULT_SCAN_ROOTS,
    AnalysisConfig,
    AnalysisProject,
    run_analysis,
)
from repro.analysis.report import REPORT_SCHEMA_VERSION, Report, report_from_json
from repro.analysis.rules import CHECKER_CLASSES, default_checkers, rules_by_id

__all__ = [
    "FRAMEWORK_RULE",
    "Checker",
    "FileContext",
    "Finding",
    "Suppression",
    "parse_suppressions",
    "path_matches",
    "DEFAULT_EXCLUDES",
    "DEFAULT_SCAN_ROOTS",
    "AnalysisConfig",
    "AnalysisProject",
    "run_analysis",
    "REPORT_SCHEMA_VERSION",
    "Report",
    "report_from_json",
    "CHECKER_CLASSES",
    "default_checkers",
    "rules_by_id",
]

"""Core vocabulary of the invariant-analysis framework.

The repo's determinism, concurrency and drift contracts (executor-independent
tie-breaking, shard-merge identity, versioned wire envelopes, monotonic-clock
deadlines, pickle-redirect boundaries) were historically enforced only by
tests that happen to exercise the violating path.  ``repro.analysis`` turns
each contract into a *mechanical* check: a :class:`Checker` walks a file's
``ast`` and reports :class:`Finding` objects; the driver in
:mod:`repro.analysis.project` resolves path scoping and inline suppressions
and renders a report (:mod:`repro.analysis.report`).

Suppressions
------------
A finding may be silenced in place with a justified marker comment::

    risky_call()  # repro: allow[RPA001] seeded via derive_seed above

The rule list is comma-separated (``allow[RPA001,RPA004]``) and the free-text
justification is *required* — an unjustified or malformed marker is itself a
finding (rule :data:`FRAMEWORK_RULE`), as is a marker that never matched a
finding of an active rule.  Suppressions are deliberately line-scoped: they
silence exactly the construct they annotate, nothing else.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Rule id used for the framework's own diagnostics (parse failures,
#: malformed or unused suppression markers).  Not suppressible.
FRAMEWORK_RULE = "RPA000"

#: Marker syntax: ``repro: allow[RULES] justification`` after a hash, where
#: RULES is a comma-separated rule-id list.
_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?P<why>.*)$")
_RULE_ID_RE = re.compile(r"^RPA\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One invariant violation, anchored to ``path:line``."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
            hint=str(payload.get("hint", "")),
        )


@dataclass
class Suppression:
    """A parsed ``# repro: allow[...]`` marker on one source line."""

    path: str
    line: int
    rules: Tuple[str, ...]
    justification: str
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        return (
            finding.path == self.path
            and finding.line == self.line
            and finding.rule in self.rules
            and finding.rule != FRAMEWORK_RULE
        )


def _comment_tokens(source: str) -> Iterable[Tuple[int, int, str]]:
    """Yield ``(line, col, text)`` for every real comment token.

    Markers are recognized only in actual comments — a docstring or string
    literal that *mentions* ``# repro: allow[...]`` (this module's own docs,
    the marker regex itself) must not register as a suppression.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenizeError, IndentationError):  # pragma: no cover - file already parsed
        return


def _marker_target_line(lines: Sequence[str], lineno: int, col: int) -> int:
    """Resolve which source line a marker at ``(lineno, col)`` covers.

    A trailing marker (code before the ``#``) covers its own line.  A marker
    on a standalone comment line covers the first code line after the comment
    block, so multi-line justifications can sit above the construct they
    silence (the common case for ``def``/``class`` anchors).
    """
    before = lines[lineno - 1][:col] if lineno - 1 < len(lines) else ""
    if before.strip():
        return lineno
    for offset in range(lineno, len(lines)):
        text = lines[offset].strip()
        if text and not text.startswith("#"):
            return offset + 1
    return lineno


def parse_suppressions(
    rel_path: str, source: str
) -> Tuple[List[Suppression], List[Finding]]:
    """Extract suppression markers (and malformed-marker findings) from a file."""
    suppressions: List[Suppression] = []
    problems: List[Finding] = []
    lines = source.splitlines()
    for lineno, col, text in _comment_tokens(source):
        if "repro:" not in text:
            continue
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            if re.search(r"#\s*repro:\s*allow", text):
                problems.append(
                    Finding(
                        rule=FRAMEWORK_RULE,
                        path=rel_path,
                        line=lineno,
                        col=col + 1,
                        message="malformed suppression marker (expected `# repro: allow[RULE] justification`)",
                    )
                )
            continue
        rules = tuple(part.strip() for part in match.group("rules").split(",") if part.strip())
        why = match.group("why").strip()
        bad_ids = [rule for rule in rules if not _RULE_ID_RE.match(rule)]
        if not rules or bad_ids:
            problems.append(
                Finding(
                    rule=FRAMEWORK_RULE,
                    path=rel_path,
                    line=lineno,
                    col=col + match.start() + 1,
                    message=f"suppression names invalid rule ids {bad_ids or '[]'} (expected RPAnnn)",
                )
            )
            continue
        if not why:
            problems.append(
                Finding(
                    rule=FRAMEWORK_RULE,
                    path=rel_path,
                    line=lineno,
                    col=col + match.start() + 1,
                    message=f"suppression of {', '.join(rules)} has no justification text",
                    hint="every `# repro: allow[...]` must say *why* the violation is safe",
                )
            )
            continue
        target = _marker_target_line(lines, lineno, col)
        if target != lineno:
            # Standalone marker: the justification may wrap onto the following
            # comment lines of the same block.
            for offset in range(lineno, target - 1):
                text_line = lines[offset].strip()
                if not text_line.startswith("#"):
                    break
                why = f"{why} {text_line.lstrip('#').strip()}".strip()
        suppressions.append(
            Suppression(path=rel_path, line=target, rules=rules, justification=why)
        )
    return suppressions, problems


@dataclass
class FileContext:
    """Everything a checker needs about one parsed source file."""

    path: Path  # absolute
    rel: str  # repo-relative posix path
    source: str
    tree: ast.Module
    lines: Tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def load(cls, path: Path, rel: str) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel)
        return cls(path=path, rel=rel, source=source, tree=tree, lines=tuple(source.splitlines()))

    def module_name(self) -> str:
        """Dotted module path for files under ``src/`` (best effort otherwise)."""
        parts = Path(self.rel).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        return ".".join(parts)


def path_matches(rel: str, pattern: str) -> bool:
    """Match a repo-relative posix path against an activation pattern.

    ``dir/**`` matches everything under ``dir`` (and the directory itself);
    anything else is a literal path or an ``fnmatch`` glob.
    """
    if pattern.endswith("/**"):
        prefix = pattern[: -len("/**")]
        return rel == prefix or rel.startswith(prefix + "/")
    return rel == pattern or fnmatchcase(rel, pattern)


class Checker:
    """Base class for one invariant rule.

    Subclasses set :attr:`rule_id` / :attr:`title` / :attr:`contract` and the
    path scope (:attr:`include` / :attr:`exclude`), then implement
    :meth:`check_file`; rules needing whole-project context (drift checks that
    compare code against a registry or document) also implement
    :meth:`finalize`, which runs once after every scoped file was checked.
    """

    rule_id: str = FRAMEWORK_RULE
    title: str = ""
    #: One-paragraph statement of the invariant the rule guards (shown by
    #: ``--list-rules`` and quoted in docs/ARCHITECTURE.md).
    contract: str = ""
    include: Tuple[str, ...] = ("src/repro/**",)
    exclude: Tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        if not any(path_matches(rel, pattern) for pattern in self.include):
            return False
        return not any(path_matches(rel, pattern) for pattern in self.exclude)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover - interface
        return ()

    def finalize(self, project: "object") -> Iterable[Finding]:
        return ()

    def finding(
        self,
        ctx: FileContext,
        node: Optional[ast.AST],
        message: str,
        hint: str = "",
        line: Optional[int] = None,
        col: Optional[int] = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` (or an explicit line/col)."""
        anchor_line = line if line is not None else getattr(node, "lineno", 1)
        anchor_col = col if col is not None else getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.rule_id,
            path=ctx.rel,
            line=anchor_line,
            col=anchor_col,
            message=message,
            hint=hint,
        )


class ImportTracker(ast.NodeVisitor):
    """Resolve local names to the stdlib modules/members they alias.

    Rules that police ``time.time()`` / ``random.shuffle`` / ``datetime.now``
    must see through ``import time as t`` and ``from random import shuffle``.
    The tracker records, per module of interest, the local alias names bound
    to the module itself and the member names imported from it directly.
    """

    def __init__(self, modules: Sequence[str]) -> None:
        self.modules = tuple(modules)
        self.module_aliases: Dict[str, set] = {name: set() for name in self.modules}
        self.member_imports: Dict[str, Dict[str, str]] = {name: {} for name in self.modules}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in self.module_aliases:
                self.module_aliases[root].add(alias.asname or root)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[0]
        if module in self.member_imports:
            for alias in node.names:
                self.member_imports[module][alias.asname or alias.name] = alias.name

    def scan(self, tree: ast.Module) -> "ImportTracker":
        self.visit(tree)
        return self

    def is_module(self, node: ast.AST, module: str) -> bool:
        return isinstance(node, ast.Name) and node.id in self.module_aliases.get(module, ())

    def member_origin(self, name: str, module: str) -> Optional[str]:
        return self.member_imports.get(module, {}).get(name)

"""The rule battery: one module per invariant, registered here."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.core import Checker
from repro.analysis.rules.async_hygiene import AsyncHygieneChecker
from repro.analysis.rules.counter_glossary import CounterGlossaryChecker
from repro.analysis.rules.determinism import DeterminismChecker
from repro.analysis.rules.hash_order import HashOrderChecker
from repro.analysis.rules.pickle_boundary import (
    PICKLE_BOUNDARY_ALLOWLIST,
    PickleBoundaryChecker,
)
from repro.analysis.rules.wire_drift import WireDriftChecker

#: Every registered rule, in id order.  New rules (generation-swap and
#: recluster invariants for ROADMAP items 3/5) register here.
CHECKER_CLASSES: List[Type[Checker]] = [
    DeterminismChecker,
    HashOrderChecker,
    PickleBoundaryChecker,
    AsyncHygieneChecker,
    CounterGlossaryChecker,
    WireDriftChecker,
]


def default_checkers() -> List[Checker]:
    """Fresh checker instances (checkers hold per-run state)."""
    return [cls() for cls in CHECKER_CLASSES]


def rules_by_id() -> Dict[str, Type[Checker]]:
    return {cls.rule_id: cls for cls in CHECKER_CLASSES}


__all__ = [
    "CHECKER_CLASSES",
    "PICKLE_BOUNDARY_ALLOWLIST",
    "default_checkers",
    "rules_by_id",
]

"""RPA003 — the process-pool pickle boundary stays audited.

:class:`~repro.utils.executor.ProcessPoolTaskExecutor` ships callables and
task payloads to worker processes by pickling.  PR 7's shared-memory redirects
exist precisely because "it pickled, therefore it worked" is false: a class
that crosses the boundary with default pickling can silently drag megabytes of
repository state (or unpicklable locks/pools) into every worker.  The audit
has two mechanical halves:

* every class that customizes pickling (``__reduce__``/``__getstate__``/…)
  must appear in :data:`PICKLE_BOUNDARY_ALLOWLIST` with a recorded reason —
  a new pickle hook is a boundary-crossing design decision, not a detail;
* the allowlist must stay live: entries whose class disappeared, or whose
  class no longer defines the hooks the entry claims, are findings.

The rule also rejects lambdas and closures handed to a ``TaskExecutor.map``
call — pickle cannot serialize them, so they break the moment the executor is
a process pool (the chaos wrapper's in-process closure is the one documented
exception and carries an inline suppression).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.core import Checker, FileContext, Finding

#: Methods that customize pickling.
PICKLE_HOOKS = (
    "__reduce__",
    "__reduce_ex__",
    "__getstate__",
    "__setstate__",
    "__getnewargs__",
    "__getnewargs_ex__",
)

#: The audited boundary.  ``hooks=True`` entries customize pickling (and must
#: keep doing so); ``hooks=False`` entries are task payloads audited as safe
#: under *default* pickling (they must not silently grow hooks).  ``why``
#: records the audit rationale — it is documentation with teeth.
PICKLE_BOUNDARY_ALLOWLIST: Dict[str, Dict[str, object]] = {
    "repro.schema.repository.SchemaRepository": {
        "hooks": True,
        "why": "drops derived caches (name index, oracle rows) so chunk pickles stay lean",
    },
    "repro.mapping.engine.TopKPool": {
        "hooks": True,
        "why": "strips the lock; workers get a per-process incumbent copy (prune-only, exact)",
    },
    "repro.service.service.MatchingService": {
        "hooks": True,
        "why": "redirects to the published shared-memory segment while live+version-matched (PR 7)",
    },
    "repro.labeling.distance.RepositoryDistanceOracle": {
        "hooks": True,
        "why": "redirects to the shared-memory segment / re-keys packed rows on attach (PR 7)",
    },
    "repro.matchers.index.LRUMemo": {
        "hooks": True,
        "why": "drops the lock and memo contents; workers rebuild their own bounded memo",
    },
    "repro.matchers.index.RepositoryNameIndex": {
        "hooks": True,
        "why": "drops lazily-derived postings so repository pickles do not double-ship them",
    },
    "repro.resilience.deadline.Deadline": {
        "hooks": True,
        "why": "re-anchors remaining budget on the receiving process's own monotonic clock",
    },
    "repro.utils.counters.ThreadSafeCounterSet": {
        "hooks": True,
        "why": "locks do not pickle; a worker copy only needs the counts",
    },
    "repro.mapping.model.MappingProblem": {
        "hooks": False,
        "why": "the per-cluster task payload; default pickling is the chunk-level dedup contract",
    },
    "repro.storage.frozen.FrozenRepository": {
        "hooks": True,
        "why": "mmap views cannot pickle; reduces to a snapshot-path reopen shared per worker process",
    },
    "repro.storage.frozen.FrozenNameIndex": {
        "hooks": True,
        "why": "immutable mmap-backed index; reduces to (path, position) so workers attach, never copy",
    },
    "repro.storage.frozen.FrozenRepositoryDistanceOracle": {
        "hooks": True,
        "why": "shm redirect wins, else snapshot-path reopen while pristine, else copy sans mmap views",
    },
    "repro.storage.frozen.FrozenPartition": {
        "hooks": True,
        "why": "reduces to (path, reclustering) while segment-backed; materializes before plain pickling",
    },
}

_HOOK_HINT = (
    "add the class to PICKLE_BOUNDARY_ALLOWLIST in repro/analysis/rules/pickle_boundary.py "
    "with the audit rationale, or remove the hook"
)


class PickleBoundaryChecker(Checker):
    rule_id = "RPA003"
    title = "process-pool pickle boundary stays audited"
    contract = (
        "Classes crossing the ProcessPoolTaskExecutor/ChaosExecutor boundary "
        "either define audited pickle hooks or appear in the audited "
        "default-pickle allowlist; lambdas/closures must not be handed to "
        "executor map calls."
    )
    include = ("src/repro/**",)
    exclude = ("src/repro/analysis/**",)

    def __init__(self, allowlist: Dict[str, Dict[str, object]] = PICKLE_BOUNDARY_ALLOWLIST) -> None:
        self.allowlist = allowlist
        #: dotted class path -> (rel, line, hook names found)
        self.seen_classes: Dict[str, Tuple[str, int, Set[str]]] = {}

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        module = ctx.module_name()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                hooks = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in PICKLE_HOOKS
                }
                dotted = f"{module}.{node.name}"
                self.seen_classes[dotted] = (ctx.rel, node.lineno, hooks)
                if hooks and dotted not in self.allowlist:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"class {node.name} customizes pickling ({', '.join(sorted(hooks))}) "
                            "but is not in the audited boundary allowlist",
                            _HOOK_HINT,
                        )
                    )
        findings.extend(self._check_executor_callables(ctx))
        return findings

    # -- lambdas/closures into executor map ------------------------------------

    def _check_executor_callables(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []

        class Scope(ast.NodeVisitor):
            def __init__(self, local_defs: Set[str]) -> None:
                self.local_defs = local_defs

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._visit_function(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._visit_function(node)

            def _visit_function(self, node: ast.AST) -> None:
                nested = {
                    item.name
                    for item in ast.walk(node)
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item is not node
                }
                Scope(nested).generic_visit(node)  # type: ignore[arg-type]

            def visit_Call(self, call: ast.Call) -> None:
                self.generic_visit(call)
                func = call.func
                if not (isinstance(func, ast.Attribute) and func.attr == "map" and call.args):
                    return
                receiver = ast.unparse(func.value)
                if "executor" not in receiver.lower() and not receiver.endswith(".inner"):
                    return
                fn_arg = call.args[0]
                if isinstance(fn_arg, ast.Lambda):
                    findings.append(
                        checker.finding(
                            ctx,
                            fn_arg,
                            f"lambda passed to `{receiver}.map` cannot cross the process-pool "
                            "pickle boundary",
                            "use a module-level function (functools.partial over one is fine)",
                        )
                    )
                elif isinstance(fn_arg, ast.Name) and fn_arg.id in self.local_defs:
                    findings.append(
                        checker.finding(
                            ctx,
                            fn_arg,
                            f"closure `{fn_arg.id}` passed to `{receiver}.map` cannot cross the "
                            "process-pool pickle boundary",
                            "use a module-level function (functools.partial over one is fine)",
                        )
                    )

        checker = self
        Scope(set()).visit(ctx.tree)
        return findings

    # -- allowlist liveness ----------------------------------------------------

    def finalize(self, project: object) -> Iterable[Finding]:
        findings: List[Finding] = []
        scanned_modules = {
            ctx.module_name() for ctx in getattr(project, "contexts", ())
        }
        for dotted, entry in sorted(self.allowlist.items()):
            seen = self.seen_classes.get(dotted)
            anchor_rel = "src/repro/analysis/rules/pickle_boundary.py"
            if seen is None:
                # Only call an entry stale when its module was actually in
                # scope — a scoped run (tests over fixture trees, --rules on a
                # subtree) cannot audit files it never parsed.
                if dotted.rsplit(".", 1)[0] not in scanned_modules:
                    continue
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=anchor_rel,
                        line=1,
                        col=1,
                        message=f"stale allowlist entry: class {dotted} no longer exists",
                        hint="remove the entry or fix the dotted path",
                    )
                )
                continue
            rel, lineno, hooks = seen
            if entry["hooks"] and not hooks:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=rel,
                        line=lineno,
                        col=1,
                        message=(
                            f"{dotted} is allowlisted as defining pickle hooks but defines none"
                        ),
                        hint="restore the hook or re-audit the entry as hooks=False",
                    )
                )
            elif not entry["hooks"] and hooks:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=rel,
                        line=lineno,
                        col=1,
                        message=(
                            f"{dotted} is audited for default pickling but now defines "
                            f"{', '.join(sorted(hooks))}"
                        ),
                        hint="re-audit the entry as hooks=True with the new rationale",
                    )
                )
        return findings

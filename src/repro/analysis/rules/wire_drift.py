"""RPA006 — wire codecs and their envelope dataclasses cannot diverge.

The v1 envelopes (PR 5) promise ``from_wire(to_wire(x)) == x`` and
unknown-field tolerance.  Both properties rot silently when a field is added
to a dataclass but not to its codec (the field never travels), or when
``to_wire`` emits a key ``from_wire`` never reads (clients see data the
decoder drops).  For every ``@dataclass`` in ``api/`` that defines both
``to_wire`` and ``from_wire``, this rule checks:

* **field coverage** — every wire-eligible field (public, not marked
  ``compare=False``, which the envelopes use for derived/non-wire metadata)
  is referenced as ``self.<field>`` inside ``to_wire``;
* **attribute sanity** — ``to_wire`` only references real fields (or other
  class attributes), so a renamed field cannot leave a dangling serializer;
* **key symmetry** — the literal keys ``to_wire`` emits (dict literals and
  ``wire["k"] = …`` assignments, minus the ``v``/``kind`` frame) equal the
  literal keys ``from_wire`` reads via ``.get("k")``/``["k"]``.  A decoder
  that reads no keys at all (pure delegation) is skipped.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.core import Checker, FileContext, Finding

#: Envelope frame keys carried by every wire dict but backed by class-level
#: constants, not dataclass fields.
_FRAME_KEYS = {"v", "kind"}


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _field_compare_false(value: Optional[ast.expr]) -> bool:
    """True when a field default is ``field(..., compare=False)``."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
    if name != "field":
        return False
    for keyword in value.keywords:
        if keyword.arg == "compare" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return False


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _self_attribute_reads(func: ast.FunctionDef) -> Set[str]:
    return {
        node.attr
        for node in ast.walk(func)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    }


def _emitted_keys(func: ast.FunctionDef) -> Set[str]:
    keys: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _parsed_keys(func: ast.FunctionDef) -> Set[str]:
    keys: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
    return keys


class WireDriftChecker(Checker):
    rule_id = "RPA006"
    title = "wire codec fields match their envelope dataclass"
    contract = (
        "For every envelope dataclass with to_wire/from_wire, the serialized "
        "field set equals the dataclass's wire-eligible fields, and the keys "
        "to_wire emits are exactly the keys from_wire reads (v/kind frame "
        "aside) — codec and dataclass cannot silently diverge."
    )
    include = ("src/repro/api/**",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                findings.extend(self._check_class(ctx, node))
        return findings

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterable[Finding]:
        to_wire = _method(cls, "to_wire")
        from_wire = _method(cls, "from_wire")
        if to_wire is None or from_wire is None:
            return
        fields: List[str] = []
        non_wire: Set[str] = set()
        class_attrs: Set[str] = set()
        for item in cls.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                name = item.target.id
                if name.startswith("_"):
                    non_wire.add(name)
                    continue
                fields.append(name)
                if _field_compare_false(item.value):
                    non_wire.add(name)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        class_attrs.add(target.id)
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                class_attrs.add(item.name)

        referenced = _self_attribute_reads(to_wire)
        wire_fields = [name for name in fields if name not in non_wire]

        for name in wire_fields:
            if name not in referenced:
                yield self.finding(
                    ctx,
                    to_wire,
                    f"{cls.name}.{name} is a wire-eligible field but to_wire never "
                    "serializes it",
                    "emit the field (or mark it compare=False if it is derived metadata)",
                )
        known = set(fields) | non_wire | class_attrs
        for name in sorted(referenced - known):
            yield self.finding(
                ctx,
                to_wire,
                f"{cls.name}.to_wire references `self.{name}`, which is not a field of "
                "the dataclass",
                "a renamed field left a dangling serializer — update to_wire",
            )

        emitted = _emitted_keys(to_wire) - _FRAME_KEYS
        parsed = _parsed_keys(from_wire) - _FRAME_KEYS
        if not parsed:
            return  # pure delegation (e.g. MatchOptions.from_wire -> options_from_wire)
        for key in sorted(emitted - parsed):
            yield self.finding(
                ctx,
                to_wire,
                f"{cls.name}.to_wire emits key '{key}' that from_wire never reads",
                "read it in from_wire or stop emitting it — one-way keys are silent drift",
            )
        for key in sorted(parsed - emitted):
            yield self.finding(
                ctx,
                from_wire,
                f"{cls.name}.from_wire reads key '{key}' that to_wire never emits",
                "emit it in to_wire or stop reading it — one-way keys are silent drift",
            )

"""RPA004 — the asyncio server path never blocks the event loop.

The API server (PR 5/6) keeps one event loop responsive for accepts, reads
and graceful shutdown while CPU work runs on a thread pool.  A single
blocking call inside an ``async def`` — ``time.sleep``, synchronous file IO,
a synchronous ``Lock.acquire`` — stalls *every* connection, and a synchronous
lock held across an ``await`` is a deadlock seed (the awaiting task parks
while other tasks on the same loop spin on the lock).  This rule polices
``api/`` async function bodies for both.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Checker, FileContext, Finding, ImportTracker

#: Attribute calls that are blocking file IO regardless of receiver type.
_BLOCKING_IO_ATTRS = ("read_text", "write_text", "read_bytes", "write_bytes")
#: Module-level calls that block the loop.
_BLOCKING_MODULE_CALLS = {
    "time": ("sleep",),
    "subprocess": ("run", "call", "check_call", "check_output", "Popen"),
    "os": ("system", "waitpid", "wait"),
    "socket": ("create_connection",),
}
_OFFLOAD_HINT = "offload via loop.run_in_executor (or use the asyncio-native equivalent)"


class AsyncHygieneChecker(Checker):
    rule_id = "RPA004"
    title = "async hygiene: no blocking calls or locks held across await"
    contract = (
        "Inside async def bodies in api/, no time.sleep, synchronous file IO "
        "(open/read_text/...), or synchronous Lock.acquire; and no synchronous "
        "`with <lock>:` block may contain an await."
    )
    include = ("src/repro/api/**",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        tracker = ImportTracker(tuple(_BLOCKING_MODULE_CALLS)).scan(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_async_body(ctx, node, tracker))
        return findings

    def _own_nodes(self, func: ast.AsyncFunctionDef) -> Iterable[ast.AST]:
        """Walk the async function, skipping nested function bodies.

        A nested ``def`` only blocks when called; if it is called on the loop
        the call site (or the function's own home, if async) gets flagged.
        """
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_async_body(
        self, ctx: FileContext, func: ast.AsyncFunctionDef, tracker: ImportTracker
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in self._own_nodes(func):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, func, node, tracker))
            elif isinstance(node, ast.With):
                findings.extend(self._check_sync_with(ctx, func, node))
        return findings

    def _check_call(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        node: ast.Call,
        tracker: ImportTracker,
    ) -> Iterable[Finding]:
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id == "open":
                yield self.finding(
                    ctx,
                    node,
                    f"blocking `open()` inside async def {func.name}",
                    _OFFLOAD_HINT,
                )
            for module, members in _BLOCKING_MODULE_CALLS.items():
                if tracker.member_origin(callee.id, module) in members:
                    yield self.finding(
                        ctx,
                        node,
                        f"blocking `{module}.{callee.id}` inside async def {func.name}",
                        _OFFLOAD_HINT,
                    )
        elif isinstance(callee, ast.Attribute):
            for module, members in _BLOCKING_MODULE_CALLS.items():
                if callee.attr in members and tracker.is_module(callee.value, module):
                    yield self.finding(
                        ctx,
                        node,
                        f"blocking `{module}.{callee.attr}` inside async def {func.name}",
                        _OFFLOAD_HINT,
                    )
            if callee.attr in _BLOCKING_IO_ATTRS:
                yield self.finding(
                    ctx,
                    node,
                    f"blocking file IO `.{callee.attr}()` inside async def {func.name}",
                    _OFFLOAD_HINT,
                )
            if callee.attr == "acquire" and not self._is_awaited(func, node):
                receiver = ast.unparse(callee.value)
                yield self.finding(
                    ctx,
                    node,
                    f"synchronous `{receiver}.acquire()` inside async def {func.name}",
                    "use asyncio.Lock (awaited) or run the locked section on the thread pool",
                )

    @staticmethod
    def _is_awaited(func: ast.AsyncFunctionDef, call: ast.Call) -> bool:
        return any(
            isinstance(node, ast.Await) and node.value is call for node in ast.walk(func)
        )

    def _check_sync_with(
        self, ctx: FileContext, func: ast.AsyncFunctionDef, node: ast.With
    ) -> Iterable[Finding]:
        lockish = [
            ast.unparse(item.context_expr)
            for item in node.items
            if "lock" in ast.unparse(item.context_expr).lower()
        ]
        if not lockish:
            return
        has_await = any(
            isinstance(inner, ast.Await)
            for stmt in node.body
            for inner in ast.walk(stmt)
        )
        if has_await:
            yield self.finding(
                ctx,
                node,
                f"synchronous lock `{lockish[0]}` held across an await in async def {func.name}",
                "switch to `async with asyncio.Lock()` or release before awaiting",
            )

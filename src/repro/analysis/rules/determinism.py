"""RPA001 — no wall-clock or unseeded randomness on deterministic paths.

The pipeline's outputs are bit-identical across runs, machines and executors
(PR 1/3/4 equivalence suites).  That only holds if no code on the engine,
mapping, service, shard or API path reads the wall clock or an unseeded RNG:
time must come from ``time.monotonic``/``time.perf_counter`` (deadlines and
timings, never results) and randomness from
:class:`repro.utils.rng.SeededRandom` / :func:`repro.utils.rng.derive_seed`.
``utils/rng.py`` is the one audited owner of the ``random`` module, and
``resilience/`` owns its CRC32-seeded jitter and injected sleeps.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Checker, FileContext, Finding, ImportTracker

#: ``time`` members that read the wall clock (results may differ across runs).
WALL_CLOCK_TIME = ("time", "time_ns", "ctime", "gmtime", "localtime", "strftime")
#: ``datetime``-class constructors bound to the wall clock.
WALL_CLOCK_DATETIME = ("now", "utcnow", "today", "fromtimestamp")
#: Module-level ``random`` functions — all draw from the shared, unseeded
#: global generator.  ``random.Random(seed)`` is fine; ``random.Random()``
#: and ``random.SystemRandom`` are not.
UNSEEDED_RANDOM = (
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "triangular",
    "paretovariate",
    "vonmisesvariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
    "seed",
)

_HINT = (
    "deterministic paths take time from time.monotonic()/Deadline and randomness "
    "from utils/rng.SeededRandom (derive_seed for sub-streams)"
)


class DeterminismChecker(Checker):
    rule_id = "RPA001"
    title = "determinism: no wall clock, no unseeded randomness"
    contract = (
        "Outside utils/rng.py and resilience/, library code must not call "
        "time.time()/datetime.now()/unseeded random.* — results must be "
        "bit-identical across runs, so clocks are monotonic-only and every "
        "random draw is explicitly seeded."
    )
    include = ("src/repro/**",)
    exclude = ("src/repro/utils/rng.py", "src/repro/resilience/**")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        tracker = ImportTracker(("time", "random", "datetime")).scan(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                findings.extend(self._check_attribute(ctx, node, tracker))
            elif isinstance(node, ast.Name):
                findings.extend(self._check_name(ctx, node, tracker))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, node, tracker))
        return findings

    # -- pieces ---------------------------------------------------------------

    def _check_attribute(
        self, ctx: FileContext, node: ast.Attribute, tracker: ImportTracker
    ) -> Iterable[Finding]:
        # `time.time` / `t.time_ns` — flagged as a *reference*, not just a
        # call, so `clock=time.time` default arguments are caught too.
        if tracker.is_module(node.value, "time") and node.attr in WALL_CLOCK_TIME:
            yield self.finding(
                ctx, node, f"wall-clock read `time.{node.attr}` on a deterministic path", _HINT
            )
        if tracker.is_module(node.value, "random"):
            if node.attr in UNSEEDED_RANDOM:
                yield self.finding(
                    ctx,
                    node,
                    f"unseeded global RNG `random.{node.attr}` on a deterministic path",
                    _HINT,
                )
            elif node.attr == "SystemRandom":
                yield self.finding(
                    ctx, node, "`random.SystemRandom` is nondeterministic by design", _HINT
                )
        # `datetime.datetime.now` (module attribute) and `dt.now` where `dt`
        # is the class imported via `from datetime import datetime`.
        value = node.value
        if node.attr in WALL_CLOCK_DATETIME:
            if (
                isinstance(value, ast.Attribute)
                and value.attr in ("datetime", "date")
                and tracker.is_module(value.value, "datetime")
            ):
                yield self.finding(
                    ctx, node, f"wall-clock read `datetime.{value.attr}.{node.attr}`", _HINT
                )
            elif isinstance(value, ast.Name) and tracker.member_origin(
                value.id, "datetime"
            ) in ("datetime", "date"):
                yield self.finding(
                    ctx, node, f"wall-clock read `{value.id}.{node.attr}`", _HINT
                )

    def _check_name(
        self, ctx: FileContext, node: ast.Name, tracker: ImportTracker
    ) -> Iterable[Finding]:
        if not isinstance(node.ctx, ast.Load):
            return
        time_origin = tracker.member_origin(node.id, "time")
        if time_origin in WALL_CLOCK_TIME:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read `{node.id}` (from time import {time_origin})",
                _HINT,
            )
        random_origin = tracker.member_origin(node.id, "random")
        if random_origin in UNSEEDED_RANDOM:
            yield self.finding(
                ctx,
                node,
                f"unseeded global RNG `{node.id}` (from random import {random_origin})",
                _HINT,
            )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, tracker: ImportTracker
    ) -> Iterable[Finding]:
        func = node.func
        is_random_class = (
            isinstance(func, ast.Attribute)
            and func.attr == "Random"
            and tracker.is_module(func.value, "random")
        ) or (
            isinstance(func, ast.Name) and tracker.member_origin(func.id, "random") == "Random"
        )
        if is_random_class and not node.args and not node.keywords:
            yield self.finding(
                ctx,
                node,
                "`random.Random()` without a seed falls back to wall-clock/OS entropy",
                "pass an explicit seed (derive_seed keeps sub-streams independent)",
            )

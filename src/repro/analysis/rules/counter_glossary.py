"""RPA005 — the counter glossary and the code cannot drift apart.

``CounterSet`` names are the system's machine-independent efficiency
instrumentation (the paper compares configurations by counting work, not
seconds), and docs/ARCHITECTURE.md's "Counter glossary" is their contract:
every counter the code increments is documented there, and every documented
counter still exists in code.  Both directions are checked mechanically —
a renamed counter that leaves its glossary row behind, or a new counter
without documentation, is a finding.

Counter names must be string literals at the call site; a computed name is
invisible to this audit (and to every human reading the glossary), so it is
flagged too.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Checker, FileContext, Finding

#: ``CounterSet`` mutators whose first argument is a counter name.
_COUNTER_METHODS = ("increment", "set")
_NAME_RE = re.compile(r"`([a-z][a-z0-9_]*)`")


def parse_glossary(markdown: str) -> Dict[str, int]:
    """Extract counter names (with line numbers) from the glossary section.

    Names are the backticked tokens in the first column of the section's
    tables; a row may document several related counters at once
    (``\\`hedges_launched\\` / \\`hedges_won\\```).
    """
    names: Dict[str, int] = {}
    in_section = False
    for lineno, line in enumerate(markdown.splitlines(), start=1):
        if line.startswith("## "):
            in_section = line.strip().lower() == "## counter glossary"
            continue
        if not in_section or not line.lstrip().startswith("|"):
            continue
        cells = line.split("|")
        if len(cells) < 2:
            continue
        first_cell = cells[1]
        for name in _NAME_RE.findall(first_cell):
            names.setdefault(name, lineno)
    return names


def _receiver_is_counters(node: ast.expr) -> bool:
    """True for ``counters.…`` / ``self.counters.…`` / ``result.counters.…``."""
    if isinstance(node, ast.Name):
        return node.id == "counters" or node.id.endswith("_counters")
    if isinstance(node, ast.Attribute):
        return node.attr == "counters" or node.attr.endswith("_counters")
    return False


class CounterGlossaryChecker(Checker):
    rule_id = "RPA005"
    title = "counter names match the ARCHITECTURE counter glossary"
    contract = (
        "Every string literal passed to counters.increment()/set() appears in "
        "docs/ARCHITECTURE.md's Counter glossary, and every glossary entry is "
        "still incremented somewhere in src/repro."
    )
    include = ("src/repro/**",)
    exclude = ("src/repro/analysis/**",)

    def __init__(self) -> None:
        self.used_names: Set[str] = set()
        self._glossary: Optional[Dict[str, int]] = None
        self._glossary_rel: str = "docs/ARCHITECTURE.md"
        self._glossary_missing = False

    def _load_glossary(self, project: object) -> Dict[str, int]:
        if self._glossary is None:
            config = getattr(project, "config", None)
            rel = getattr(config, "glossary_path", "docs/ARCHITECTURE.md")
            root = getattr(config, "root", None)
            self._glossary_rel = rel
            path = (root / rel) if root is not None else None
            if path is None or not path.is_file():
                self._glossary = {}
                self._glossary_missing = True
            else:
                self._glossary = parse_glossary(path.read_text(encoding="utf-8"))
        return self._glossary

    # The glossary lives outside any FileContext, so both directions run in
    # finalize(); check_file only collects call sites.
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        self.call_sites = getattr(self, "call_sites", [])
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _COUNTER_METHODS
                and _receiver_is_counters(func.value)
            ):
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
                self.call_sites.append((name_arg.value, ctx, node))
                self.used_names.add(name_arg.value)
            else:
                self.call_sites.append((None, ctx, node))
        return ()

    def finalize(self, project: object) -> Iterable[Finding]:
        glossary = self._load_glossary(project)
        findings: List[Finding] = []
        if self._glossary_missing:
            return [
                Finding(
                    rule=self.rule_id,
                    path=self._glossary_rel,
                    line=1,
                    col=1,
                    message="counter glossary document not found",
                    hint="RPA005 reconciles counter names against this file",
                )
            ]
        sites: List[Tuple[Optional[str], FileContext, ast.Call]] = getattr(
            self, "call_sites", []
        )
        for name, ctx, node in sites:
            if name is None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "counter name is not a string literal — invisible to the glossary audit",
                        "pass a literal name (build variants as separate literal counters)",
                    )
                )
            elif name not in glossary:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"counter `{name}` is not documented in the counter glossary",
                        f"add a `{name}` row to {self._glossary_rel} (## Counter glossary)",
                    )
                )
        for name, lineno in sorted(glossary.items()):
            if name not in self.used_names:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=self._glossary_rel,
                        line=lineno,
                        col=1,
                        message=f"glossary documents counter `{name}` but nothing increments it",
                        hint="remove the stale row or restore the counter",
                    )
                )
        return findings

"""RPA002 — no hash-order-dependent iteration on ranking/wire paths.

Python ``set`` iteration order depends on insertion history and (for strings,
pre-``PYTHONHASHSEED`` pinning) hash randomization.  Rankings, signatures and
wire envelopes are bit-identity surfaces (PR 3's executor-independent
tie-breaking, PR 4's shard-merge identity, PR 5's codecs), so in ``mapping/``,
``shard/`` and ``api/`` any iteration that *materializes an order* out of a
set — or out of a bare ``.keys()`` view — must pin that order with
``sorted(...)``.  Plain dict iteration is insertion-ordered and allowed; the
rule targets the constructs whose order is not a documented property of the
code that built them.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.core import Checker, FileContext, Finding

_HINT = "wrap the iterable in sorted(...) so the realized order is pinned, not hash-dependent"

#: Wrappers we see through when inspecting a loop's iterable: the order of
#: `enumerate(set(...))` is exactly the order of the inner set.  Order-
#: insensitive consumers (sorted/min/max/sum/any/all/len) are never flagged.
_TRANSPARENT_WRAPPERS = ("enumerate", "reversed", "list", "tuple", "iter")


def _bare_set_expr(node: ast.expr) -> Optional[str]:
    """Describe ``node`` if it is an expression of set type, else None."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # Set algebra on set expressions (s1 | {x}) stays a set.
        left, right = _bare_set_expr(node.left), _bare_set_expr(node.right)
        if left or right:
            return left or right
    return None


def _keys_view(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


class HashOrderChecker(Checker):
    rule_id = "RPA002"
    title = "hash-order dependence on ranking/signature/wire paths"
    contract = (
        "In mapping/, shard/, api/ and ingest/, iteration that realizes an "
        "order out of a set expression or a bare dict .keys() view must go "
        "through sorted(...) — rankings, signatures, wire output and frozen "
        "snapshots are bit-identity surfaces and may not inherit "
        "hash/insertion order."
    )
    include = (
        "src/repro/mapping/**",
        "src/repro/shard/**",
        "src/repro/api/**",
        "src/repro/ingest/**",
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                findings.extend(self._check_iterable(ctx, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    findings.extend(self._check_iterable(ctx, generator.iter))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_materializing_call(ctx, node))
        return findings

    def _check_iterable(self, ctx: FileContext, iterable: ast.expr) -> Iterable[Finding]:
        # See through order-preserving wrappers: enumerate(set(...)) is as
        # hash-ordered as the set itself.
        while (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in _TRANSPARENT_WRAPPERS
            and iterable.args
        ):
            iterable = iterable.args[0]
        described = _bare_set_expr(iterable)
        if described is not None:
            yield self.finding(
                ctx, iterable, f"iteration over a bare {described} realizes hash order", _HINT
            )
        elif _keys_view(iterable):
            yield self.finding(
                ctx,
                iterable,
                "iteration over a bare .keys() view on a bit-identity path",
                _HINT + " (or iterate the mapping itself if insertion order is the contract)",
            )

    def _check_materializing_call(self, ctx: FileContext, node: ast.Call) -> Iterable[Finding]:
        # list(set(...)), tuple({...}), ", ".join(set(...)) bake hash order
        # into an ordered value even outside a loop.
        func = node.func
        materializes = (
            isinstance(func, ast.Name) and func.id in ("list", "tuple")
        ) or (isinstance(func, ast.Attribute) and func.attr == "join")
        if not materializes or len(node.args) != 1:
            return
        described = _bare_set_expr(node.args[0])
        if described is not None:
            label = func.id if isinstance(func, ast.Name) else "str.join"
            yield self.finding(
                ctx,
                node,
                f"`{label}` over a bare {described} bakes hash order into an ordered value",
                _HINT,
            )

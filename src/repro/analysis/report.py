"""Findings report: human-readable text and a stable JSON schema.

The JSON form is what CI archives (``--format json``); its schema is
versioned by :data:`REPORT_SCHEMA_VERSION` and round-trips through
:func:`report_from_json` (pinned by tests), so downstream tooling can diff
reports across commits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.core import Finding

REPORT_SCHEMA_VERSION = 1


@dataclass
class Report:
    """Outcome of one analysis run."""

    root: str
    rules: List[str]
    files_checked: int
    findings: List[Finding]
    suppressed: List[Tuple[Finding, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    # -- rendering -----------------------------------------------------------

    def to_human(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(f"{finding.location()}: {finding.rule}: {finding.message}")
            if finding.hint:
                lines.append(f"    hint: {finding.hint}")
        if self.suppressed:
            lines.append("")
            lines.append(f"{len(self.suppressed)} suppressed finding(s):")
            for finding, justification in self.suppressed:
                lines.append(
                    f"  {finding.location()}: {finding.rule} allowed — {justification}"
                )
        lines.append("")
        summary = ", ".join(f"{rule}={n}" for rule, n in sorted(self.counts_by_rule().items()))
        lines.append(
            f"checked {self.files_checked} file(s) under {self.root}: "
            + (f"{len(self.findings)} finding(s) [{summary}]" if self.findings else "clean")
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "root": self.root,
            "rules": list(self.rules),
            "files_checked": self.files_checked,
            "ok": self.ok,
            "counts": self.counts_by_rule(),
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [
                {**finding.to_json(), "justification": justification}
                for finding, justification in self.suppressed
            ],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)


def report_from_json(payload: object) -> Report:
    """Rebuild a :class:`Report` from its JSON form (schema-checked)."""
    if not isinstance(payload, dict):
        raise ValueError(f"report payload must be an object, got {type(payload).__name__}")
    version = payload.get("schema_version")
    if version != REPORT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported report schema version {version!r} (this build reads v{REPORT_SCHEMA_VERSION})"
        )
    findings = [Finding.from_json(entry) for entry in payload.get("findings", [])]
    suppressed = [
        (Finding.from_json(entry), str(entry.get("justification", "")))
        for entry in payload.get("suppressed", [])
    ]
    return Report(
        root=str(payload.get("root", "")),
        rules=[str(rule) for rule in payload.get("rules", [])],
        files_checked=int(payload.get("files_checked", 0)),  # type: ignore[arg-type]
        findings=findings,
        suppressed=suppressed,
    )

"""Figure 4: cluster-size distribution for different reclustering techniques.

The experiment clusters one matching problem's mapping elements three times —
with no reclustering, with join reclustering, and with join & remove — and
reports the number of clusters falling into the exponential size buckets
[1,1], [2,3], [4,7], ... that the paper's bar chart uses.  The headline
qualitative result: join eliminates most tiny clusters, join & remove
eliminates them entirely, and the total cluster count drops accordingly
(paper: 579 → 333 → 243).

Run standalone with ``python -m repro.experiments.figure4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.clustering.convergence import RelaxedConvergence
from repro.clustering.initialization import MEminInitializer
from repro.clustering.kmeans import KMeansClusterer
from repro.clustering.reclustering import (
    JoinReclustering,
    NoReclustering,
    ReclusteringStrategy,
    join_and_remove,
)
from repro.experiments.config import ExperimentConfig, ExperimentWorkload, build_workload
from repro.utils.histogram import Histogram, exponential_buckets
from repro.utils.tables import AsciiTable


@dataclass
class Figure4Series:
    """One bar series of Figure 4."""

    strategy_name: str
    cluster_count: int
    histogram: Dict[str, int]


@dataclass
class Figure4Result:
    config: ExperimentConfig
    series: List[Figure4Series]

    def render(self) -> str:
        labels = list(self.series[0].histogram) if self.series else []
        table = AsciiTable(
            ["cluster size"] + [f"{s.strategy_name} ({s.cluster_count})" for s in self.series],
            title="Figure 4 — cluster size distribution per reclustering technique",
        )
        for label in labels:
            table.add_row([label] + [series.histogram.get(label, 0) for series in self.series])
        return table.render()


def _strategies(join_threshold: float) -> Dict[str, ReclusteringStrategy]:
    return {
        "no reclustering": NoReclustering(),
        "join": JoinReclustering(distance_threshold=join_threshold),
        "join & remove": join_and_remove(distance_threshold=join_threshold, min_size=2),
    }


def run(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
    join_threshold: float = 3.0,
    max_bucket: int = 255,
) -> Figure4Result:
    """Cluster the shared workload under each reclustering strategy."""
    config = config or ExperimentConfig.paper_scale()
    workload = workload or build_workload(config)

    series: List[Figure4Series] = []
    for strategy_name, strategy in _strategies(join_threshold).items():
        clusterer = KMeansClusterer(
            initializer=MEminInitializer(),
            reclustering=strategy,
            convergence=RelaxedConvergence(),
        )
        clustering = clusterer.cluster(workload.candidates, workload.repository)
        histogram = Histogram(exponential_buckets(max_bucket))
        histogram.add_all(clustering.clusters.mapping_element_sizes(workload.candidates))
        series.append(
            Figure4Series(
                strategy_name=strategy_name,
                cluster_count=clustering.clusters.cluster_count,
                histogram=histogram.as_dict(),
            )
        )
    return Figure4Result(config=config, series=series)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.paper_scale()).render())


if __name__ == "__main__":  # pragma: no cover
    main()

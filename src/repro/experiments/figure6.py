"""Figure 6: correlation of clustering and the objective function.

The clustering distance measure is path-length based, so it is tuned for
objective functions in which the path hint matters.  The experiment solves the
same matching problem with three objective functions that differ only in the
``α`` weight (0.25, 0.50, 0.75) — always using the *medium* clustering variant —
and measures the preservation curve of each.  Expected shape: the smaller the
α (the more the objective relies on path length), the better the clustering
preserves its mappings.

Run standalone with ``python -m repro.experiments.figure6``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig, ExperimentWorkload, build_workload
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.system.bellflower import Bellflower
from repro.system.metrics import PreservationPoint, preservation_curve
from repro.system.results import MatchResult
from repro.system.variants import clustering_variant
from repro.utils.tables import AsciiTable, format_percent

DEFAULT_ALPHAS: Sequence[float] = (0.25, 0.50, 0.75)
DEFAULT_THRESHOLDS: Sequence[float] = (0.75, 0.80, 0.85, 0.90, 0.95, 1.00)


@dataclass
class Figure6Result:
    config: ExperimentConfig
    alphas: List[float]
    thresholds: List[float]
    curves: Dict[float, List[PreservationPoint]]
    clustered_results: Dict[float, MatchResult]
    reference_results: Dict[float, MatchResult]

    def fractions(self, alpha: float) -> List[float]:
        return [point.fraction for point in self.curves[alpha]]

    def mean_preservation(self, alpha: float) -> float:
        points = self.curves[alpha]
        return sum(point.fraction for point in points) / len(points) if points else 0.0

    def render(self) -> str:
        table = AsciiTable(
            ["delta threshold"] + [f"alpha={alpha:.2f}" for alpha in self.alphas],
            title="Figure 6 — preservation for different objective functions (medium clusters)",
        )
        for index, threshold in enumerate(self.thresholds):
            table.add_row(
                [f"{threshold:.2f}"]
                + [format_percent(self.curves[alpha][index].fraction) for alpha in self.alphas]
            )
        return table.render()


def run(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    variant_name: str = "medium",
) -> Figure6Result:
    """Run the α-sensitivity experiment with the given clustering variant."""
    config = config or ExperimentConfig.paper_scale()
    workload = workload or build_workload(config)

    curves: Dict[float, List[PreservationPoint]] = {}
    clustered_results: Dict[float, MatchResult] = {}
    reference_results: Dict[float, MatchResult] = {}
    for alpha in alphas:
        objective = config.objective(alpha=alpha)
        clustered_system = Bellflower(
            workload.repository,
            objective=objective,
            generator=BranchAndBoundGenerator(),
            clusterer=clustering_variant(variant_name).make_clusterer(),
            element_threshold=config.element_threshold,
            delta=config.delta,
            variant_name=f"{variant_name}-alpha-{alpha}",
        )
        reference_system = Bellflower(
            workload.repository,
            objective=objective,
            generator=BranchAndBoundGenerator(),
            clusterer=clustering_variant("tree").make_clusterer(),
            element_threshold=config.element_threshold,
            delta=config.delta,
            variant_name=f"tree-alpha-{alpha}",
        )
        clustered = clustered_system.match(
            workload.personal_schema, delta=config.delta, candidates=workload.candidates
        )
        reference = reference_system.match(
            workload.personal_schema, delta=config.delta, candidates=workload.candidates
        )
        clustered_results[alpha] = clustered
        reference_results[alpha] = reference
        curves[alpha] = preservation_curve(reference.mappings, clustered.mappings, thresholds)

    return Figure6Result(
        config=config,
        alphas=list(alphas),
        thresholds=sorted(thresholds),
        curves=curves,
        clustered_results=clustered_results,
        reference_results=reference_results,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.paper_scale()).render())


if __name__ == "__main__":  # pragma: no cover
    main()

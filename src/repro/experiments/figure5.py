"""Figure 5: percentage of preserved mappings per objective threshold.

The non-clustered ("tree clusters") run finds every mapping with ``Δ >= δ``;
clustered runs lose some of them.  The experiment measures, for thresholds
δ' ∈ [0.75, 1.0], the fraction of the non-clustered mappings with ``Δ >= δ'``
that each clustering variant also discovers.  The paper's qualitative claims,
which the assertions in the test suite check:

* the tree-cluster line is constant at 100 %;
* every clustered variant preserves a larger fraction at higher thresholds
  (high-ranked mappings are preserved preferentially);
* smaller clusters (larger search-space reductions) preserve less.

Run standalone with ``python -m repro.experiments.figure5``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig, ExperimentWorkload, build_workload
from repro.experiments.table1 import Table1Result, run as run_table1
from repro.system.metrics import PreservationPoint, preservation_curve
from repro.utils.tables import AsciiTable, format_percent

DEFAULT_THRESHOLDS: Sequence[float] = (0.75, 0.80, 0.85, 0.90, 0.95, 1.00)


@dataclass
class Figure5Result:
    config: ExperimentConfig
    thresholds: List[float]
    curves: Dict[str, List[PreservationPoint]]
    table1: Table1Result

    def fractions(self, variant: str) -> List[float]:
        return [point.fraction for point in self.curves[variant]]

    def render(self) -> str:
        table = AsciiTable(
            ["delta threshold"] + list(self.curves),
            title="Figure 5 — percentage of preserved mappings per clustering variant",
        )
        for index, threshold in enumerate(self.thresholds):
            table.add_row(
                [f"{threshold:.2f}"]
                + [format_percent(self.curves[variant][index].fraction) for variant in self.curves]
            )
        return table.render()


def run(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    table1: Optional[Table1Result] = None,
) -> Figure5Result:
    """Compute preservation curves for every clustering variant.

    Reuses a Table 1 run when provided (the matching runs are identical), which
    is how the benchmark harness avoids repeating the expensive searches.
    """
    config = config or ExperimentConfig.paper_scale()
    workload = workload or build_workload(config)
    table1 = table1 or run_table1(config, workload)

    reference = table1.results["tree"]
    curves: Dict[str, List[PreservationPoint]] = {}
    for variant_name in config.variant_names:
        curves[variant_name] = preservation_curve(
            reference.mappings, table1.results[variant_name].mappings, thresholds
        )
    return Figure5Result(
        config=config,
        thresholds=sorted(thresholds),
        curves=curves,
        table1=table1,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.paper_scale()).render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""A small registry that maps experiment ids to their runners.

The registry lets scripts, the README and the benchmark harness refer to
experiments by the paper's artefact name (``table1``, ``figure5`` ...), and is
the basis of ``python -m repro.experiments.harness`` which runs everything and
prints every table in one go — the closest thing to "reproduce the evaluation
section" in a single command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ExperimentError
from repro.experiments import ablations, figure4, figure5, figure6, table1
from repro.experiments.config import ExperimentConfig, ExperimentWorkload, build_workload


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: id, description, and a runner."""

    experiment_id: str
    description: str
    runner: Callable[[ExperimentConfig, ExperimentWorkload], object]


class ExperimentRegistry:
    """Registry of paper artefacts to experiment runners."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> None:
        if spec.experiment_id in self._specs:
            raise ExperimentError(f"experiment {spec.experiment_id!r} is already registered")
        self._specs[spec.experiment_id] = spec

    def get(self, experiment_id: str) -> ExperimentSpec:
        try:
            return self._specs[experiment_id]
        except KeyError as exc:
            raise ExperimentError(
                f"unknown experiment {experiment_id!r}; available: {sorted(self._specs)}"
            ) from exc

    def ids(self) -> List[str]:
        return sorted(self._specs)

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self._specs


registry = ExperimentRegistry()
registry.register(
    ExperimentSpec(
        experiment_id="table1",
        description="Table 1a/1b: cluster properties and mapping-generator performance",
        runner=lambda config, workload: table1.run(config, workload),
    )
)
registry.register(
    ExperimentSpec(
        experiment_id="figure4",
        description="Figure 4: cluster-size distribution per reclustering technique",
        runner=lambda config, workload: figure4.run(config, workload),
    )
)
registry.register(
    ExperimentSpec(
        experiment_id="figure5",
        description="Figure 5: preserved mappings per threshold and clustering variant",
        runner=lambda config, workload: figure5.run(config, workload),
    )
)
registry.register(
    ExperimentSpec(
        experiment_id="figure6",
        description="Figure 6: preservation for objective functions with different alpha",
        runner=lambda config, workload: figure6.run(config, workload),
    )
)
registry.register(
    ExperimentSpec(
        experiment_id="ablations",
        description="Design-choice ablations (seeding, distance, generator, cluster ordering)",
        runner=lambda config, workload: ablations.run_all(config, workload),
    )
)


def run_experiment(
    experiment_id: str,
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
) -> object:
    """Run one registered experiment and return its result object."""
    config = config or ExperimentConfig.paper_scale()
    workload = workload or build_workload(config)
    return registry.get(experiment_id).runner(config, workload)


def main() -> None:  # pragma: no cover - CLI convenience
    config = ExperimentConfig.paper_scale()
    workload = build_workload(config)
    for experiment_id in registry.ids():
        spec = registry.get(experiment_id)
        print(f"=== {experiment_id}: {spec.description}")
        result = spec.runner(config, workload)
        render = getattr(result, "render", None)
        if callable(render):
            print(render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()

"""Ablation experiments for the design choices called out in DESIGN.md.

These go beyond the paper's published evaluation and quantify the impact of:

* **centroid seeding** — MEmin (paper) vs. random vs. per-tree;
* **clustering distance** — path length (paper) vs. a blend of path length and
  name dissimilarity (the paper's future-work item 3);
* **mapping generator** — Branch-and-Bound vs. exhaustive DFS vs. beam search
  vs. A* on identical clusters;
* **bounding function** — B&B with and without pruning;
* **cluster ordering** — quality-ordered clusters vs. arbitrary order, measured
  as the number of partial mappings generated before the overall best mapping
  is found (the paper's "time-to-first good mapping" future-work item).

Run standalone with ``python -m repro.experiments.ablations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.clustering.convergence import RelaxedConvergence
from repro.clustering.distance import BlendedDistance, PathLengthDistance
from repro.clustering.initialization import MEminInitializer, PerTreeInitializer, RandomInitializer
from repro.clustering.kmeans import KMeansClusterer
from repro.clustering.quality import order_clusters_by_quality
from repro.clustering.reclustering import join_and_remove
from repro.experiments.config import ExperimentConfig, ExperimentWorkload, build_workload
from repro.labeling.distance import RepositoryDistanceOracle
from repro.mapping.astar import AStarGenerator
from repro.mapping.beam import BeamSearchGenerator
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.exhaustive import ExhaustiveGenerator
from repro.mapping.model import MappingProblem
from repro.system.bellflower import Bellflower
from repro.system.metrics import preservation_curve
from repro.system.variants import clustering_variant
from repro.utils.tables import AsciiTable


@dataclass
class AblationRow:
    """One configuration of one ablation."""

    ablation: str
    configuration: str
    metrics: Dict[str, object]


@dataclass
class AblationResult:
    config: ExperimentConfig
    rows: List[AblationRow] = field(default_factory=list)

    def rows_for(self, ablation: str) -> List[AblationRow]:
        return [row for row in self.rows if row.ablation == ablation]

    def render(self) -> str:
        sections = []
        for ablation in sorted({row.ablation for row in self.rows}):
            rows = self.rows_for(ablation)
            metric_names = sorted({key for row in rows for key in row.metrics})
            table = AsciiTable(["configuration"] + metric_names, title=f"Ablation — {ablation}")
            for row in rows:
                table.add_row([row.configuration] + [row.metrics.get(name, "") for name in metric_names])
            sections.append(table.render())
        return "\n\n".join(sections)


def _match_with_clusterer(workload: ExperimentWorkload, config: ExperimentConfig, clusterer, name: str):
    system = Bellflower(
        workload.repository,
        objective=config.objective(),
        generator=BranchAndBoundGenerator(),
        clusterer=clusterer,
        element_threshold=config.element_threshold,
        delta=config.delta,
        variant_name=name,
    )
    return system.match(workload.personal_schema, delta=config.delta, candidates=workload.candidates)


def run_seeding_ablation(workload: ExperimentWorkload, config: ExperimentConfig, result: AblationResult) -> None:
    """MEmin vs. random vs. per-tree centroid seeding."""
    reference = _match_with_clusterer(
        workload, config, clustering_variant("tree").make_clusterer(), "tree"
    )
    initializers = {
        "me-min (paper)": MEminInitializer(),
        "random (200 centroids)": RandomInitializer(centroid_count=200, seed=config.seed),
        "per-tree (2 per tree)": PerTreeInitializer(centroids_per_tree=2, seed=config.seed),
    }
    for label, initializer in initializers.items():
        clusterer = KMeansClusterer(
            initializer=initializer,
            reclustering=join_and_remove(distance_threshold=3.0),
            convergence=RelaxedConvergence(),
        )
        clustered = _match_with_clusterer(workload, config, clusterer, f"seeding-{label}")
        preservation = preservation_curve(reference.mappings, clustered.mappings, (config.delta, 0.9))
        result.rows.append(
            AblationRow(
                ablation="centroid seeding",
                configuration=label,
                metrics={
                    "useful_clusters": clustered.useful_cluster_count,
                    "search_space": clustered.search_space,
                    "mappings": clustered.mapping_count,
                    "preserved_at_delta": round(preservation[0].fraction, 3),
                    "preserved_at_0.9": round(preservation[-1].fraction, 3),
                },
            )
        )


def run_distance_ablation(workload: ExperimentWorkload, config: ExperimentConfig, result: AblationResult) -> None:
    """Path-length distance vs. blended (path + name) distance."""
    reference = _match_with_clusterer(
        workload, config, clustering_variant("tree").make_clusterer(), "tree"
    )
    oracle = RepositoryDistanceOracle(workload.repository)
    distances = {
        "path length (paper)": PathLengthDistance(oracle),
        "blended path+name": BlendedDistance(oracle, workload.repository, path_weight=0.7),
    }
    for label, distance in distances.items():
        clusterer = KMeansClusterer(
            initializer=MEminInitializer(),
            reclustering=join_and_remove(distance_threshold=3.0),
            convergence=RelaxedConvergence(),
            distance=distance,
        )
        clustered = _match_with_clusterer(workload, config, clusterer, f"distance-{label}")
        preservation = preservation_curve(reference.mappings, clustered.mappings, (config.delta, 0.9))
        result.rows.append(
            AblationRow(
                ablation="clustering distance",
                configuration=label,
                metrics={
                    "useful_clusters": clustered.useful_cluster_count,
                    "search_space": clustered.search_space,
                    "preserved_at_delta": round(preservation[0].fraction, 3),
                    "preserved_at_0.9": round(preservation[-1].fraction, 3),
                },
            )
        )


def run_generator_ablation(workload: ExperimentWorkload, config: ExperimentConfig, result: AblationResult) -> None:
    """B&B vs. exhaustive vs. beam vs. A* on the same (medium) clusters."""
    generators = {
        "branch-and-bound (paper)": BranchAndBoundGenerator(),
        "b&b without bounding": BranchAndBoundGenerator(use_bounding=False),
        "exhaustive": ExhaustiveGenerator(),
        "beam (width 50)": BeamSearchGenerator(beam_width=50),
        "a-star": AStarGenerator(),
    }
    for label, generator in generators.items():
        system = Bellflower(
            workload.repository,
            objective=config.objective(),
            generator=generator,
            clusterer=clustering_variant("medium").make_clusterer(),
            element_threshold=config.element_threshold,
            delta=config.delta,
            variant_name=f"generator-{label}",
        )
        run = system.match(workload.personal_schema, delta=config.delta, candidates=workload.candidates)
        result.rows.append(
            AblationRow(
                ablation="mapping generator",
                configuration=label,
                metrics={
                    "partial_mappings": run.partial_mappings,
                    "mappings": run.mapping_count,
                    "generation_seconds": round(run.generation_seconds, 3),
                },
            )
        )


def run_cluster_ordering_ablation(
    workload: ExperimentWorkload, config: ExperimentConfig, result: AblationResult
) -> None:
    """Quality-ordered clusters vs. arbitrary order: partial mappings until the best mapping."""
    clusterer = clustering_variant("medium").make_clusterer()
    clustering = clusterer.cluster(workload.candidates, workload.repository)
    oracle = RepositoryDistanceOracle(workload.repository)
    objective = config.objective()
    generator = BranchAndBoundGenerator()

    useful = clustering.clusters.useful_clusters(workload.candidates)
    ordered = [cluster for cluster, _ in order_clusters_by_quality(useful, workload.candidates, objective)]
    arbitrary = sorted(useful, key=lambda cluster: cluster.cluster_id)

    def best_score_and_cost(clusters) -> Dict[str, object]:
        best = 0.0
        cost_until_best = 0
        cost_total = 0
        for cluster in clusters:
            problem = MappingProblem(
                personal_schema=workload.personal_schema,
                candidates=cluster.restricted_candidates(workload.candidates),
                oracle=oracle,
                objective=objective,
                delta=config.delta,
                cluster_id=cluster.cluster_id,
            )
            generated = generator.generate(problem)
            cost_total += generated.partial_mappings
            if generated.mappings and generated.mappings[0].score > best:
                best = generated.mappings[0].score
                cost_until_best = cost_total
        return {
            "best_score": round(best, 3),
            "partials_until_best": cost_until_best,
            "partials_total": cost_total,
        }

    result.rows.append(
        AblationRow(
            ablation="cluster ordering",
            configuration="quality-ordered",
            metrics=best_score_and_cost(ordered),
        )
    )
    result.rows.append(
        AblationRow(
            ablation="cluster ordering",
            configuration="arbitrary order",
            metrics=best_score_and_cost(arbitrary),
        )
    )


def run_all(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
) -> AblationResult:
    """Run every ablation against one shared workload."""
    config = config or ExperimentConfig.quick()
    workload = workload or build_workload(config)
    result = AblationResult(config=config)
    run_seeding_ablation(workload, config, result)
    run_distance_ablation(workload, config, result)
    run_generator_ablation(workload, config, result)
    run_cluster_ordering_ablation(workload, config, result)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_all(ExperimentConfig.quick()).render())


if __name__ == "__main__":  # pragma: no cover
    main()

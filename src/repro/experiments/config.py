"""Experiment configuration and shared workload construction.

All experiment modules share one configuration object so that Table 1 and
Figures 4-6 run against the *same* repository, personal schema and element
matching result — exactly as in the paper, where a single matching problem is
analysed from several angles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.matchers.name import FuzzyNameMatcher
from repro.matchers.selection import MappingElementSelector, MappingElementSets
from repro.objective.bellflower import BellflowerObjective
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree
from repro.utils.counters import CounterSet
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import paper_personal_schema


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by all experiments.

    The defaults of :meth:`paper_scale` mirror the paper's main experiment: a
    repository of roughly 9 750 elements, the three-node *name / address /
    email* personal schema, δ = 0.75 and α = 0.5.
    """

    repository_nodes: int = 9750
    min_tree_size: int = 20
    max_tree_size: int = 220
    max_tree_depth: int = 8
    element_threshold: float = 0.4
    delta: float = 0.75
    alpha: float = 0.5
    path_normalization: float = 4.0
    seed: int = 20060403
    variant_names: Sequence[str] = ("small", "medium", "large", "tree")

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The configuration used to regenerate the paper's numbers."""
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A scaled-down configuration for tests and fast benchmark runs."""
        return cls(repository_nodes=2500, min_tree_size=15, max_tree_size=120)

    def repository_profile(self) -> RepositoryProfile:
        return RepositoryProfile(
            target_node_count=self.repository_nodes,
            min_tree_size=self.min_tree_size,
            max_tree_size=self.max_tree_size,
            max_depth=self.max_tree_depth,
            seed=self.seed,
            name=f"experiment-repository-{self.repository_nodes}",
        )

    def objective(self, alpha: Optional[float] = None) -> BellflowerObjective:
        return BellflowerObjective(
            alpha=self.alpha if alpha is None else alpha,
            path_normalization=self.path_normalization,
        )


@dataclass
class ExperimentWorkload:
    """The materialized workload every experiment runs against.

    Building the repository and running the element-matching stage are the two
    expensive setup steps; the workload caches both so that each experiment
    (and each clustering variant within an experiment) reuses them.
    """

    config: ExperimentConfig
    repository: SchemaRepository
    personal_schema: SchemaTree
    candidates: MappingElementSets
    element_counters: CounterSet = field(default_factory=CounterSet)

    @property
    def mapping_element_count(self) -> int:
        return self.candidates.total()


def build_workload(
    config: Optional[ExperimentConfig] = None,
    personal_schema: Optional[SchemaTree] = None,
    use_batch: Optional[bool] = None,
) -> ExperimentWorkload:
    """Generate the repository and run element matching once.

    The element stage runs through the batch (indexed) selector by default;
    ``use_batch=False`` forces the naive per-pair scan (the two are
    output-identical, so every experiment sees the same candidates either
    way).  The stage's counters — including the batch path's
    ``comparisons_pruned`` and ``index_hits`` — are kept on the workload for
    reports and benchmarks.
    """
    config = config or ExperimentConfig.paper_scale()
    repository = RepositoryGenerator(config.repository_profile()).generate()
    schema = personal_schema or paper_personal_schema()
    selector = MappingElementSelector(
        FuzzyNameMatcher(), threshold=config.element_threshold, use_batch=use_batch
    )
    counters = CounterSet()
    candidates = selector.select(schema, repository, counters=counters)
    return ExperimentWorkload(
        config=config,
        repository=repository,
        personal_schema=schema,
        candidates=candidates,
        element_counters=counters,
    )

"""Experiment harness: regenerate every table and figure of the paper's evaluation.

Each module reproduces one artefact:

* :mod:`repro.experiments.table1`  — Table 1a (properties of clusters) and
  Table 1b (mapping-generator performance) for the small / medium / large /
  tree clustering variants;
* :mod:`repro.experiments.figure4` — cluster-size distributions under the three
  reclustering strategies (no reclustering, join, join & remove);
* :mod:`repro.experiments.figure5` — percentage of preserved mappings per
  objective-function threshold for the clustering variants;
* :mod:`repro.experiments.figure6` — preserved-mapping curves for objective
  functions with α ∈ {0.25, 0.50, 0.75};
* :mod:`repro.experiments.ablations` — the design-choice ablations listed in
  DESIGN.md (centroid seeding, distance measure, generator, cluster ordering).

Every module exposes a ``run(config)`` function returning a plain-data result
object and can be executed directly (``python -m repro.experiments.table1``) to
print the corresponding table.  ``ExperimentConfig.paper_scale()`` mirrors the
paper's workload (a ~9 750-element repository and the *name/address/email*
personal schema); ``ExperimentConfig.quick()`` is a smaller configuration used
by the test suite and the default benchmark profile.
"""

from repro.experiments.config import ExperimentConfig, ExperimentWorkload, build_workload
from repro.experiments.harness import ExperimentRegistry, registry, run_experiment
from repro.experiments.table1 import Table1Result, run as run_table1
from repro.experiments.figure4 import Figure4Result, run as run_figure4
from repro.experiments.figure5 import Figure5Result, run as run_figure5
from repro.experiments.figure6 import Figure6Result, run as run_figure6
from repro.experiments.ablations import AblationResult, run_all as run_ablations

__all__ = [
    "AblationResult",
    "ExperimentConfig",
    "ExperimentRegistry",
    "ExperimentWorkload",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "Table1Result",
    "build_workload",
    "registry",
    "run_ablations",
    "run_experiment",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_table1",
]

"""Schema-mapping model and mapping generators.

The mapping generator (step 4 of the paper's architecture) combines mapping
elements into complete schema mappings ``s -> t`` and ranks them by the
objective function.  The search space grows as ``O(|MEn|^|Ns|)``, so generators
matter: the paper's Bellflower uses Branch-and-Bound; related systems use beam
search (iMap) or A* (LSD).  All of them are implemented here behind one
interface, together with the exhaustive baseline used to verify completeness.
"""

from repro.mapping.model import MappingProblem, SchemaMapping
from repro.mapping.base import GenerationResult, MappingGenerator
from repro.mapping.engine import (
    BeamPolicy,
    BestFirstPolicy,
    DepthFirstPolicy,
    SearchPolicy,
    TopKPool,
    TreeSearchContext,
    run_search,
)
from repro.mapping.exhaustive import ExhaustiveGenerator
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.beam import BeamSearchGenerator
from repro.mapping.astar import AStarGenerator
from repro.mapping.partial import PartialMappingGenerator, PartialSchemaMapping, partial_mappings_for_cluster
from repro.mapping.ranking import merge_ranked, ranking_sort_key, top_n
from repro.mapping.search_space import (
    clustered_search_space,
    grouped_search_space,
    search_space_size,
    theoretical_reduction_factor,
)

__all__ = [
    "AStarGenerator",
    "BeamPolicy",
    "BeamSearchGenerator",
    "BestFirstPolicy",
    "BranchAndBoundGenerator",
    "DepthFirstPolicy",
    "ExhaustiveGenerator",
    "GenerationResult",
    "MappingGenerator",
    "MappingProblem",
    "PartialMappingGenerator",
    "PartialSchemaMapping",
    "SchemaMapping",
    "SearchPolicy",
    "TopKPool",
    "TreeSearchContext",
    "partial_mappings_for_cluster",
    "clustered_search_space",
    "grouped_search_space",
    "merge_ranked",
    "ranking_sort_key",
    "run_search",
    "search_space_size",
    "theoretical_reduction_factor",
    "top_n",
]

"""Partial schema mappings (the paper's future-work extension).

Strictly following Definition 2, a cluster can only produce schema mappings if
it contains at least one mapping element for *every* personal-schema node; the
paper notes that non-useful clusters could instead produce *partial* mappings —
"such partial mappings might, nevertheless, be valuable to the user" — and
leaves this as future research.

This module implements that extension.  A :class:`PartialSchemaMapping` maps a
subset of the personal-schema nodes; its score is the Bellflower objective
evaluated as if the uncovered nodes contributed zero name similarity (so a
partial mapping can never outrank a complete mapping with the same per-node
quality), and the path hint only considers personal edges whose two endpoints
are both covered.  :class:`PartialMappingGenerator` enumerates partial mappings
with a Branch-and-Bound search analogous to the complete-mapping generator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import MappingError
from repro.matchers.selection import MappingElement
from repro.mapping.base import GenerationResult
from repro.mapping.model import MappingProblem
from repro.mapping.support import incremental_path_edges
from repro.objective.bellflower import BellflowerObjective


@dataclass(frozen=True)
class PartialSchemaMapping:
    """A mapping of a subset of the personal schema's nodes.

    Attributes
    ----------
    assignment:
        Mapping elements for the covered personal nodes only.
    score:
        Objective value with uncovered nodes counted as zero-similarity.
    coverage:
        Fraction of personal nodes covered (1.0 would be a complete mapping).
    tree_id:
        Repository tree the mapping lives in.
    cluster_id:
        Cluster the mapping was generated from, if any.
    """

    assignment: Mapping[int, MappingElement]
    score: float
    coverage: float
    target_edge_count: int
    tree_id: int
    cluster_id: Optional[int] = None

    def covered_nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self.assignment))

    def signature(self) -> Tuple[Tuple[int, int], ...]:
        return tuple((node_id, element.ref.global_id) for node_id, element in sorted(self.assignment.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartialSchemaMapping(score={self.score:.3f}, coverage={self.coverage:.2f}, "
            f"nodes={self.covered_nodes()})"
        )


class PartialMappingGenerator:
    """Branch-and-Bound enumeration of partial mappings in (possibly non-useful) clusters.

    Parameters
    ----------
    min_coverage:
        Minimum fraction of personal nodes a partial mapping must cover to be
        reported (default: at least half, rounded up, so single-element
        "mappings" do not flood the result list).
    delta:
        Optional score threshold; defaults to the problem's ``delta`` scaled by
        the achievable coverage, because a partial mapping over k of n nodes can
        score at most ``α·k/n + (1-α)`` even with perfect matches.
    """

    name = "partial-branch-and-bound"

    def __init__(self, min_coverage: float = 0.5, delta: Optional[float] = None) -> None:
        if not 0.0 < min_coverage <= 1.0:
            raise MappingError(f"min_coverage must be in (0, 1], got {min_coverage}")
        self.min_coverage = min_coverage
        self.delta = delta

    def generate(self, problem: MappingProblem) -> Tuple[List[PartialSchemaMapping], GenerationResult]:
        """Enumerate partial mappings; returns (partial mappings, counters)."""
        if not isinstance(problem.objective, BellflowerObjective):
            raise MappingError("partial mapping generation requires a BellflowerObjective")
        started = time.perf_counter()
        result = GenerationResult()
        partials: List[PartialSchemaMapping] = []

        personal = problem.personal_schema
        node_count = personal.node_count
        min_nodes = max(1, int(round(self.min_coverage * node_count)))
        threshold = self.delta if self.delta is not None else 0.0

        # Group candidates per tree; unlike complete mappings, a tree qualifies
        # as soon as it has candidates for min_nodes personal nodes.
        per_tree: Dict[int, Dict[int, List[MappingElement]]] = {}
        for node_id, elements in problem.candidates:
            for element in elements:
                per_tree.setdefault(element.ref.tree_id, {}).setdefault(node_id, []).append(element)

        objective = problem.objective
        for tree_id in sorted(per_tree):
            groups = per_tree[tree_id]
            if len(groups) < min_nodes:
                continue
            covered_order = sorted(groups, key=lambda node_id: (len(groups[node_id]), node_id))
            for node_id in covered_order:
                groups[node_id].sort(key=lambda e: (-e.similarity, e.ref.global_id))
            self._search_tree(
                problem, objective, groups, covered_order, min_nodes, threshold, partials, result
            )

        partials.sort(key=lambda mapping: (-mapping.score, -mapping.coverage, mapping.signature()))
        result.elapsed_seconds = time.perf_counter() - started
        return partials, result

    # -- search -------------------------------------------------------------------

    def _score(
        self,
        problem: MappingProblem,
        objective: BellflowerObjective,
        assignment: Dict[int, MappingElement],
        path_edges: Set[int],
    ) -> float:
        """Objective value with uncovered nodes contributing zero similarity.

        Only personal edges with both endpoints covered contribute paths, which
        is exactly what ``path_edges`` accumulates; Δpath compares that union
        against the covered edge count so partially covered structure is not
        penalized for edges it never attempted to map.
        """
        personal = problem.personal_schema
        sim_total = sum(element.similarity for element in assignment.values())
        sim = sim_total / personal.node_count
        covered_edges = sum(
            1 for parent, child in problem.personal_edges() if parent in assignment and child in assignment
        )
        if covered_edges == 0:
            path = 1.0
        else:
            stretched = (len(path_edges) - covered_edges) / (covered_edges * objective.path_normalization)
            path = min(1.0, max(0.0, 1.0 - stretched))
        return objective.alpha * sim + (1.0 - objective.alpha) * path

    def _search_tree(
        self,
        problem: MappingProblem,
        objective: BellflowerObjective,
        groups: Dict[int, List[MappingElement]],
        order: List[int],
        min_nodes: int,
        threshold: float,
        partials: List[PartialSchemaMapping],
        result: GenerationResult,
    ) -> None:
        personal_node_count = problem.personal_schema.node_count
        assignment: Dict[int, MappingElement] = {}
        used_globals: Set[int] = set()
        path_edges: Set[int] = set()

        def emit() -> None:
            if len(assignment) < min_nodes:
                return
            score = self._score(problem, objective, assignment, path_edges)
            result.counters.increment("evaluated_partial_mappings")
            if score < threshold:
                return
            partials.append(
                PartialSchemaMapping(
                    assignment=dict(assignment),
                    score=score,
                    coverage=len(assignment) / personal_node_count,
                    target_edge_count=len(path_edges),
                    tree_id=next(iter(assignment.values())).ref.tree_id,
                    cluster_id=problem.cluster_id,
                )
            )

        def recurse(level: int) -> None:
            if level == len(order):
                emit()
                return
            node_id = order[level]
            # Option 1: leave this personal node uncovered (only if enough
            # remaining nodes can still reach the coverage floor).
            remaining_after = len(order) - level - 1
            if len(assignment) + remaining_after >= min_nodes:
                recurse(level + 1)
            # Option 2: assign one of its candidates.
            for element in groups[node_id]:
                if problem.require_injective and element.ref.global_id in used_globals:
                    continue
                added = incremental_path_edges(problem, assignment, node_id, element)
                new_edges = added - path_edges
                assignment[node_id] = element
                used_globals.add(element.ref.global_id)
                path_edges.update(new_edges)
                result.counters.increment("partial_mappings")
                recurse(level + 1)
                del assignment[node_id]
                used_globals.discard(element.ref.global_id)
                path_edges.difference_update(new_edges)

        recurse(0)


def partial_mappings_for_cluster(
    problem: MappingProblem,
    min_coverage: float = 0.5,
    delta: Optional[float] = None,
) -> List[PartialSchemaMapping]:
    """Convenience wrapper: the partial mappings of one cluster's problem."""
    generator = PartialMappingGenerator(min_coverage=min_coverage, delta=delta)
    partials, _ = generator.generate(problem)
    return partials

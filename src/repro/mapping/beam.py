"""Beam-search mapping generation (iMap-style baseline).

Beam search explores the assignment levels breadth-first but keeps only the
``beam_width`` most promising partial mappings (by optimistic bound) at every
level.  It is *not* complete: mappings can be lost when the beam is too narrow,
which makes it an interesting baseline to contrast with clustered matching —
both trade effectiveness for efficiency, but in different ways.

Since the unified search core (:mod:`repro.mapping.engine`) the class is a
thin policy binding over :class:`~repro.mapping.engine.BeamPolicy`; the
expansion step and bound evaluation are shared with the Branch-and-Bound and
A* generators.  Beam search is incomplete, so it deliberately opts *out* of
the shared top-``k`` incumbent pruning (its results would otherwise depend on
when other clusters raised the floor): in top-``k`` mode it keeps δ-only
pruning plus plain result truncation.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.mapping.base import GenerationResult, MappingGenerator
from repro.mapping.engine import BeamPolicy, run_search
from repro.mapping.model import MappingProblem


class BeamSearchGenerator(MappingGenerator):
    """Level-synchronous beam search over partial mappings."""

    name = "beam-search"

    def __init__(self, beam_width: int = 50) -> None:
        if beam_width < 1:
            raise MappingError(f"beam width must be positive, got {beam_width}")
        self.beam_width = beam_width

    def generate(self, problem: MappingProblem) -> GenerationResult:
        return run_search(problem, BeamPolicy(beam_width=self.beam_width))

"""Beam-search mapping generation (iMap-style baseline).

Beam search explores the assignment levels breadth-first but keeps only the
``beam_width`` most promising partial mappings (by optimistic bound) at every
level.  It is *not* complete: mappings can be lost when the beam is too narrow,
which makes it an interesting baseline to contrast with clustered matching —
both trade effectiveness for efficiency, but in different ways.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import MappingError
from repro.matchers.selection import MappingElement
from repro.mapping.base import GenerationResult, MappingGenerator
from repro.mapping.model import MappingProblem
from repro.mapping.support import candidates_by_tree, incremental_path_edges


@dataclass(frozen=True)
class _BeamState:
    assignment: Tuple[Tuple[int, MappingElement], ...]
    used_globals: FrozenSet[int]
    path_edges: FrozenSet[int]
    bound: float

    def as_dict(self) -> Dict[int, MappingElement]:
        return dict(self.assignment)


class BeamSearchGenerator(MappingGenerator):
    """Level-synchronous beam search over partial mappings."""

    name = "beam-search"

    def __init__(self, beam_width: int = 50) -> None:
        if beam_width < 1:
            raise MappingError(f"beam width must be positive, got {beam_width}")
        self.beam_width = beam_width

    def generate(self, problem: MappingProblem) -> GenerationResult:
        result = GenerationResult()
        started = time.perf_counter()
        order = problem.assignment_order()
        for tree_id, groups in sorted(candidates_by_tree(problem).items()):
            self._search_tree(problem, order, groups, result)
        result.elapsed_seconds = time.perf_counter() - started
        result.sort()
        return result

    def _search_tree(
        self,
        problem: MappingProblem,
        order: List[int],
        groups: Dict[int, List[MappingElement]],
        result: GenerationResult,
    ) -> None:
        best_similarity = {
            node_id: max(element.similarity for element in elements)
            for node_id, elements in groups.items()
        }
        beam: List[_BeamState] = [
            _BeamState(assignment=(), used_globals=frozenset(), path_edges=frozenset(), bound=1.0)
        ]

        for level, node_id in enumerate(order):
            remaining = {other: best_similarity[other] for other in order[level + 1 :]}
            next_states: List[_BeamState] = []
            for state in beam:
                assignment = state.as_dict()
                for element in groups[node_id]:
                    if problem.require_injective and element.ref.global_id in state.used_globals:
                        continue
                    added = incremental_path_edges(problem, assignment, node_id, element)
                    new_edges = state.path_edges | frozenset(added)
                    new_assignment = assignment | {node_id: element}
                    result.counters.increment("partial_mappings")
                    bound = problem.objective.bound(
                        problem.personal_schema, new_assignment, remaining, len(new_edges)
                    )
                    result.counters.increment("bound_evaluations")
                    if bound < problem.delta:
                        result.counters.increment("pruned_partial_mappings")
                        continue
                    next_states.append(
                        _BeamState(
                            assignment=tuple(sorted(new_assignment.items())),
                            used_globals=state.used_globals | {element.ref.global_id},
                            path_edges=new_edges,
                            bound=bound,
                        )
                    )
            # Keep the best states only; deterministic tie-break on the mapped ids.
            next_states.sort(key=lambda s: (-s.bound, tuple(e.ref.global_id for _, e in s.assignment)))
            dropped = max(0, len(next_states) - self.beam_width)
            if dropped:
                result.counters.increment("beam_dropped_states", dropped)
            beam = next_states[: self.beam_width]
            if not beam:
                return

        for state in beam:
            mapping = problem.evaluate(state.as_dict())
            result.counters.increment("evaluated_mappings")
            if mapping.score >= problem.delta:
                result.mappings.append(mapping)

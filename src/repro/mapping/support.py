"""Shared helpers for mapping generators.

Every generator walks the same state space: personal nodes are assigned in a
fixed order, candidates must come from a single repository tree, and (by
default) two personal nodes may not map to the same repository node.  The
helpers here group candidates by repository tree and order them so that all
generators explore deterministically.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.matchers.selection import MappingElement
from repro.mapping.model import MappingProblem


def candidates_by_tree(problem: MappingProblem) -> Dict[int, Dict[int, List[MappingElement]]]:
    """Group the problem's candidates per repository tree and personal node.

    Only trees offering at least one candidate for *every* personal node are
    returned: by Definition 2 a complete mapping needs a mapping element per
    personal node, so other trees cannot produce mappings (they correspond to
    the paper's non-*useful* clusters).
    """
    per_tree: Dict[int, Dict[int, List[MappingElement]]] = {}
    for node_id, elements in problem.candidates:
        for element in elements:
            tree_groups = per_tree.setdefault(element.ref.tree_id, {})
            tree_groups.setdefault(node_id, []).append(element)

    personal_ids = list(problem.personal_schema.node_ids())
    complete: Dict[int, Dict[int, List[MappingElement]]] = {}
    for tree_id, groups in per_tree.items():
        if all(node_id in groups and groups[node_id] for node_id in personal_ids):
            # Candidates are explored best-similarity-first with a deterministic
            # tie break on the repository node id.
            complete[tree_id] = {
                node_id: sorted(elements, key=lambda e: (-e.similarity, e.ref.global_id))
                for node_id, elements in groups.items()
            }
    return complete


def incremental_path_edges(
    problem: MappingProblem,
    assignment: Mapping[int, MappingElement],
    new_node_id: int,
    new_element: MappingElement,
) -> set:
    """Repository edges added to ``|Et|`` by assigning ``new_element`` to ``new_node_id``.

    Considers every personal edge between the new node and an already-assigned
    neighbour; the union of the corresponding repository paths is returned so
    the caller can grow its running edge set incrementally.
    """
    added: set = set()
    tree = problem.personal_schema
    neighbours = []
    parent = tree.parent_id(new_node_id)
    if parent is not None:
        neighbours.append(parent)
    neighbours.extend(tree.children_ids(new_node_id))
    for neighbour in neighbours:
        if neighbour in assignment:
            added |= problem.path_edges(assignment[neighbour].ref, new_element.ref)
    return added

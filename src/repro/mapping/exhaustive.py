"""Exhaustive (naive) mapping generation.

The baseline the paper argues against: enumerate every combination of mapping
elements, evaluate each, and keep those above the threshold.  It is used in
tests as the ground truth that Branch-and-Bound and A* must reproduce exactly,
and in benchmarks to demonstrate the search-space explosion on small instances.
The ``partial_mappings`` counter counts every node-assignment step, i.e. every
internal node of the full enumeration tree, which is what a bounding-free
search actually performs.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.matchers.selection import MappingElement
from repro.mapping.base import GenerationResult, MappingGenerator
from repro.mapping.model import MappingProblem
from repro.mapping.support import candidates_by_tree


class ExhaustiveGenerator(MappingGenerator):
    """Enumerates the complete search space ``Π |MEn|`` without pruning."""

    name = "exhaustive"

    def generate(self, problem: MappingProblem) -> GenerationResult:
        result = GenerationResult()
        started = time.perf_counter()
        order = problem.assignment_order()
        for tree_id, groups in sorted(candidates_by_tree(problem).items()):
            self._enumerate_tree(problem, order, groups, result)
        result.elapsed_seconds = time.perf_counter() - started
        result.sort()
        if problem.top_k is not None:
            # Exhaustive search never prunes, but it honours the problem's
            # top-k *result* semantics so it stays a drop-in ground truth.
            del result.mappings[problem.top_k :]
        return result

    def _enumerate_tree(
        self,
        problem: MappingProblem,
        order: List[int],
        groups: Dict[int, List[MappingElement]],
        result: GenerationResult,
    ) -> None:
        assignment: Dict[int, MappingElement] = {}
        used_globals: set = set()

        def recurse(level: int) -> None:
            if level == len(order):
                mapping = problem.evaluate(assignment)
                result.counters.increment("evaluated_mappings")
                if mapping.score >= problem.delta:
                    result.mappings.append(mapping)
                return
            node_id = order[level]
            for element in groups[node_id]:
                if problem.require_injective and element.ref.global_id in used_globals:
                    continue
                assignment[node_id] = element
                used_globals.add(element.ref.global_id)
                result.counters.increment("partial_mappings")
                recurse(level + 1)
                del assignment[node_id]
                used_globals.discard(element.ref.global_id)

        recurse(0)

"""Best-first (A*-style) mapping generation (LSD-style baseline).

States are partial assignments ordered by their optimistic bound; the search
repeatedly expands the most promising state.  With an admissible bound this is
complete — it finds exactly the mappings Branch-and-Bound finds — but the
expansion order differs, which matters for the *time-to-first-good-mapping*
metric the paper lists as future work (cluster ordering).
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Dict, FrozenSet, List, Tuple

from repro.matchers.selection import MappingElement
from repro.mapping.base import GenerationResult, MappingGenerator
from repro.mapping.model import MappingProblem
from repro.mapping.support import candidates_by_tree, incremental_path_edges


class AStarGenerator(MappingGenerator):
    """Best-first search over partial mappings using the objective bound as heuristic.

    Parameters
    ----------
    max_expansions:
        Safety valve for pathological inputs: the search stops after this many
        state expansions (the result is then potentially incomplete and the
        ``expansion_limit_reached`` counter is set).  ``None`` means unlimited.
    """

    name = "a-star"

    def __init__(self, max_expansions: int | None = None) -> None:
        if max_expansions is not None and max_expansions < 1:
            raise ValueError(f"max_expansions must be positive when given, got {max_expansions}")
        self.max_expansions = max_expansions

    def generate(self, problem: MappingProblem) -> GenerationResult:
        result = GenerationResult()
        started = time.perf_counter()
        order = problem.assignment_order()
        for tree_id, groups in sorted(candidates_by_tree(problem).items()):
            self._search_tree(problem, order, groups, result)
        result.elapsed_seconds = time.perf_counter() - started
        result.sort()
        return result

    def _search_tree(
        self,
        problem: MappingProblem,
        order: List[int],
        groups: Dict[int, List[MappingElement]],
        result: GenerationResult,
    ) -> None:
        best_similarity = {
            node_id: max(element.similarity for element in elements)
            for node_id, elements in groups.items()
        }
        tie_breaker = itertools.count()
        # Heap entries: (-bound, tie, level, assignment dict, used ids, path edges)
        heap: List[Tuple[float, int, int, Dict[int, MappingElement], FrozenSet[int], FrozenSet[int]]] = []
        heapq.heappush(heap, (-1.0, next(tie_breaker), 0, {}, frozenset(), frozenset()))
        expansions = 0

        while heap:
            negative_bound, _, level, assignment, used_globals, path_edges = heapq.heappop(heap)
            if -negative_bound < problem.delta:
                # Everything left in the heap is bounded below delta as well.
                break
            if level == len(order):
                mapping = problem.evaluate(assignment)
                result.counters.increment("evaluated_mappings")
                if mapping.score >= problem.delta:
                    result.mappings.append(mapping)
                continue
            if self.max_expansions is not None and expansions >= self.max_expansions:
                result.counters.set("expansion_limit_reached", 1)
                break
            expansions += 1
            result.counters.increment("expansions")

            node_id = order[level]
            remaining = {other: best_similarity[other] for other in order[level + 1 :]}
            for element in groups[node_id]:
                if problem.require_injective and element.ref.global_id in used_globals:
                    continue
                added = incremental_path_edges(problem, assignment, node_id, element)
                new_edges = path_edges | frozenset(added)
                new_assignment = dict(assignment)
                new_assignment[node_id] = element
                result.counters.increment("partial_mappings")
                bound = problem.objective.bound(
                    problem.personal_schema, new_assignment, remaining, len(new_edges)
                )
                result.counters.increment("bound_evaluations")
                if bound < problem.delta:
                    result.counters.increment("pruned_partial_mappings")
                    continue
                heapq.heappush(
                    heap,
                    (
                        -bound,
                        next(tie_breaker),
                        level + 1,
                        new_assignment,
                        used_globals | {element.ref.global_id},
                        new_edges,
                    ),
                )

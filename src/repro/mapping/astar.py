"""Best-first (A*-style) mapping generation (LSD-style baseline).

States are partial assignments ordered by their optimistic bound; the search
repeatedly expands the most promising state.  With an admissible bound this is
complete — it finds exactly the mappings Branch-and-Bound finds — but the
expansion order differs, which matters for the *time-to-first-good-mapping*
metric the paper lists as future work (cluster ordering).

Since the unified search core (:mod:`repro.mapping.engine`) the class is a
thin policy binding over :class:`~repro.mapping.engine.BestFirstPolicy`; the
frontier loop and bound evaluation are shared with the Branch-and-Bound and
beam generators, and so is top-``k`` incumbent pruning — except when
``max_expansions`` is set, which makes the search incomplete and therefore
opts it out of the shared floor (see
:meth:`~repro.mapping.engine.SearchPolicy.supports_shared_pruning`).
"""

from __future__ import annotations

from repro.mapping.base import GenerationResult, MappingGenerator
from repro.mapping.engine import BestFirstPolicy, run_search
from repro.mapping.model import MappingProblem


class AStarGenerator(MappingGenerator):
    """Best-first search over partial mappings using the objective bound as heuristic.

    Parameters
    ----------
    max_expansions:
        Safety valve for pathological inputs: the search stops after this many
        state expansions (the result is then potentially incomplete and the
        ``expansion_limit_reached`` counter is set).  ``None`` means unlimited.
    """

    name = "a-star"

    def __init__(self, max_expansions: int | None = None) -> None:
        if max_expansions is not None and max_expansions < 1:
            raise ValueError(f"max_expansions must be positive when given, got {max_expansions}")
        self.max_expansions = max_expansions

    def generate(self, problem: MappingProblem) -> GenerationResult:
        return run_search(problem, BestFirstPolicy(max_expansions=self.max_expansions))

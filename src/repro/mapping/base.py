"""The mapping-generator interface and its result type.

All generators consume a :class:`~repro.mapping.model.MappingProblem` and
return every schema mapping whose score clears the threshold ``δ`` (Definition
3), sorted by score.  They also report the counters the paper uses to compare
efficiency — most importantly ``partial_mappings``, the number of partial
schema mappings created during the search (Table 1b).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List

from repro.mapping.model import MappingProblem, SchemaMapping
from repro.utils.counters import CounterSet


@dataclass
class GenerationResult:
    """Mappings found by a generator plus its efficiency counters."""

    mappings: List[SchemaMapping] = field(default_factory=list)
    counters: CounterSet = field(default_factory=CounterSet)
    elapsed_seconds: float = 0.0

    @property
    def partial_mappings(self) -> int:
        """Number of partial schema mappings the generator created."""
        return self.counters.get("partial_mappings")

    @property
    def mapping_count(self) -> int:
        return len(self.mappings)

    def merge(self, other: "GenerationResult") -> "GenerationResult":
        """Fold another result (e.g. from another cluster) into this one."""
        self.mappings.extend(other.mappings)
        self.counters.merge(other.counters)
        self.elapsed_seconds += other.elapsed_seconds
        return self

    def sort(self) -> None:
        """Order mappings by descending score with the canonical deterministic tie-break."""
        from repro.mapping.ranking import ranking_sort_key

        self.mappings.sort(key=ranking_sort_key)


class MappingGenerator(abc.ABC):
    """Base class for schema-mapping generators."""

    #: Name used in experiment reports and ablation tables.
    name: str = "generator"

    @abc.abstractmethod
    def generate(self, problem: MappingProblem) -> GenerationResult:
        """Produce all mappings with ``Δ(s, t) >= δ`` for the given problem."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

"""Ranking and merging of schema mappings.

Clustered matching generates mappings per cluster and then "places them all
together in a single ordered list" (step 5 of Fig. 3).  The helpers here merge
per-cluster results, deduplicate mappings discovered in more than one cluster
(possible when clusters overlap after reclustering moves), and produce the
ranked lists and top-N views the personal-schema-querying user sees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.mapping.model import SchemaMapping


def ranking_sort_key(mapping: SchemaMapping) -> Tuple[float, int, int, Tuple[int, ...]]:
    """The canonical ranking key: score (descending), cluster id, signature.

    Every ranked mapping list in the library sorts with this one key so that
    equal-score mappings rank identically no matter which executor (serial,
    thread pool, process pool) produced them or in which order per-cluster
    results arrived.  The cluster id breaks ties before the signature so that
    deduplication keeps a deterministic instance when the same mapping is
    discovered in several overlapping clusters; clusterless mappings
    (``cluster_id is None``) sort after clustered ones of the same score.
    """
    cluster_id = mapping.cluster_id
    return (
        -mapping.score,
        1 if cluster_id is None else 0,
        0 if cluster_id is None else cluster_id,
        mapping.signature(),
    )


def merge_ranked(groups: Iterable[Sequence[SchemaMapping]], deduplicate: bool = True) -> List[SchemaMapping]:
    """Merge several mapping lists into one list ordered by descending score.

    When ``deduplicate`` is set, mappings with an identical signature (the same
    repository nodes for the same personal nodes) are reported once, keeping
    the highest-scoring instance (ties broken by the canonical ranking key,
    i.e. the lowest cluster id wins).
    """
    merged: List[SchemaMapping] = []
    for group in groups:
        merged.extend(group)
    merged.sort(key=ranking_sort_key)
    if not deduplicate:
        return merged
    seen: set = set()
    unique: List[SchemaMapping] = []
    for mapping in merged:
        signature = mapping.signature()
        if signature in seen:
            continue
        seen.add(signature)
        unique.append(mapping)
    return unique


def top_n(mappings: Sequence[SchemaMapping], n: int) -> List[SchemaMapping]:
    """The ``n`` best mappings (the list the interactive user is shown first)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    ordered = sorted(mappings, key=ranking_sort_key)
    return ordered[:n]


def above_threshold(mappings: Sequence[SchemaMapping], delta: float) -> List[SchemaMapping]:
    """Mappings whose score clears ``delta`` (kept in their original order)."""
    return [mapping for mapping in mappings if mapping.score >= delta]


def score_histogram(mappings: Sequence[SchemaMapping], bin_width: float = 0.05) -> Dict[float, int]:
    """Counts of mappings per score bin — used by the preservation-curve reports."""
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    histogram: Dict[float, int] = {}
    for mapping in mappings:
        bucket = round(int(mapping.score / bin_width) * bin_width, 10)
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return dict(sorted(histogram.items()))

"""Branch-and-Bound mapping generation (the paper's Bellflower generator).

The generator performs a depth-first search over partial assignments of
repository candidates to personal-schema nodes.  At every extension it asks the
objective function for an *optimistic bound* on the best score any completion
can reach; when the bound already falls below the threshold ``δ``, the whole
subtree of the search is pruned ("early detection of mappings for which
``Δ(s, t) < δ``", Sec. 3).

The number of partial mappings created — the paper's machine-independent
efficiency indicator (Table 1b) — is reported via the ``partial_mappings``
counter.
"""

from __future__ import annotations

import time
from typing import Dict, List, Set

from repro.matchers.selection import MappingElement
from repro.mapping.base import GenerationResult, MappingGenerator
from repro.mapping.model import MappingProblem
from repro.mapping.support import candidates_by_tree, incremental_path_edges


class BranchAndBoundGenerator(MappingGenerator):
    """Depth-first Branch-and-Bound over the mapping search space.

    Parameters
    ----------
    use_bounding:
        When ``False`` the generator degenerates into a depth-first exhaustive
        search (identical result set, no pruning).  Exposed for the ablation
        benchmark that quantifies how much the bounding function saves before
        and after clustering.
    """

    name = "branch-and-bound"

    def __init__(self, use_bounding: bool = True) -> None:
        self.use_bounding = use_bounding

    def generate(self, problem: MappingProblem) -> GenerationResult:
        result = GenerationResult()
        started = time.perf_counter()
        order = problem.assignment_order()
        for tree_id, groups in sorted(candidates_by_tree(problem).items()):
            self._search_tree(problem, order, groups, result)
        result.elapsed_seconds = time.perf_counter() - started
        result.sort()
        return result

    def _search_tree(
        self,
        problem: MappingProblem,
        order: List[int],
        groups: Dict[int, List[MappingElement]],
        result: GenerationResult,
    ) -> None:
        # The best similarity still reachable for the personal nodes that are
        # assigned at or after a given level; used by the bound.
        best_similarity = {
            node_id: max(element.similarity for element in elements)
            for node_id, elements in groups.items()
        }

        assignment: Dict[int, MappingElement] = {}
        used_globals: Set[int] = set()
        path_edges: Set[int] = set()

        def remaining_best(level: int) -> Dict[int, float]:
            return {node_id: best_similarity[node_id] for node_id in order[level:]}

        def recurse(level: int) -> None:
            if level == len(order):
                mapping = problem.evaluate(assignment)
                result.counters.increment("evaluated_mappings")
                if mapping.score >= problem.delta:
                    result.mappings.append(mapping)
                return
            node_id = order[level]
            for element in groups[node_id]:
                if problem.require_injective and element.ref.global_id in used_globals:
                    continue
                added_edges = incremental_path_edges(problem, assignment, node_id, element)
                new_edges = added_edges - path_edges

                assignment[node_id] = element
                used_globals.add(element.ref.global_id)
                path_edges.update(new_edges)
                result.counters.increment("partial_mappings")

                expand = True
                if self.use_bounding:
                    bound = problem.objective.bound(
                        problem.personal_schema,
                        assignment,
                        remaining_best(level + 1),
                        len(path_edges),
                    )
                    result.counters.increment("bound_evaluations")
                    if bound < problem.delta:
                        result.counters.increment("pruned_partial_mappings")
                        expand = False
                if expand:
                    recurse(level + 1)

                del assignment[node_id]
                used_globals.discard(element.ref.global_id)
                path_edges.difference_update(new_edges)

        recurse(0)

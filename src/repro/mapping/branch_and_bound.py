"""Branch-and-Bound mapping generation (the paper's Bellflower generator).

The generator performs a depth-first search over partial assignments of
repository candidates to personal-schema nodes.  At every extension it asks the
objective function for an *optimistic bound* on the best score any completion
can reach; when the bound already falls below the threshold ``δ``, the whole
subtree of the search is pruned ("early detection of mappings for which
``Δ(s, t) < δ``", Sec. 3).

Since the unified search core (:mod:`repro.mapping.engine`) the class is a
thin policy binding: the expansion loop, the bound evaluation and the
(optional) top-``k`` incumbent pruning all live in the engine and are shared
with the A* and beam generators.

The number of partial mappings created — the paper's machine-independent
efficiency indicator (Table 1b) — is reported via the ``partial_mappings``
counter.
"""

from __future__ import annotations

from repro.mapping.base import GenerationResult, MappingGenerator
from repro.mapping.engine import DepthFirstPolicy, run_search
from repro.mapping.model import MappingProblem


class BranchAndBoundGenerator(MappingGenerator):
    """Depth-first Branch-and-Bound over the mapping search space.

    Parameters
    ----------
    use_bounding:
        When ``False`` the generator degenerates into a depth-first exhaustive
        search (identical result set, no pruning).  Exposed for the ablation
        benchmark that quantifies how much the bounding function saves before
        and after clustering.
    """

    name = "branch-and-bound"

    def __init__(self, use_bounding: bool = True) -> None:
        self.use_bounding = use_bounding

    def generate(self, problem: MappingProblem) -> GenerationResult:
        return run_search(problem, DepthFirstPolicy(use_bounding=self.use_bounding))

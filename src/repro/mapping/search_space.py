"""Search-space accounting.

Section 2.3 of the paper analyses how clustering shrinks the mapping
generator's search space: without clustering the space is ``O(|MEn|^|Ns|)``;
with ``c`` clusters of roughly ``|MEn|/c`` elements each it becomes
``O(c * (|MEn|/c)^|Ns|)`` — a reduction by ``c^(|Ns|-1)``.  Table 1a reports
the concrete search-space sizes ("total # of schema mappings") per clustering
variant.  The functions here compute both the concrete counts (from candidate
sets) and the analytical model, and they are exercised by dedicated unit tests
and a micro-benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.matchers.selection import MappingElementSets


def search_space_size(candidate_sizes: Mapping[int, int] | Sequence[int]) -> int:
    """Number of complete assignments given per-personal-node candidate counts.

    This is the product of the ``|MEn|`` values; a zero anywhere makes the
    space empty (the cluster is not *useful*).
    """
    sizes = list(candidate_sizes.values()) if isinstance(candidate_sizes, Mapping) else list(candidate_sizes)
    if not sizes:
        return 0
    product = 1
    for size in sizes:
        if size <= 0:
            return 0
        product *= size
    return product


def candidate_search_space(candidates: MappingElementSets) -> int:
    """Search-space size of one candidate collection (e.g. one cluster)."""
    return search_space_size(candidates.sizes())


def grouped_search_space(groups: Mapping[int, Sequence]) -> int:
    """Search-space size of one repository tree's per-node candidate groups.

    ``groups`` is the per-tree shape produced by
    :func:`repro.mapping.support.candidates_by_tree` — personal node id to the
    candidate elements within one tree — i.e. the space one
    :class:`~repro.mapping.engine.TreeSearchContext` enumerates at most.
    """
    return search_space_size({node_id: len(elements) for node_id, elements in groups.items()})


def clustered_search_space(cluster_candidates: Iterable[MappingElementSets]) -> int:
    """Total search space across clusters: the sum of the per-cluster spaces."""
    return sum(candidate_search_space(candidates) for candidates in cluster_candidates)


def theoretical_reduction_factor(cluster_count: int, personal_node_count: int) -> float:
    """The paper's analytical reduction ``c^(|Ns| - 1)``.

    Assumes mapping elements are split evenly over ``c`` clusters; real
    reductions deviate because clusters are uneven and some are not useful.
    """
    if cluster_count < 1:
        raise ValueError(f"cluster_count must be at least 1, got {cluster_count}")
    if personal_node_count < 1:
        raise ValueError(f"personal_node_count must be at least 1, got {personal_node_count}")
    return float(cluster_count ** (personal_node_count - 1))


def reduction_percentage(clustered: int, non_clustered: int) -> float:
    """Clustered search space as a fraction of the non-clustered one (Table 1a's per-cent column)."""
    if non_clustered <= 0:
        return 0.0
    return clustered / non_clustered

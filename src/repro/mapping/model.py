"""Schema mappings and mapping problems.

A :class:`SchemaMapping` is a complete assignment of one repository node to
every personal-schema node (Definition 2's "1 to 1" element mappings), together
with the induced mapping subtree's edge count and the objective-function score.
A :class:`MappingProblem` bundles everything a generator needs: the personal
schema, the candidate sets (possibly restricted to one cluster), the distance
oracle over the repository, the objective function and the threshold ``δ``
(Definition 3's quadruple ``P = (s, R, Δ, δ)`` with the repository represented
by its candidate sets and oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import MappingError
from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.selection import MappingElement, MappingElementSets
from repro.objective.base import ObjectiveFunction
from repro.schema.repository import RepositoryNodeRef
from repro.schema.tree import SchemaTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports model)
    from repro.mapping.engine import TopKPool
    from repro.resilience.deadline import Deadline


@dataclass(frozen=True)
class SchemaMapping:
    """A complete schema mapping ``s -> t`` with its evaluation.

    Attributes
    ----------
    assignment:
        One :class:`MappingElement` per personal node id.
    score:
        The objective-function value ``Δ(s, t)``.
    components:
        Per-hint breakdown of the score (e.g. ``sim`` and ``path``).
    target_edge_count:
        ``|Et|`` of the mapping subtree (union of the paths the personal
        schema's edges map to).
    tree_id:
        Repository tree the mapping lives in.
    cluster_id:
        Identifier of the cluster the mapping was generated from, or ``None``
        for non-clustered matching.
    """

    assignment: Mapping[int, MappingElement]
    score: float
    components: Mapping[str, float]
    target_edge_count: int
    tree_id: int
    cluster_id: Optional[int] = None

    def element_pairs(self) -> List[Tuple[int, RepositoryNodeRef]]:
        """(personal node id, repository ref) pairs, sorted by personal node id."""
        return [(node_id, element.ref) for node_id, element in sorted(self.assignment.items())]

    def repository_global_ids(self) -> Tuple[int, ...]:
        """Global ids of the mapped repository nodes, ordered by personal node id."""
        return tuple(element.ref.global_id for _, element in sorted(self.assignment.items()))

    def signature(self) -> Tuple[int, ...]:
        """A canonical identity for deduplication across clusters."""
        return self.repository_global_ids()

    def describe(self, personal_schema: SchemaTree, repository=None) -> str:
        """A human-readable one-line description used by the examples."""
        parts = []
        for node_id, element in sorted(self.assignment.items()):
            personal_name = personal_schema.node(node_id).name
            if repository is not None:
                target_name = repository.node(element.ref).name
                parts.append(f"{personal_name}->{target_name}")
            else:
                parts.append(f"{personal_name}->g{element.ref.global_id}")
        return f"Δ={self.score:.3f} [{', '.join(parts)}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaMapping(score={self.score:.3f}, tree={self.tree_id}, nodes={self.repository_global_ids()})"


@dataclass
class MappingProblem:
    """Input to a mapping generator.

    ``candidates`` usually describes a single cluster (or, for the non-clustered
    baseline, a single repository tree); the generator enforces that every
    produced mapping stays within one repository tree regardless.

    ``top_k`` switches the pruning generators from "every mapping with
    ``Δ >= δ``" to "the ``k`` best mappings with ``Δ >= δ``": bounds are then
    additionally pruned against the ``k``-th best score found so far.  When
    several per-cluster problems of one query share a :class:`~repro.mapping.engine.TopKPool`
    via ``shared_pool``, that floor is shared across clusters — a good mapping
    found in one cluster prunes the others (see :mod:`repro.mapping.engine`
    for the exactness argument).  ``shared_pool`` is ignored unless ``top_k``
    is set.

    ``deadline`` bounds the search cooperatively: the generators poll it at
    their expansion points and, on expiry, stop expanding and return the
    mappings realized so far (the run's ``deadline_expired`` counter marks
    the truncation).  ``None`` — the default — changes nothing.
    """

    personal_schema: SchemaTree
    candidates: MappingElementSets
    oracle: RepositoryDistanceOracle
    objective: ObjectiveFunction
    delta: float
    cluster_id: Optional[int] = None
    require_injective: bool = True
    top_k: Optional[int] = None
    shared_pool: Optional["TopKPool"] = None
    deadline: Optional["Deadline"] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.delta <= 1.0:
            raise MappingError(f"threshold delta must be in [0, 1], got {self.delta}")
        if self.top_k is not None and self.top_k < 1:
            raise MappingError(f"top_k must be at least 1 when given, got {self.top_k}")
        personal_ids = set(self.personal_schema.node_ids())
        candidate_ids = set(self.candidates.personal_node_ids)
        if candidate_ids != personal_ids:
            raise MappingError(
                "candidate sets do not cover the personal schema: "
                f"expected nodes {sorted(personal_ids)}, got {sorted(candidate_ids)}"
            )

    # -- helpers shared by the generators --------------------------------------

    def assignment_order(self) -> List[int]:
        """Personal node ids in breadth-first order.

        Assigning parents before children guarantees that, when a node is
        assigned, the personal edge towards its (already assigned) parent can
        immediately contribute its repository path to the partial ``|Et|``,
        which keeps the Branch-and-Bound path bound tight.  Among siblings the
        node with fewer candidates comes first (fail-first ordering).
        """
        sizes = self.candidates.sizes()
        order = list(self.personal_schema.breadth_first())
        root = order[0]
        rest = sorted(
            order[1:],
            key=lambda node_id: (self.personal_schema.depth(node_id), sizes.get(node_id, 0), node_id),
        )
        return [root, *rest]

    def personal_edges(self) -> List[Tuple[int, int]]:
        """The personal schema's edges as (parent id, child id) pairs."""
        edges = []
        for node_id in self.personal_schema.node_ids():
            parent = self.personal_schema.parent_id(node_id)
            if parent is not None:
                edges.append((parent, node_id))
        return edges

    def path_edges(self, first: RepositoryNodeRef, second: RepositoryNodeRef) -> Set[int]:
        """Edges (child node ids) of the repository path between two mapped nodes."""
        edges = self.oracle.path_edge_ids(first, second)
        if edges is None:
            raise MappingError(
                f"nodes {first.global_id} and {second.global_id} are in different trees; "
                "a schema mapping cannot span repository trees"
            )
        return edges

    def target_edge_count(self, assignment: Mapping[int, MappingElement]) -> int:
        """``|Et|`` for a (partial or complete) assignment.

        Only personal edges with both endpoints assigned contribute; the union
        over their repository paths is the mapping subtree built so far.
        """
        union: Set[int] = set()
        for parent_id, child_id in self.personal_edges():
            if parent_id in assignment and child_id in assignment:
                union |= self.path_edges(assignment[parent_id].ref, assignment[child_id].ref)
        return len(union)

    def best_similarity_per_node(self) -> Dict[int, float]:
        """The maximum candidate similarity available for each personal node."""
        best: Dict[int, float] = {}
        for node_id, elements in self.candidates:
            best[node_id] = max((element.similarity for element in elements), default=0.0)
        return best

    def evaluate(self, assignment: Mapping[int, MappingElement]) -> SchemaMapping:
        """Score a complete assignment and wrap it as a :class:`SchemaMapping`."""
        if len(assignment) != self.personal_schema.node_count:
            raise MappingError(
                f"assignment covers {len(assignment)} of {self.personal_schema.node_count} personal nodes"
            )
        tree_ids = {element.ref.tree_id for element in assignment.values()}
        if len(tree_ids) != 1:
            raise MappingError(f"assignment spans repository trees {sorted(tree_ids)}")
        edge_count = self.target_edge_count(assignment)
        evaluation = self.objective.evaluate(self.personal_schema, assignment, edge_count)
        return SchemaMapping(
            assignment=dict(assignment),
            score=evaluation.score,
            components=dict(evaluation.components),
            target_edge_count=evaluation.target_edge_count,
            tree_id=next(iter(tree_ids)),
            cluster_id=self.cluster_id,
        )

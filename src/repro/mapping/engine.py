"""The unified best-first search core shared by all pruning mapping generators.

Historically ``astar``, ``beam`` and ``branch_and_bound`` each carried their
own copy of the expansion loop: candidate grouping, injectivity checks,
incremental ``|Et|`` maintenance, bound evaluation and threshold pruning were
re-implemented three times, and a search over one cluster could never learn
from mappings already found in another.  This module extracts the common
machinery once:

* :class:`TreeSearchContext` — one per (problem, repository tree): precomputes
  the per-level remaining-best-similarity tables the admissible bound needs
  (the legacy generators rebuilt that dictionary on *every* expansion), keeps
  a running similarity sum so :meth:`ObjectiveFunction.fast_bound
  <repro.objective.base.ObjectiveFunction.fast_bound>` can evaluate the bound
  in O(1), and centralizes the prune/accept bookkeeping;
* :class:`TopKPool` — a thread-safe *shared incumbent*: the ``k`` best scores
  found so far across every cluster of one query.  When the caller only wants
  the top-``k`` mappings, any partial mapping whose optimistic bound falls
  below the pool's floor (the current ``k``-th best score) cannot enter the
  final ranking and is pruned — a good mapping found in one cluster raises
  the pruning floor for every other cluster searched in the same query;
* the three frontier policies — :class:`DepthFirstPolicy` (Branch-and-Bound),
  :class:`BestFirstPolicy` (A*) and :class:`BeamPolicy` (beam search) — which
  are now thin orderings over the shared expansion step.

Exactness
---------
Cross-cluster pruning never changes the reported top-``k``: the bound is
admissible (every prefix of a mapping with score ``σ`` has bound ``>= σ``) and
the floor is always a *realized, per-signature-deduplicated* mapping score, so
a pruned branch satisfies ``bound < floor <= final k-th best distinct score``
— none of its completions could displace the final top-``k``, and ties at the
floor are never pruned (the cut is strict).  Because the final ranking is
re-sorted with the canonical deterministic key, the merged top-``k`` is
identical no matter how the floor rose over time, i.e. identical under serial,
thread-pool and process-pool execution.  This argument requires a *complete*
policy; incomplete ones (beam, budget-limited A*) opt out of incumbent
pruning via :meth:`SearchPolicy.supports_shared_pruning` — they keep δ-only
pruning plus plain top-``k`` truncation, staying deterministic.  Without
``top_k`` the pool is absent and the engine reproduces the legacy
``Δ >= δ``-complete semantics (and bit-identical results) exactly.

Counters are *not* part of the determinism contract in top-``k`` mode: how
many partial mappings the floor prunes depends on which cluster found a good
incumbent first, which is timing-dependent under concurrent executors.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import MappingError
from repro.matchers.selection import MappingElement
from repro.mapping.base import GenerationResult
from repro.mapping.model import MappingProblem
from repro.mapping.search_space import grouped_search_space
from repro.mapping.support import candidates_by_tree, incremental_path_edges

_NEGATIVE_INFINITY = float("-inf")


class TopKPool:
    """Thread-safe pool of the ``k`` best mapping scores seen so far.

    One pool instance is shared by every per-cluster search of a query; the
    executors may run those searches on many threads (or, via pickling, copy
    the pool per worker process — see ``__getstate__``).  The pool only stores
    scores, never mappings: it exists to *raise the pruning floor*, while the
    mappings themselves flow through the normal per-cluster results and are
    merged deterministically afterwards.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise MappingError(f"top-k pool needs k >= 1, got {k}")
        self.k = k
        # The k best (signature -> score) entries seen so far.  Keying by the
        # mapping signature dedups the same mapping discovered in several
        # overlapping clusters: counting it twice would inflate the floor past
        # the true k-th best *distinct* score and wrongly prune rank k.
        self._members: Dict[object, float] = {}
        self._floor = _NEGATIVE_INFINITY
        self._anonymous = itertools.count()
        self._lock = threading.Lock()

    def offer(self, score: float, signature: Optional[object] = None) -> None:
        """Record a realized mapping score (cheap; called once per mapping).

        ``signature`` identifies the mapping for cross-cluster deduplication;
        offers without one are treated as distinct mappings.
        """
        with self._lock:
            if signature is None:
                signature = ("__anonymous__", next(self._anonymous))
            elif signature in self._members:
                return
            if len(self._members) < self.k:
                self._members[signature] = score
                if len(self._members) == self.k:
                    self._floor = min(self._members.values())
            elif score > self._floor:
                evicted = min(self._members.items(), key=lambda item: item[1])[0]
                del self._members[evicted]
                self._members[signature] = score
                self._floor = min(self._members.values())

    def floor(self) -> float:
        """The current ``k``-th best score, or ``-inf`` while fewer than ``k`` exist.

        Monotonically non-decreasing over a query's lifetime, which is what
        makes pruning against it sound at any point in time.
        """
        with self._lock:
            return self._floor

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    # -- pickling (process executors) -----------------------------------------
    # A pickled pool is a *snapshot*: the worker process gets a private copy
    # holding the scores known at submission time, so cross-cluster sharing
    # degrades to per-worker sharing under a process executor.  Locks do not
    # pickle, hence the explicit state hooks.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TopKPool(k={self.k}, floor={self.floor():.3f})"


class TranslatingTopKPool:
    """A :class:`TopKPool` view that rewrites signatures before offering them.

    Shard fan-out shares one incumbent pool across *services* whose searches
    run in different repository coordinate spaces: every shard numbers its own
    trees and global node ids from zero, so the signatures realized inside one
    shard would collide with — and wrongly deduplicate against — signatures
    from every other shard.  Wrapping the shared pool with a per-shard
    ``translate`` callable (shard-local signature → merged-repository
    signature) keeps the pool's deduplication keyed by the *merged* mapping
    identity, which is the space the final ranking is deduplicated in.

    The view is intentionally minimal: it forwards ``floor``/``__len__`` and
    only intercepts ``offer``.  It satisfies the same exactness argument as a
    bare pool (the floor is still a realized, distinct-by-merged-signature
    mapping score), so complete policies may prune against it freely.  It
    pickles like the pool it wraps (``translate`` must be picklable for
    process executors), degrading to a per-worker snapshot the same way.
    """

    __slots__ = ("pool", "translate")

    def __init__(self, pool: TopKPool, translate) -> None:
        self.pool = pool
        self.translate = translate

    @property
    def k(self) -> int:
        return self.pool.k

    def offer(self, score: float, signature: Optional[object] = None) -> None:
        self.pool.offer(score, None if signature is None else self.translate(signature))

    def floor(self) -> float:
        return self.pool.floor()

    def __len__(self) -> int:
        return len(self.pool)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TranslatingTopKPool({self.pool!r})"


class TreeSearchContext:
    """Shared expansion machinery for one (problem, repository tree) search.

    Precomputes, once per tree:

    * candidate groups per personal node (already similarity-ordered);
    * per-level remaining-similarity totals for the O(1)
      :meth:`~repro.objective.base.ObjectiveFunction.fast_bound` path.  The
      totals are summed left-to-right over the same node order the legacy
      generators used, so the fast path is bit-identical to the generic one
      for the bundled objectives;
    * lazily (only for objectives without a fast bound), the per-level
      remaining-best-similarity maps — :meth:`remaining_map` of level ``l``
      is what the generic :meth:`~repro.objective.base.ObjectiveFunction.bound`
      expects for a partial assignment covering ``order[:l]``.
    """

    __slots__ = (
        "problem",
        "order",
        "groups",
        "pool",
        "delta",
        "deadline",
        "best_similarity",
        "remaining_totals",
        "_remaining_maps",
        "_bound_table",
    )

    def __init__(
        self,
        problem: MappingProblem,
        order: List[int],
        groups: Dict[int, List[MappingElement]],
        pool: Optional[TopKPool] = None,
    ) -> None:
        self.problem = problem
        self.order = order
        self.groups = groups
        self.delta = problem.delta
        self.pool = pool
        self.deadline = problem.deadline
        self.best_similarity = {
            node_id: max(element.similarity for element in elements)
            for node_id, elements in groups.items()
        }
        self.remaining_totals = [
            sum(self.best_similarity[node_id] for node_id in order[level:])
            for level in range(len(order) + 1)
        ]
        # The per-level maps are only needed by the generic bound() fallback
        # (objectives without fast_bound); building the O(levels²) entries
        # eagerly would be dead weight on every default-configuration search,
        # so they materialize on first use.
        self._remaining_maps: Optional[List[Dict[int, float]]] = None
        # Packed fast_bound table (repro.kernels.objective); None when the
        # objective declines, in which case fast_bound/bound run per call.
        self._bound_table = problem.objective.bound_table(problem.personal_schema)

    def remaining_map(self, level: int) -> Dict[int, float]:
        """Best remaining per-node similarities for ``order[level:]`` (lazy)."""
        if self._remaining_maps is None:
            self._remaining_maps = [
                {node_id: self.best_similarity[node_id] for node_id in self.order[lvl:]}
                for lvl in range(len(self.order) + 1)
            ]
        return self._remaining_maps[level]

    # -- bound evaluation -----------------------------------------------------

    def bound(
        self,
        assignment: Dict[int, MappingElement],
        assigned_similarity: float,
        level: int,
        edge_count: int,
        result: GenerationResult,
    ) -> float:
        """Admissible bound for a partial assignment covering ``order[:level]``."""
        result.counters.increment("bound_evaluations")
        table = self._bound_table
        if table is not None:
            # Same operands, same operation order as fast_bound — the packed
            # table only hoists the per-edge-count path term (tests/kernels
            # pins bit-identity).
            return table.bound(
                assigned_similarity + self.remaining_totals[level], edge_count
            )
        objective = self.problem.objective
        fast = objective.fast_bound(
            self.problem.personal_schema,
            assigned_similarity,
            self.remaining_totals[level],
            edge_count,
        )
        if fast is not None:
            return fast
        return objective.bound(
            self.problem.personal_schema, assignment, self.remaining_map(level), edge_count
        )

    def expired(self, result: GenerationResult) -> bool:
        """Poll the problem's deadline; mark the result truncated on expiry.

        ``set`` (not ``increment``) keeps the flag idempotent under the many
        checks one expiring search performs; merged per-cluster counters sum
        to "how many cluster searches were cut short", and any value > 0
        marks the overall result partial.
        """
        if self.deadline is not None and self.deadline.expired():
            result.counters.set("deadline_expired", 1)
            return True
        return False

    def prune_floor(self) -> float:
        """The current pruning floor: ``δ``, raised by the shared incumbent pool."""
        if self.pool is None:
            return self.delta
        floor = self.pool.floor()
        return floor if floor > self.delta else self.delta

    def admit(self, bound: float, result: GenerationResult) -> bool:
        """Decide whether a partial mapping with this bound is worth expanding.

        The cut is strict (``bound < floor`` prunes) so mappings tied with the
        incumbent floor are never lost.
        """
        if bound < self.delta:
            result.counters.increment("pruned_partial_mappings")
            return False
        if self.pool is not None and bound < self.pool.floor():
            result.counters.increment("pruned_partial_mappings")
            result.counters.increment("incumbent_pruned_partial_mappings")
            return False
        return True

    # -- completion -----------------------------------------------------------

    def accept(self, assignment: Dict[int, MappingElement], result: GenerationResult) -> None:
        """Evaluate a complete assignment; keep it when it clears ``δ``."""
        mapping = self.problem.evaluate(assignment)
        result.counters.increment("evaluated_mappings")
        if mapping.score >= self.delta:
            result.mappings.append(mapping)
            if self.pool is not None:
                self.pool.offer(mapping.score, mapping.signature())


class SearchPolicy:
    """A frontier discipline over the shared expansion machinery."""

    name: str = "policy"

    def supports_shared_pruning(self) -> bool:
        """Whether incumbent pruning cannot change this policy's result set.

        The exactness argument (see the module docstring) only holds for
        *complete* policies: pruning a sub-top-k branch from a complete
        search never changes which top-k mappings are found.  In an
        incomplete search — beam (the width cut drops different states when
        the floor frees beam slots) or a budget-limited A* (the floor changes
        which states fit into the expansion budget) — the floor's arrival
        *time* would leak into the result set, breaking determinism under
        concurrent executors.  Such policies opt out: the engine then runs
        them without a pool (δ-only pruning, plain top-k truncation).
        """
        return True

    def search_tree(self, context: TreeSearchContext, result: GenerationResult) -> None:
        raise NotImplementedError


class DepthFirstPolicy(SearchPolicy):
    """Depth-first Branch-and-Bound: mutable assignment with undo, LIFO order.

    With ``use_bounding=False`` the policy degenerates into the depth-first
    exhaustive enumeration (no bound evaluations, no pruning), which the
    ablation benchmark uses to quantify what the bounding function saves.
    """

    name = "depth-first"

    def __init__(self, use_bounding: bool = True) -> None:
        self.use_bounding = use_bounding

    def search_tree(self, context: TreeSearchContext, result: GenerationResult) -> None:
        problem = context.problem
        order = context.order
        groups = context.groups
        assignment: Dict[int, MappingElement] = {}
        used_globals: set = set()
        path_edges: set = set()

        def recurse(level: int, assigned_similarity: float) -> None:
            if level == len(order):
                context.accept(assignment, result)
                return
            node_id = order[level]
            for element in groups[node_id]:
                # Cooperative deadline: stop expanding, keep what we have.
                # Unwinding mid-loop is safe — every accepted mapping so far
                # is fully evaluated, the result is just missing the rest.
                if context.expired(result):
                    return
                if problem.require_injective and element.ref.global_id in used_globals:
                    continue
                added_edges = incremental_path_edges(problem, assignment, node_id, element)
                new_edges = added_edges - path_edges

                assignment[node_id] = element
                used_globals.add(element.ref.global_id)
                path_edges.update(new_edges)
                child_similarity = assigned_similarity + element.similarity
                result.counters.increment("partial_mappings")

                expand = True
                if self.use_bounding:
                    bound = context.bound(
                        assignment, child_similarity, level + 1, len(path_edges), result
                    )
                    expand = context.admit(bound, result)
                if expand:
                    recurse(level + 1, child_similarity)

                del assignment[node_id]
                used_globals.discard(element.ref.global_id)
                path_edges.difference_update(new_edges)

        recurse(0, 0.0)


class BestFirstPolicy(SearchPolicy):
    """A*: a priority queue ordered by the optimistic bound, best state first.

    Stops as soon as the best frontier bound falls below the pruning floor —
    with a shared incumbent pool the floor may have been raised by *another*
    cluster, turning the stop condition into cross-cluster pruning.
    """

    name = "best-first"

    def __init__(self, max_expansions: Optional[int] = None) -> None:
        self.max_expansions = max_expansions

    def supports_shared_pruning(self) -> bool:
        # With an expansion budget the search is incomplete: the incumbent
        # floor would decide which states fit into the budget, making the
        # result set timing-dependent under concurrent executors.
        return self.max_expansions is None

    def search_tree(self, context: TreeSearchContext, result: GenerationResult) -> None:
        problem = context.problem
        order = context.order
        groups = context.groups
        tie_breaker = itertools.count()
        # Heap entries: (-bound, tie, level, assignment, similarity sum, used ids, path edges)
        heap: List[
            Tuple[float, int, int, Dict[int, MappingElement], float, FrozenSet[int], FrozenSet[int]]
        ] = []
        heapq.heappush(heap, (-1.0, next(tie_breaker), 0, {}, 0.0, frozenset(), frozenset()))
        expansions = 0

        while heap:
            # Cooperative deadline: the frontier is abandoned, every mapping
            # accepted so far stays — an anytime cut of the best-first order.
            if context.expired(result):
                break
            negative_bound, _, level, assignment, assigned_similarity, used_globals, path_edges = (
                heapq.heappop(heap)
            )
            if -negative_bound < context.prune_floor():
                # The heap is bound-ordered: everything left is bounded below
                # the floor as well, so no remaining state can contribute.
                break
            if level == len(order):
                context.accept(assignment, result)
                continue
            if self.max_expansions is not None and expansions >= self.max_expansions:
                result.counters.set("expansion_limit_reached", 1)
                break
            expansions += 1
            result.counters.increment("expansions")

            node_id = order[level]
            for element in groups[node_id]:
                if problem.require_injective and element.ref.global_id in used_globals:
                    continue
                added = incremental_path_edges(problem, assignment, node_id, element)
                new_edges = path_edges | frozenset(added)
                new_assignment = dict(assignment)
                new_assignment[node_id] = element
                child_similarity = assigned_similarity + element.similarity
                result.counters.increment("partial_mappings")
                bound = context.bound(
                    new_assignment, child_similarity, level + 1, len(new_edges), result
                )
                if not context.admit(bound, result):
                    continue
                heapq.heappush(
                    heap,
                    (
                        -bound,
                        next(tie_breaker),
                        level + 1,
                        new_assignment,
                        child_similarity,
                        used_globals | {element.ref.global_id},
                        new_edges,
                    ),
                )


@dataclass(frozen=True)
class _BeamState:
    """One partial mapping kept in the beam (assignment stored in level order)."""

    assignment: Tuple[Tuple[int, MappingElement], ...]
    assigned_similarity: float
    used_globals: FrozenSet[int]
    path_edges: FrozenSet[int]
    bound: float

    def selection_key(self) -> Tuple[float, Tuple[int, ...]]:
        """Deterministic beam-selection key: bound, then mapped ids by personal node."""
        return (
            -self.bound,
            tuple(element.ref.global_id for _, element in sorted(self.assignment)),
        )


class BeamPolicy(SearchPolicy):
    """Level-synchronous beam search keeping the ``beam_width`` best states."""

    name = "beam"

    def __init__(self, beam_width: int) -> None:
        if beam_width < 1:
            raise MappingError(f"beam width must be positive, got {beam_width}")
        self.beam_width = beam_width

    def supports_shared_pruning(self) -> bool:
        # Beam search is incomplete: a state pruned by the incumbent floor
        # frees a beam slot for a state the width cut would otherwise drop,
        # so the surviving set would depend on when another cluster raised
        # the floor.
        return False

    def search_tree(self, context: TreeSearchContext, result: GenerationResult) -> None:
        problem = context.problem
        beam: List[_BeamState] = [
            _BeamState(
                assignment=(),
                assigned_similarity=0.0,
                used_globals=frozenset(),
                path_edges=frozenset(),
                bound=1.0,
            )
        ]

        for level, node_id in enumerate(context.order):
            next_states: List[_BeamState] = []
            for state in beam:
                # Cooperative deadline: abandoning a level mid-way can only
                # drop states, and beam results only materialize at the final
                # level, so an expired beam search returns what prior trees
                # of the same problem already accepted.
                if context.expired(result):
                    return
                assignment = dict(state.assignment)
                for element in context.groups[node_id]:
                    if problem.require_injective and element.ref.global_id in state.used_globals:
                        continue
                    added = incremental_path_edges(problem, assignment, node_id, element)
                    new_edges = state.path_edges | frozenset(added)
                    child_similarity = state.assigned_similarity + element.similarity
                    new_assignment = assignment | {node_id: element}
                    result.counters.increment("partial_mappings")
                    bound = context.bound(
                        new_assignment, child_similarity, level + 1, len(new_edges), result
                    )
                    if not context.admit(bound, result):
                        continue
                    next_states.append(
                        _BeamState(
                            assignment=(*state.assignment, (node_id, element)),
                            assigned_similarity=child_similarity,
                            used_globals=state.used_globals | {element.ref.global_id},
                            path_edges=new_edges,
                            bound=bound,
                        )
                    )
            next_states.sort(key=_BeamState.selection_key)
            dropped = max(0, len(next_states) - self.beam_width)
            if dropped:
                result.counters.increment("beam_dropped_states", dropped)
            beam = next_states[: self.beam_width]
            if not beam:
                return

        for state in beam:
            context.accept(dict(state.assignment), result)


def run_search(problem: MappingProblem, policy: SearchPolicy) -> GenerationResult:
    """Search every candidate-complete repository tree of ``problem``.

    The per-tree searches run in ascending tree-id order (deterministic), each
    over a fresh :class:`TreeSearchContext`; the shared incumbent pool — when
    the problem carries one — persists across trees *and* across concurrently
    searched sibling problems.  In top-``k`` mode the returned result is
    truncated to the problem's ``top_k`` best mappings (sorted with the
    canonical ranking key), since no global ranking can ever need more than
    ``k`` mappings from one cluster.
    """
    result = GenerationResult()
    started = time.perf_counter()
    pool: Optional[TopKPool] = None
    if problem.top_k is not None and policy.supports_shared_pruning():
        # Without a caller-provided pool the incumbent floor is still shared
        # across this problem's own trees (a private pool).  Incomplete
        # policies run without a pool entirely — see
        # SearchPolicy.supports_shared_pruning — and get plain top-k
        # truncation below.
        pool = problem.shared_pool or TopKPool(problem.top_k)
    order = problem.assignment_order()
    deadline = problem.deadline
    for _tree_id, groups in sorted(candidates_by_tree(problem).items()):
        if deadline is not None and deadline.expired():
            # Anytime cut between trees: keep what earlier trees produced.
            result.counters.set("deadline_expired", 1)
            break
        # The enumerable space of the trees actually searched — lets reports
        # relate partial_mappings to what a pruning-free search would face.
        result.counters.increment("tree_search_space", grouped_search_space(groups))
        policy.search_tree(TreeSearchContext(problem, order, groups, pool), result)
    result.elapsed_seconds = time.perf_counter() - started
    result.sort()
    if problem.top_k is not None:
        del result.mappings[problem.top_k :]
    return result

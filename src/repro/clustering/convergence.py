"""Convergence criteria for the adapted k-means.

The textbook criterion — *total stability*, no element changes cluster between
two iterations — is expensive and often unnecessary.  Bellflower relaxes it:
the algorithm stops when the fraction of mapping elements that switched
clusters and the relative change in the number of clusters both drop below a
threshold (the paper uses 5 %), or when an iteration cap is hit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class IterationStats:
    """What happened in one k-means iteration (input to the convergence test)."""

    iteration: int
    total_elements: int
    switched_elements: int
    previous_cluster_count: int
    cluster_count: int

    @property
    def switch_fraction(self) -> float:
        if self.total_elements == 0:
            return 0.0
        return self.switched_elements / self.total_elements

    @property
    def cluster_change_fraction(self) -> float:
        if self.previous_cluster_count == 0:
            return 0.0 if self.cluster_count == 0 else 1.0
        return abs(self.cluster_count - self.previous_cluster_count) / self.previous_cluster_count


class ConvergenceCriterion(abc.ABC):
    """Decides whether k-means should stop after an iteration."""

    name: str = "convergence"

    @abc.abstractmethod
    def has_converged(self, stats: IterationStats) -> bool:
        """True when the iteration statistics indicate convergence."""


class TotalStability(ConvergenceCriterion):
    """Stop only when no element switched clusters and the cluster count is stable."""

    name = "total-stability"

    def __init__(self, max_iterations: int = 50) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {max_iterations}")
        self.max_iterations = max_iterations

    def has_converged(self, stats: IterationStats) -> bool:
        if stats.iteration >= self.max_iterations:
            return True
        return stats.switched_elements == 0 and stats.cluster_count == stats.previous_cluster_count


class RelaxedConvergence(ConvergenceCriterion):
    """The paper's relaxed criterion: stop when changes drop below a small fraction.

    Parameters
    ----------
    switch_threshold:
        Maximum fraction of mapping elements that may still be switching
        clusters (paper: 5 %).
    cluster_change_threshold:
        Maximum relative change in the number of clusters (paper: 5 %).
    max_iterations:
        Hard cap; each unnecessary iteration "is a waste of time".
    min_iterations:
        Iterations to run before the relaxed test applies (the first assignment
        pass always moves everything, so testing earlier is meaningless).
    """

    name = "relaxed"

    def __init__(
        self,
        switch_threshold: float = 0.05,
        cluster_change_threshold: float = 0.05,
        max_iterations: int = 20,
        min_iterations: int = 2,
    ) -> None:
        if not 0.0 <= switch_threshold <= 1.0:
            raise ValueError(f"switch_threshold must be in [0, 1], got {switch_threshold}")
        if not 0.0 <= cluster_change_threshold <= 1.0:
            raise ValueError(
                f"cluster_change_threshold must be in [0, 1], got {cluster_change_threshold}"
            )
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {max_iterations}")
        if min_iterations < 1 or min_iterations > max_iterations:
            raise ValueError(
                f"min_iterations must be in [1, max_iterations], got {min_iterations}"
            )
        self.switch_threshold = switch_threshold
        self.cluster_change_threshold = cluster_change_threshold
        self.max_iterations = max_iterations
        self.min_iterations = min_iterations

    def has_converged(self, stats: IterationStats) -> bool:
        if stats.iteration >= self.max_iterations:
            return True
        if stats.iteration < self.min_iterations:
            return False
        return (
            stats.switch_fraction <= self.switch_threshold
            and stats.cluster_change_fraction <= self.cluster_change_threshold
        )

"""The adapted k-means clusterer (Algorithm 1 of the paper).

The algorithm clusters the *mapping elements* (repository nodes selected by the
element-matching stage), not the whole repository:

1. initialize centroids (MEmin heuristic by default);
2. repeat:
   a. assign every mapping element to the nearest centroid in its tree;
   b. recompute each cluster's centroid as its medoid;
   c. perform reclustering (join / remove);
   until the convergence criterion is met.

Mapping elements living in a tree that contains no centroid remain unclustered;
with MEmin seeding this only happens in trees that lack an element of the
rarest candidate set — trees that could never produce a complete mapping in the
first place.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.clustering.centroid import medoid
from repro.clustering.cluster import Cluster, ClusterSet
from repro.clustering.convergence import ConvergenceCriterion, IterationStats, RelaxedConvergence
from repro.clustering.distance import ClusteringDistance, PathLengthDistance
from repro.clustering.initialization import CentroidInitializer, MEminInitializer
from repro.clustering.reclustering import NoReclustering, ReclusteringStrategy
from repro.errors import ClusteringError
from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.selection import MappingElementSets
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.utils.counters import CounterSet


@dataclass
class ClusteringResult:
    """Clusters plus the statistics the experiments report."""

    clusters: ClusterSet
    counters: CounterSet = field(default_factory=CounterSet)
    elapsed_seconds: float = 0.0

    @property
    def iterations(self) -> int:
        return self.counters.get("iterations")

    @property
    def cluster_count(self) -> int:
        return self.clusters.cluster_count


class Clusterer(abc.ABC):
    """Base class of every clustering component (step *c* in Fig. 3)."""

    name: str = "clusterer"

    @abc.abstractmethod
    def cluster(
        self,
        candidates: MappingElementSets,
        repository: SchemaRepository,
        oracle: Optional[RepositoryDistanceOracle] = None,
    ) -> ClusteringResult:
        """Group the candidates' repository nodes into clusters."""


class KMeansClusterer(Clusterer):
    """The paper's adapted k-means over mapping elements.

    Parameters
    ----------
    initializer:
        Centroid seeding heuristic (default: the MEmin heuristic).
    reclustering:
        Strategy applied at the end of each iteration (default: none, i.e. the
        standard k-means behaviour; the paper's experiments use join or
        join & remove).
    convergence:
        Stopping criterion (default: the paper's relaxed 5 % criterion).
    distance:
        Distance measure; defaults to tree path length via the labeling oracle.
    medoid_sample_limit:
        Passed through to :func:`repro.clustering.centroid.medoid`.
    """

    name = "k-means"

    def __init__(
        self,
        initializer: Optional[CentroidInitializer] = None,
        reclustering: Optional[ReclusteringStrategy] = None,
        convergence: Optional[ConvergenceCriterion] = None,
        distance: Optional[ClusteringDistance] = None,
        medoid_sample_limit: Optional[int] = 256,
    ) -> None:
        self.initializer = initializer or MEminInitializer()
        self.reclustering = reclustering or NoReclustering()
        self.convergence = convergence or RelaxedConvergence()
        self.distance = distance
        self.medoid_sample_limit = medoid_sample_limit

    # -- Clusterer interface -----------------------------------------------------

    def cluster(
        self,
        candidates: MappingElementSets,
        repository: SchemaRepository,
        oracle: Optional[RepositoryDistanceOracle] = None,
    ) -> ClusteringResult:
        started = time.perf_counter()
        counters = CounterSet()

        if candidates.total() == 0:
            raise ClusteringError("cannot cluster an empty set of mapping elements")

        distance = self.distance
        if distance is None:
            distance = PathLengthDistance(oracle or RepositoryDistanceOracle(repository))

        # Items to cluster: the distinct repository nodes targeted by any
        # mapping element.  Two mapping elements with the same target always
        # belong to the same cluster, so clustering the distinct nodes is
        # equivalent and cheaper.
        items: Dict[int, RepositoryNodeRef] = {
            element.ref.global_id: element.ref for element in candidates.iter_all_elements()
        }
        item_list = [items[global_id] for global_id in sorted(items)]
        counters.set("clustered_items", len(item_list))

        centroids = self.initializer.initial_centroids(candidates, repository)
        if not centroids:
            raise ClusteringError("centroid initialization produced no centroids")
        counters.set("initial_centroids", len(centroids))

        previous_assignment: Dict[int, int] = {}
        clusters: List[Cluster] = []
        iteration = 0

        while True:
            iteration += 1
            # -- assignment step (lines 3-8 of Algorithm 1) -----------------------
            centroids_by_tree: Dict[int, List[tuple[int, RepositoryNodeRef]]] = {}
            for index, centroid in enumerate(centroids):
                centroids_by_tree.setdefault(centroid.tree_id, []).append((index, centroid))

            members_per_centroid: Dict[int, List[RepositoryNodeRef]] = {i: [] for i in range(len(centroids))}
            assignment: Dict[int, int] = {}
            for item in item_list:
                candidates_in_tree = centroids_by_tree.get(item.tree_id)
                if not candidates_in_tree:
                    counters.increment("unclustered_items_last_iteration", 0)
                    continue
                best_index = -1
                best_distance = float("inf")
                for index, centroid in candidates_in_tree:
                    value = distance.distance(item, centroid)
                    counters.increment("distance_computations")
                    if value < best_distance or (value == best_distance and index < best_index):
                        best_distance = value
                        best_index = index
                members_per_centroid[best_index].append(item)
                assignment[item.global_id] = best_index

            clusters = []
            for index, members in members_per_centroid.items():
                if not members:
                    counters.increment("starved_centroids")
                    continue
                cluster = Cluster(
                    cluster_id=index,
                    tree_id=members[0].tree_id,
                    members=set(members),
                    centroid=centroids[index],
                )
                clusters.append(cluster)

            # -- centroid update (line 9) -----------------------------------------
            for cluster in clusters:
                cluster.centroid = medoid(
                    sorted(cluster.members, key=lambda ref: ref.global_id),
                    distance,
                    sample_limit=self.medoid_sample_limit,
                )

            # -- reclustering (line 10) -------------------------------------------
            clusters = self.reclustering.recluster(clusters, distance, counters)

            # -- convergence check (line 11) ----------------------------------------
            switched = sum(
                1
                for global_id, cluster_index in assignment.items()
                if previous_assignment.get(global_id, -1) != cluster_index
            )
            stats = IterationStats(
                iteration=iteration,
                total_elements=len(item_list),
                switched_elements=switched,
                previous_cluster_count=len(previous_assignment and set(previous_assignment.values()) or [])
                or len(centroids),
                cluster_count=len(clusters),
            )
            counters.increment("iterations")
            counters.set("last_switched_elements", switched)
            previous_assignment = assignment

            if self.convergence.has_converged(stats):
                break

            # Next iteration's centroids are this iteration's (reclustered) medoids.
            centroids = [cluster.centroid for cluster in clusters if cluster.centroid is not None]
            if not centroids:
                break

        # Re-number clusters contiguously for stable downstream reporting.
        final = ClusterSet()
        for new_id, cluster in enumerate(sorted(clusters, key=lambda c: (c.tree_id, min(c.member_global_ids())))):
            final.add(
                Cluster(
                    cluster_id=new_id,
                    tree_id=cluster.tree_id,
                    members=set(cluster.members),
                    centroid=cluster.centroid,
                )
            )
        clustered_ids = {member for cluster in final for member in cluster.member_global_ids()}
        counters.set("unclustered_items", len(item_list) - len(clustered_ids))

        return ClusteringResult(
            clusters=final,
            counters=counters,
            elapsed_seconds=time.perf_counter() - started,
        )

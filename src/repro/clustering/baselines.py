"""Baseline clusterers: tree clusters and offline fragments.

*Tree clusters* is the paper's non-clustered reference point: "each tree in the
repository is treated as one cluster".  The mapping generator then searches
every repository tree exhaustively, which is exactly what a matcher without the
clustering step would do.

*Fragments* emulate the offline fragmentation proposed by Rahm, Do and Maßmann
for matching large XML schemas: schemas are split into syntactic substructures
ahead of time, independently of the personal schema.  The comparison between
on-line, personal-schema-aware k-means clusters and off-line fragments is one
of the ablation benchmarks.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.clustering.cluster import clusters_from_groups
from repro.clustering.kmeans import Clusterer, ClusteringResult
from repro.errors import ClusteringError
from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.selection import MappingElementSets
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.schema.tree import SchemaTree
from repro.utils.counters import CounterSet


class TreeClusterer(Clusterer):
    """The non-clustered baseline: one cluster per repository tree."""

    name = "tree-clusters"

    def cluster(
        self,
        candidates: MappingElementSets,
        repository: SchemaRepository,
        oracle: Optional[RepositoryDistanceOracle] = None,
    ) -> ClusteringResult:
        started = time.perf_counter()
        counters = CounterSet()
        by_tree: Dict[tuple, set] = {}
        for element in candidates.iter_all_elements():
            by_tree.setdefault((element.ref.tree_id,), set()).add(element.ref)

        clusters = clusters_from_groups(by_tree)
        counters.set("iterations", 0)
        counters.set("clustered_items", sum(len(members) for members in by_tree.values()))
        return ClusteringResult(
            clusters=clusters, counters=counters, elapsed_seconds=time.perf_counter() - started
        )


def fragment_tree(tree: SchemaTree, max_fragment_size: int) -> Dict[int, int]:
    """Assign every node of ``tree`` to a fragment id (local to the tree).

    A subtree of at most ``max_fragment_size`` nodes becomes one fragment;
    larger subtrees delegate to their children, the splitting node anchoring
    its own (small) fragment so it is never lost.  Deterministic in the tree
    alone, which is what lets :class:`repro.service.RepositoryPartition`
    refragment a single tree on incremental updates and provably match a full
    rebuild.
    """
    if max_fragment_size < 1:
        raise ClusteringError(f"max_fragment_size must be positive, got {max_fragment_size}")
    assignment: Dict[int, int] = {}
    next_fragment = 0

    def assign_subtree(node_id: int, fragment: int) -> None:
        for descendant in tree.preorder(node_id):
            assignment[descendant] = fragment

    def split(node_id: int) -> None:
        nonlocal next_fragment
        if tree.subtree_size(node_id) <= max_fragment_size:
            assign_subtree(node_id, next_fragment)
            next_fragment += 1
            return
        # The splitting node anchors its own (small) fragment so it is never lost.
        assignment[node_id] = next_fragment
        next_fragment += 1
        for child_id in tree.children_ids(node_id):
            split(child_id)

    split(tree.root_id)
    return assignment


class FragmentClusterer(Clusterer):
    """Offline, personal-schema-agnostic fragmentation of repository trees.

    Every repository tree is recursively split into fragments of at most
    ``max_fragment_size`` nodes: a subtree small enough becomes one fragment,
    larger subtrees delegate to their children (the splitting node itself joins
    the fragment of each child so that paths crossing the split remain partly
    covered).  Mapping elements are then grouped by fragment membership.
    """

    name = "fragments"

    def __init__(self, max_fragment_size: int = 20) -> None:
        if max_fragment_size < 1:
            raise ClusteringError(f"max_fragment_size must be positive, got {max_fragment_size}")
        self.max_fragment_size = max_fragment_size

    def _fragment_tree(self, tree: SchemaTree) -> Dict[int, int]:
        return fragment_tree(tree, self.max_fragment_size)

    def cluster(
        self,
        candidates: MappingElementSets,
        repository: SchemaRepository,
        oracle: Optional[RepositoryDistanceOracle] = None,
    ) -> ClusteringResult:
        started = time.perf_counter()
        counters = CounterSet()

        # Fragment only the trees that actually contain mapping elements.
        trees_with_elements = {element.ref.tree_id for element in candidates.iter_all_elements()}
        fragment_of: Dict[int, Dict[int, int]] = {}
        for tree_id in trees_with_elements:
            fragment_of[tree_id] = self._fragment_tree(repository.tree(tree_id))
            counters.increment("fragmented_trees")

        grouped: Dict[tuple, set] = {}
        for element in candidates.iter_all_elements():
            key = (element.ref.tree_id, fragment_of[element.ref.tree_id][element.ref.node_id])
            grouped.setdefault(key, set()).add(element.ref)

        clusters = clusters_from_groups(grouped)
        counters.set("iterations", 0)
        counters.set("clustered_items", sum(len(m) for m in grouped.values()))
        return ClusteringResult(
            clusters=clusters, counters=counters, elapsed_seconds=time.perf_counter() - started
        )

"""Centroid (medoid) computation.

Bellflower represents every cluster by one of its own members — a *medoid* —
chosen as the member that minimizes the total distance to all other members
("the mapping element which is the center of weight for the cluster").  Using a
member instead of a synthetic mean keeps the distance measure applicable (a
tree distance to an arbitrary point is undefined).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.clustering.distance import ClusteringDistance
from repro.errors import ClusteringError
from repro.schema.repository import RepositoryNodeRef


def medoid(
    members: Sequence[RepositoryNodeRef],
    distance: ClusteringDistance,
    sample_limit: Optional[int] = 256,
) -> RepositoryNodeRef:
    """The member minimizing the summed distance to all other members.

    Parameters
    ----------
    members:
        Cluster members (must be non-empty and share one tree).
    distance:
        The clustering distance measure.
    sample_limit:
        Exact medoid computation is O(k²); for clusters larger than this limit
        the summed distance is estimated against an evenly spaced sample of the
        members, which keeps the clustering step linear in practice while
        staying deterministic.  ``None`` forces the exact computation.
    """
    ordered = sorted(members, key=lambda ref: ref.global_id)
    if not ordered:
        raise ClusteringError("cannot compute the medoid of an empty cluster")
    if len(ordered) == 1:
        return ordered[0]

    if sample_limit is not None and len(ordered) > sample_limit:
        step = max(1, len(ordered) // sample_limit)
        reference = ordered[::step]
    else:
        reference = ordered

    best_ref = ordered[0]
    best_total = float("inf")
    for candidate in ordered:
        total = 0.0
        for other in reference:
            if other.global_id == candidate.global_id:
                continue
            total += distance.distance(candidate, other)
            if total >= best_total:
                break
        if total < best_total:
            best_total = total
            best_ref = candidate
    return best_ref


def total_distance(
    center: RepositoryNodeRef,
    members: Iterable[RepositoryNodeRef],
    distance: ClusteringDistance,
) -> float:
    """Summed distance from ``center`` to every member (the medoid's objective)."""
    return sum(
        distance.distance(center, member)
        for member in members
        if member.global_id != center.global_id
    )

"""Cluster quality scoring and ordering.

The paper's future-work list includes *ordering the clusters*: "a measure of
cluster's quality can be used to decide which clusters have better chances to
produce good mappings.  In this way, the time-to-first good mapping can be
improved."  The quality score implemented here is the optimistic best objective
value a cluster could deliver — the average, over personal nodes, of the best
candidate similarity available inside the cluster (an upper bound on Δsim,
combined with a perfect Δpath) — so sorting clusters by it front-loads the
clusters most likely to contain the top mappings.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.clustering.cluster import Cluster
from repro.matchers.selection import MappingElementSets
from repro.objective.bellflower import BellflowerObjective


def cluster_quality(
    cluster: Cluster,
    candidates: MappingElementSets,
    objective: Optional[BellflowerObjective] = None,
) -> float:
    """Optimistic best score any mapping generated from this cluster could reach.

    Non-useful clusters (missing a candidate for some personal node) score 0.
    """
    restricted = cluster.restricted_candidates(candidates)
    if not restricted.is_complete():
        return 0.0
    best_per_node = []
    for node_id, elements in restricted:
        best_per_node.append(max(element.similarity for element in elements))
    optimistic_sim = sum(best_per_node) / len(best_per_node)
    alpha = objective.alpha if objective is not None else 0.5
    # Optimistically assume a perfect path score for the cluster.
    return alpha * optimistic_sim + (1.0 - alpha)


def order_clusters_by_quality(
    clusters: Sequence[Cluster],
    candidates: MappingElementSets,
    objective: Optional[BellflowerObjective] = None,
) -> List[Tuple[Cluster, float]]:
    """Clusters paired with their quality, best first (deterministic tie-break)."""
    scored = [(cluster, cluster_quality(cluster, candidates, objective)) for cluster in clusters]
    scored.sort(key=lambda pair: (-pair[1], pair[0].cluster_id))
    return scored

"""Distance measures between mapping elements and centroids.

Bellflower's clustering distance is the tree distance (path length) between the
two repository nodes, computed through node labels: it is designed to support
an objective function in which path length is an important hint.  The paper
notes that the distance measure "must be designed to support a specific
objective function"; :class:`BlendedDistance` implements the future-work idea
of mixing the structural distance with a name-dissimilarity term so the
correlation experiments (Figure 6) can be extended with an adapted distance.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

from repro.errors import ClusteringError
from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.string_metrics import fuzzy_similarity
from repro.schema.repository import RepositoryNodeRef, SchemaRepository

#: The distance reported for nodes in different repository trees: clusters must
#: never span trees, so the distance is effectively infinite.
INFINITE_DISTANCE = math.inf


class ClusteringDistance(abc.ABC):
    """Distance between two repository nodes for clustering purposes."""

    name: str = "distance"

    @abc.abstractmethod
    def distance(self, first: RepositoryNodeRef, second: RepositoryNodeRef) -> float:
        """A non-negative distance; ``math.inf`` when the nodes cannot share a cluster."""


class PathLengthDistance(ClusteringDistance):
    """The paper's distance measure: tree path length via the labeling oracle."""

    name = "path-length"

    def __init__(self, oracle: RepositoryDistanceOracle) -> None:
        self.oracle = oracle

    def distance(self, first: RepositoryNodeRef, second: RepositoryNodeRef) -> float:
        value = self.oracle.distance(first, second)
        return INFINITE_DISTANCE if value is None else float(value)


class BlendedDistance(ClusteringDistance):
    """Path length blended with name dissimilarity.

    ``distance = path_weight * path_length + (1 - path_weight) * scale * (1 - name_similarity)``

    The name term is scaled so that a completely dissimilar name costs about as
    much as ``scale`` tree edges, keeping the two components commensurable.
    This is the "other distance measures for clustering" direction listed in the
    paper's future work and is exercised by the ablation benchmarks.
    """

    name = "blended"

    def __init__(
        self,
        oracle: RepositoryDistanceOracle,
        repository: SchemaRepository,
        path_weight: float = 0.7,
        name_scale: float = 4.0,
    ) -> None:
        if not 0.0 <= path_weight <= 1.0:
            raise ClusteringError(f"path_weight must be in [0, 1], got {path_weight}")
        if name_scale <= 0:
            raise ClusteringError(f"name_scale must be positive, got {name_scale}")
        self.oracle = oracle
        self.repository = repository
        self.path_weight = path_weight
        self.name_scale = name_scale

    def distance(self, first: RepositoryNodeRef, second: RepositoryNodeRef) -> float:
        path = self.oracle.distance(first, second)
        if path is None:
            return INFINITE_DISTANCE
        first_name = self.repository.node(first).name
        second_name = self.repository.node(second).name
        name_dissimilarity = 1.0 - fuzzy_similarity(first_name, second_name)
        return self.path_weight * float(path) + (1.0 - self.path_weight) * self.name_scale * name_dissimilarity

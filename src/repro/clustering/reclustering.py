"""Reclustering strategies (the non-standard step of the adapted k-means).

The paper adds a *reclustering* step to every k-means iteration (line 10 of
Algorithm 1) to counteract two pathologies:

* **tiny clusters** — nearby initial centroids compete for the same mapping
  elements and some "starve"; *join* reclustering merges clusters whose
  centroids are closer than a distance threshold (the threshold is exactly what
  distinguishes the paper's "small" / "medium" / "large" clustering variants);
* **leftover tiny clusters** — *remove* reclustering deletes clusters smaller
  than a minimum size; their members are freed and may join neighbouring
  clusters in the next iteration.

Figure 4 compares no reclustering, join, and join & remove.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from repro.clustering.cluster import Cluster
from repro.clustering.distance import ClusteringDistance
from repro.errors import ClusteringError
from repro.utils.counters import CounterSet


class ReclusteringStrategy(abc.ABC):
    """Transforms the cluster list once per k-means iteration."""

    name: str = "reclustering"

    @abc.abstractmethod
    def recluster(
        self,
        clusters: List[Cluster],
        distance: ClusteringDistance,
        counters: CounterSet,
    ) -> List[Cluster]:
        """Return the (possibly modified) cluster list."""


class NoReclustering(ReclusteringStrategy):
    """Standard k-means behaviour: clusters are left untouched."""

    name = "none"

    def recluster(
        self,
        clusters: List[Cluster],
        distance: ClusteringDistance,
        counters: CounterSet,
    ) -> List[Cluster]:
        return clusters


class JoinReclustering(ReclusteringStrategy):
    """Merge clusters whose centroids are within ``distance_threshold`` of each other.

    Joining is applied transitively within one pass (union-find over the
    "centroids are near" relation), so a chain of close centroids collapses
    into a single cluster.  Clusters in different trees are never joined.
    """

    name = "join"

    def __init__(self, distance_threshold: float = 3.0) -> None:
        if distance_threshold < 0:
            raise ClusteringError(f"distance_threshold must be non-negative, got {distance_threshold}")
        self.distance_threshold = distance_threshold

    def recluster(
        self,
        clusters: List[Cluster],
        distance: ClusteringDistance,
        counters: CounterSet,
    ) -> List[Cluster]:
        if len(clusters) < 2:
            return clusters
        parent = list(range(len(clusters)))

        def find(index: int) -> int:
            while parent[index] != index:
                parent[index] = parent[parent[index]]
                index = parent[index]
            return index

        def union(first: int, second: int) -> None:
            first_root, second_root = find(first), find(second)
            if first_root != second_root:
                parent[second_root] = first_root

        by_tree: Dict[int, List[int]] = {}
        for index, cluster in enumerate(clusters):
            by_tree.setdefault(cluster.tree_id, []).append(index)

        for tree_id, indexes in by_tree.items():
            for position, first_index in enumerate(indexes):
                first = clusters[first_index]
                if first.centroid is None:
                    continue
                for second_index in indexes[position + 1 :]:
                    second = clusters[second_index]
                    if second.centroid is None:
                        continue
                    if distance.distance(first.centroid, second.centroid) <= self.distance_threshold:
                        union(first_index, second_index)

        merged: Dict[int, Cluster] = {}
        joins = 0
        for index, cluster in enumerate(clusters):
            root = find(index)
            if root not in merged:
                merged[root] = Cluster(
                    cluster_id=clusters[root].cluster_id,
                    tree_id=clusters[root].tree_id,
                    members=set(),
                    centroid=clusters[root].centroid,
                )
            else:
                joins += 1
            merged[root].members.update(cluster.members)
        counters.increment("joined_clusters", joins)
        return list(merged.values())


class RemoveReclustering(ReclusteringStrategy):
    """Drop clusters with fewer than ``min_size`` members.

    The freed mapping elements are simply no longer assigned; in the next
    iteration they gravitate to the nearest surviving centroid (or stay
    unclustered if none shares their tree), exactly as described in the paper.
    """

    name = "remove"

    def __init__(self, min_size: int = 2) -> None:
        if min_size < 1:
            raise ClusteringError(f"min_size must be at least 1, got {min_size}")
        self.min_size = min_size

    def recluster(
        self,
        clusters: List[Cluster],
        distance: ClusteringDistance,
        counters: CounterSet,
    ) -> List[Cluster]:
        kept = [cluster for cluster in clusters if cluster.size >= self.min_size]
        removed = len(clusters) - len(kept)
        if removed:
            counters.increment("removed_clusters", removed)
            counters.increment(
                "freed_members",
                sum(cluster.size for cluster in clusters if cluster.size < self.min_size),
            )
        return kept


class CompositeReclustering(ReclusteringStrategy):
    """Apply several strategies in sequence (e.g. the paper's *join & remove*)."""

    name = "composite"

    def __init__(self, strategies: Sequence[ReclusteringStrategy]) -> None:
        if not strategies:
            raise ClusteringError("a composite reclustering needs at least one strategy")
        self.strategies = list(strategies)
        self.name = "+".join(strategy.name for strategy in strategies)

    def recluster(
        self,
        clusters: List[Cluster],
        distance: ClusteringDistance,
        counters: CounterSet,
    ) -> List[Cluster]:
        for strategy in self.strategies:
            clusters = strategy.recluster(clusters, distance, counters)
        return clusters


def join_and_remove(distance_threshold: float = 3.0, min_size: int = 2) -> CompositeReclustering:
    """The paper's *join & remove* combination with the given parameters."""
    return CompositeReclustering([JoinReclustering(distance_threshold), RemoveReclustering(min_size)])

"""Clusters of mapping elements.

A cluster is a set of repository nodes (mapping-element targets) that lie close
to each other in one repository tree, represented by a centroid node.  A
cluster is *useful* when it contains at least one candidate for every personal
schema node — only useful clusters can produce complete schema mappings
(Sec. 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.errors import ClusteringError
from repro.matchers.selection import MappingElement, MappingElementSets
from repro.schema.repository import RepositoryNodeRef


@dataclass
class Cluster:
    """One cluster of mapping elements.

    Attributes
    ----------
    cluster_id:
        Identifier unique within a :class:`ClusterSet`.
    tree_id:
        The repository tree all members belong to (clusters never span trees
        because the tree distance between trees is infinite).
    members:
        The repository nodes in the cluster.
    centroid:
        The representative node (a *medoid*: always one of the members).
    """

    cluster_id: int
    tree_id: int
    members: Set[RepositoryNodeRef] = field(default_factory=set)
    centroid: Optional[RepositoryNodeRef] = None

    def __post_init__(self) -> None:
        for member in self.members:
            if member.tree_id != self.tree_id:
                raise ClusteringError(
                    f"cluster {self.cluster_id} is in tree {self.tree_id} but member "
                    f"{member.global_id} is in tree {member.tree_id}"
                )
        if self.centroid is not None and self.centroid.tree_id != self.tree_id:
            raise ClusteringError(
                f"cluster {self.cluster_id} centroid is in tree {self.centroid.tree_id}, "
                f"expected tree {self.tree_id}"
            )

    @property
    def size(self) -> int:
        """Number of member repository nodes."""
        return len(self.members)

    def member_global_ids(self) -> Set[int]:
        return {member.global_id for member in self.members}

    def add(self, member: RepositoryNodeRef) -> None:
        if member.tree_id != self.tree_id:
            raise ClusteringError(
                f"cannot add node {member.global_id} from tree {member.tree_id} to cluster "
                f"{self.cluster_id} of tree {self.tree_id}"
            )
        self.members.add(member)

    def mapping_elements(self, candidates: MappingElementSets) -> List[MappingElement]:
        """All mapping elements (personal node, repository node) falling in this cluster."""
        member_ids = self.member_global_ids()
        return [element for element in candidates.iter_all_elements() if element.ref.global_id in member_ids]

    def mapping_element_count(self, candidates: MappingElementSets) -> int:
        """Number of mapping elements in the cluster (Fig. 4's cluster size)."""
        return len(self.mapping_elements(candidates))

    def restricted_candidates(self, candidates: MappingElementSets) -> MappingElementSets:
        """The candidate sets restricted to this cluster's members."""
        return candidates.restrict_to_refs(self.member_global_ids())

    def is_useful(self, candidates: MappingElementSets) -> bool:
        """True when every personal node has at least one candidate in the cluster."""
        return self.restricted_candidates(candidates).is_complete()

    def __contains__(self, ref: RepositoryNodeRef) -> bool:
        return ref in self.members

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster(id={self.cluster_id}, tree={self.tree_id}, size={self.size})"


def clusters_from_groups(grouped: Dict[tuple, Set[RepositoryNodeRef]]) -> ClusterSet:
    """Assemble grouped members into a canonical :class:`ClusterSet`.

    Shared by every offline clusterer (tree, fragment, precomputed partition):
    groups are renumbered in sorted key order — keys must start with the tree
    id — and each cluster's centroid is its smallest member by global id.
    Keeping this in one place is what lets the tests pin different clusterers'
    outputs as identical.
    """
    clusters = ClusterSet()
    for new_id, key in enumerate(sorted(grouped)):
        members = grouped[key]
        clusters.add(
            Cluster(
                cluster_id=new_id,
                tree_id=key[0],
                members=set(members),
                centroid=min(members, key=lambda ref: ref.global_id),
            )
        )
    return clusters


class ClusterSet:
    """The collection of clusters produced by one clustering run."""

    def __init__(self, clusters: Iterable[Cluster] = ()) -> None:
        self._clusters: List[Cluster] = []
        for cluster in clusters:
            self.add(cluster)

    def add(self, cluster: Cluster) -> None:
        self._clusters.append(cluster)

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self._clusters)

    def __len__(self) -> int:
        return len(self._clusters)

    @property
    def cluster_count(self) -> int:
        return len(self._clusters)

    def clusters(self) -> List[Cluster]:
        return list(self._clusters)

    def non_empty(self) -> "ClusterSet":
        return ClusterSet(cluster for cluster in self._clusters if cluster.size > 0)

    def useful_clusters(self, candidates: MappingElementSets) -> List[Cluster]:
        """Clusters able to produce complete mappings for the given candidates."""
        return [cluster for cluster in self._clusters if cluster.is_useful(candidates)]

    def sizes(self) -> List[int]:
        return [cluster.size for cluster in self._clusters]

    def mapping_element_sizes(self, candidates: MappingElementSets) -> List[int]:
        """Cluster sizes measured in mapping elements (the unit of Fig. 4)."""
        return [cluster.mapping_element_count(candidates) for cluster in self._clusters]

    def total_members(self) -> int:
        return sum(cluster.size for cluster in self._clusters)

    def assignment(self) -> Dict[int, int]:
        """Mapping from member global id to cluster id (for stability checks)."""
        mapping: Dict[int, int] = {}
        for cluster in self._clusters:
            for member in cluster.members:
                mapping[member.global_id] = cluster.cluster_id
        return mapping

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterSet(clusters={len(self._clusters)}, members={self.total_members()})"

"""Centroid initialization heuristics.

Initialization "seeds" the centroids around which clusters form; it determines
how many clusters are created and roughly where.  The paper's heuristic seeds a
centroid at every element of ``MEmin`` — the smallest mapping-element set —
because every useful cluster needs at least one element for every personal
node, so regions around rare candidates have the highest capacity to deliver
useful clusters.  Random and per-tree seeding are provided for the ablation
benchmarks.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

from repro.errors import ClusteringError
from repro.matchers.selection import MappingElementSets
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.utils.rng import SeededRandom


class CentroidInitializer(abc.ABC):
    """Chooses the initial centroid nodes for k-means clustering."""

    name: str = "initializer"

    @abc.abstractmethod
    def initial_centroids(
        self,
        candidates: MappingElementSets,
        repository: SchemaRepository,
    ) -> List[RepositoryNodeRef]:
        """The list of initial centroids (possibly many; reclustering trims them)."""


class MEminInitializer(CentroidInitializer):
    """The paper's heuristic: every element of the smallest ``MEn`` set becomes a centroid.

    Regions that contain an element of the rarest candidate set are the only
    regions that can deliver useful clusters, so seeding there maximizes the
    chance that the resulting clusters produce mappings.
    """

    name = "me-min"

    def initial_centroids(
        self,
        candidates: MappingElementSets,
        repository: SchemaRepository,
    ) -> List[RepositoryNodeRef]:
        smallest_node = candidates.smallest_set_node()
        elements = candidates.elements_for(smallest_node)
        if not elements:
            raise ClusteringError(
                f"personal node {smallest_node} has no mapping elements; nothing to seed centroids from"
            )
        # Deduplicate by repository node (two mapping elements can target the
        # same node) and keep a deterministic order.
        unique = {element.ref.global_id: element.ref for element in elements}
        return [unique[global_id] for global_id in sorted(unique)]


class RandomInitializer(CentroidInitializer):
    """Seeds ``centroid_count`` centroids uniformly at random over all mapping elements."""

    name = "random"

    def __init__(self, centroid_count: int, seed: int = 7) -> None:
        if centroid_count < 1:
            raise ClusteringError(f"centroid_count must be positive, got {centroid_count}")
        self.centroid_count = centroid_count
        self.seed = seed

    def initial_centroids(
        self,
        candidates: MappingElementSets,
        repository: SchemaRepository,
    ) -> List[RepositoryNodeRef]:
        unique: Dict[int, RepositoryNodeRef] = {
            element.ref.global_id: element.ref for element in candidates.iter_all_elements()
        }
        refs = [unique[global_id] for global_id in sorted(unique)]
        if not refs:
            raise ClusteringError("no mapping elements to seed centroids from")
        count = min(self.centroid_count, len(refs))
        rng = SeededRandom(self.seed)
        return rng.sample(refs, count)


class PerTreeInitializer(CentroidInitializer):
    """Seeds a fixed number of centroids in every tree that contains mapping elements.

    A simple middle ground between MEmin seeding and random seeding: it ignores
    which candidate set an element belongs to but guarantees coverage of every
    tree, which random seeding does not.
    """

    name = "per-tree"

    def __init__(self, centroids_per_tree: int = 2, seed: int = 7) -> None:
        if centroids_per_tree < 1:
            raise ClusteringError(f"centroids_per_tree must be positive, got {centroids_per_tree}")
        self.centroids_per_tree = centroids_per_tree
        self.seed = seed

    def initial_centroids(
        self,
        candidates: MappingElementSets,
        repository: SchemaRepository,
    ) -> List[RepositoryNodeRef]:
        by_tree: Dict[int, Dict[int, RepositoryNodeRef]] = {}
        for element in candidates.iter_all_elements():
            by_tree.setdefault(element.ref.tree_id, {})[element.ref.global_id] = element.ref
        if not by_tree:
            raise ClusteringError("no mapping elements to seed centroids from")
        rng = SeededRandom(self.seed)
        centroids: List[RepositoryNodeRef] = []
        for tree_id in sorted(by_tree):
            refs = [by_tree[tree_id][global_id] for global_id in sorted(by_tree[tree_id])]
            count = min(self.centroids_per_tree, len(refs))
            centroids.extend(rng.spawn("tree", tree_id).sample(refs, count))
        return centroids

"""Clustering of mapping elements (the paper's core contribution).

The clusterer (component *c* of Fig. 3) groups the mapping elements produced by
the element-matching stage into clusters; the mapping generator then searches
each cluster independently, which shrinks its search space from
``O(|MEn|^|Ns|)`` to ``O(c * (|MEn|/c)^|Ns|)``.

This package implements the adapted k-means algorithm of Section 4 — MEmin
centroid seeding, tree-distance measure, medoid centroids, join / remove
reclustering, relaxed convergence — plus the *tree clusters* baseline (each
repository tree is one cluster, i.e. non-clustered matching) and an offline
fragment-based baseline in the spirit of Rahm et al.'s fragment matching.
"""

from repro.clustering.cluster import Cluster, ClusterSet
from repro.clustering.distance import BlendedDistance, ClusteringDistance, PathLengthDistance
from repro.clustering.initialization import (
    CentroidInitializer,
    MEminInitializer,
    PerTreeInitializer,
    RandomInitializer,
)
from repro.clustering.reclustering import (
    CompositeReclustering,
    JoinReclustering,
    NoReclustering,
    ReclusteringStrategy,
    RemoveReclustering,
)
from repro.clustering.convergence import ConvergenceCriterion, RelaxedConvergence, TotalStability
from repro.clustering.kmeans import Clusterer, ClusteringResult, KMeansClusterer
from repro.clustering.baselines import FragmentClusterer, TreeClusterer
from repro.clustering.quality import cluster_quality, order_clusters_by_quality

__all__ = [
    "BlendedDistance",
    "CentroidInitializer",
    "Cluster",
    "ClusterSet",
    "Clusterer",
    "ClusteringDistance",
    "ClusteringResult",
    "CompositeReclustering",
    "ConvergenceCriterion",
    "FragmentClusterer",
    "JoinReclustering",
    "KMeansClusterer",
    "MEminInitializer",
    "NoReclustering",
    "PathLengthDistance",
    "PerTreeInitializer",
    "RandomInitializer",
    "ReclusteringStrategy",
    "RelaxedConvergence",
    "RemoveReclustering",
    "TotalStability",
    "TreeClusterer",
    "cluster_quality",
    "order_clusters_by_quality",
]

"""Node labeling schemes for constant-time structural queries.

The paper relies on node labeling techniques (Kaplan & Milo) "to provide
low-cost computation of path lengths" for both the clustering distance measure
and the path-length hint of the objective function.  This package provides:

* :class:`~repro.labeling.interval.IntervalLabeling` — pre/post-order interval
  labels answering ancestor/descendant queries in O(1);
* :class:`~repro.labeling.sparse_table.SparseTable` — static range-minimum
  queries in O(1) after O(n log n) preprocessing;
* :class:`~repro.labeling.distance.TreeDistanceOracle` — Euler-tour + sparse
  table LCA, giving O(1) tree distance (path length) queries;
* :class:`~repro.labeling.distance.RepositoryDistanceOracle` — per-tree oracles
  over a whole repository, treating nodes of different trees as unreachable.
"""

from repro.labeling.interval import IntervalLabeling
from repro.labeling.sparse_table import SparseTable
from repro.labeling.distance import RepositoryDistanceOracle, TreeDistanceOracle

__all__ = [
    "IntervalLabeling",
    "RepositoryDistanceOracle",
    "SparseTable",
    "TreeDistanceOracle",
]

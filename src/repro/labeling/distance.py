"""Constant-time tree distance (path length) oracles.

``TreeDistanceOracle`` preprocesses one tree with an Euler tour and a sparse
table over the tour's depth sequence; lowest-common-ancestor queries then take
two array lookups, and ``distance(u, v) = depth(u) + depth(v) - 2 * depth(lca)``.

``RepositoryDistanceOracle`` lazily builds one oracle per repository tree and
answers distance queries between arbitrary repository nodes, returning ``None``
for nodes of different trees (the clustering distance treats those as
infinitely far apart, so clusters never span trees).

Both the k-means clusterer (distance measure, Sec. 4) and the Bellflower
objective function (path-length hint, Eq. 2) are built on these oracles, which
is what the paper means by using node labeling "to provide low-cost computation
of path lengths".
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LabelingError, UnknownNodeError
from repro.labeling.sparse_table import SparseTable
from repro.schema.repository import RepositoryNodeRef, SchemaRepository, shift_tree_keys
from repro.schema.tree import SchemaTree


class TreeDistanceOracle:
    """O(1) LCA / path-length queries for a single schema tree."""

    def __init__(self, tree: SchemaTree) -> None:
        if tree.node_count == 0:
            raise LabelingError(f"cannot build a distance oracle over empty tree {tree.name!r}")
        self.tree = tree
        self._euler_nodes: List[int] = []
        self._euler_depths: List[int] = []
        self._first_occurrence: List[int] = [-1] * tree.node_count
        self._build_euler_tour()
        self._rmq = SparseTable(self._euler_depths)

    # -- (de)serialization ----------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """The oracle's tables as JSON-friendly lists (repository snapshots).

        The sparse-table levels are included so a snapshot load skips the
        doubling construction entirely; they are pure derived data, so a
        corrupt payload can at worst produce wrong distances — the round-trip
        tests pin exact equality against a fresh build.
        """
        return {
            "euler_nodes": list(self._euler_nodes),
            "euler_depths": list(self._euler_depths),
            "first_occurrence": list(self._first_occurrence),
            "rmq_levels": self._rmq.levels(),
        }

    @classmethod
    def from_payload(cls, tree: SchemaTree, payload: Dict[str, object]) -> "TreeDistanceOracle":
        """Rebuild an oracle from :meth:`to_payload` output for the same tree.

        The payload sequences are adopted as-is: snapshot and shared-memory
        loaders hand over live ``array('i')`` buffers, and rehydrating them
        into per-integer Python objects would dominate load time and memory.
        Oracles built this way are complete, so the build paths that append to
        the tour never run against an adopted buffer.
        """
        euler_nodes = payload["euler_nodes"]
        euler_depths = payload["euler_depths"]
        first_occurrence = payload["first_occurrence"]
        if len(first_occurrence) != tree.node_count or len(euler_nodes) != 2 * tree.node_count - 1:
            raise LabelingError(
                f"serialized oracle does not fit tree {tree.name!r} "
                f"({tree.node_count} nodes, tour length {len(euler_nodes)})"
            )
        oracle = cls.__new__(cls)
        oracle.tree = tree
        oracle._euler_nodes = euler_nodes
        oracle._euler_depths = euler_depths
        oracle._first_occurrence = first_occurrence
        oracle._rmq = SparseTable.from_built(euler_depths, payload["rmq_levels"])
        return oracle

    def _build_euler_tour(self) -> None:
        # Iterative Euler tour: every time a node is entered or returned to
        # after a child, it is appended to the tour.  Depths are carried on the
        # stack so the tour never re-queries the tree per entry (a tour has
        # 2n - 1 entries, and each depth lookup used to cost a bounds-checked
        # method call).
        tree = self.tree
        stack: List[Tuple[int, int, int]] = [(tree.root_id, 0, 0)]
        children_cache: Dict[int, List[int]] = {}
        while stack:
            node_id, child_index, depth = stack.pop()
            if child_index == 0:
                if self._first_occurrence[node_id] == -1:
                    self._first_occurrence[node_id] = len(self._euler_nodes)
            self._euler_nodes.append(node_id)
            self._euler_depths.append(depth)
            children = children_cache.get(node_id)
            if children is None:
                children = children_cache[node_id] = tree.children_ids(node_id)
            if child_index < len(children):
                stack.append((node_id, child_index + 1, depth))
                stack.append((children[child_index], 0, depth + 1))

    # -- queries -------------------------------------------------------------

    def lca(self, first_id: int, second_id: int) -> int:
        """Lowest common ancestor of two nodes."""
        for node_id in (first_id, second_id):
            if not self.tree.has_node(node_id):
                raise UnknownNodeError(node_id, context=f"distance oracle of tree {self.tree.name!r}")
        low = self._first_occurrence[first_id]
        high = self._first_occurrence[second_id]
        index = self._rmq.argmin(low, high)
        return self._euler_nodes[index]

    def depth(self, node_id: int) -> int:
        return self.tree.depth(node_id)

    def distance(self, first_id: int, second_id: int) -> int:
        """Path length (number of edges) between two nodes."""
        if first_id == second_id:
            if not self.tree.has_node(first_id):
                raise UnknownNodeError(first_id, context=f"distance oracle of tree {self.tree.name!r}")
            return 0
        lca = self.lca(first_id, second_id)
        return self.tree.depth(first_id) + self.tree.depth(second_id) - 2 * self.tree.depth(lca)

    def path_edge_ids(self, first_id: int, second_id: int) -> Set[int]:
        """Edges of the path between two nodes, identified by child node id.

        Uses the LCA to walk both root paths, avoiding a full path search.  The
        result feeds the union that determines ``|Et|`` of a mapping subtree.
        """
        lca = self.lca(first_id, second_id)
        edges: Set[int] = set()
        for start in (first_id, second_id):
            current = start
            while current != lca:
                edges.add(current)
                parent = self.tree.parent_id(current)
                if parent is None:  # pragma: no cover - LCA guarantees termination
                    raise LabelingError(
                        f"walked past the root from node {start} towards LCA {lca} in tree {self.tree.name!r}"
                    )
                current = parent
        return edges


class RepositoryDistanceOracle:
    """Per-tree distance oracles over a whole repository.

    Oracles are built lazily on first use so that matching problems touching a
    small part of a large repository do not pay preprocessing for every tree.
    """

    def __init__(self, repository: SchemaRepository) -> None:
        self.repository = repository
        self._oracles: Dict[int, TreeDistanceOracle] = {}
        # Concurrent per-cluster mapping generation (repro.service) may query
        # the oracle from several worker threads; the lock only guards the
        # build-and-insert of a missing per-tree oracle, not the O(1) queries.
        self._build_lock = threading.Lock()

    # -- pickling (process executors) -----------------------------------------
    # Mapping problems shipped to worker processes reference the oracle.  The
    # lock cannot cross a process boundary, and the built per-tree tables are
    # cheap to rebuild lazily compared to serializing them, so a pickled
    # oracle travels empty: each worker rebuilds only the trees its clusters
    # actually touch.  (Snapshots persist oracles through their own explicit
    # format, not through pickle.)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_build_lock"]
        state["_oracles"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._build_lock = threading.Lock()

    def __reduce_ex__(self, protocol):
        # While the owning service has a live shared-memory view of this
        # repository, ship only the segment name: the worker attaches to the
        # published tables instead of unpickling the repository.  The check is
        # version-gated, so an oracle over a since-mutated repository falls
        # back to the plain copy path (repro.service.sharedmem).
        view = getattr(self.repository, "_shared_view", None)
        if (
            view is not None
            and not view.stale
            and view.repository_version == getattr(self.repository, "version", None)
        ):
            from repro.service.sharedmem import _attach_repository_oracle

            return (_attach_repository_oracle, (view.name,))
        return super().__reduce_ex__(protocol)

    def oracle(self, tree_id: int) -> TreeDistanceOracle:
        """The (cached) oracle for one repository tree (thread-safe build)."""
        oracle = self._oracles.get(tree_id)
        if oracle is None:
            with self._build_lock:
                oracle = self._oracles.get(tree_id)
                if oracle is None:
                    oracle = TreeDistanceOracle(self.repository.tree(tree_id))
                    self._oracles[tree_id] = oracle
        return oracle

    def build_all(self) -> None:
        """Materialize the oracle of every repository tree (service warm-up)."""
        for tree in self.repository.trees():
            self.oracle(tree.tree_id)

    def on_tree_removed(self, removed_tree_id: int) -> None:
        """Re-key the cache after ``SchemaRepository.remove_tree``.

        Only the removed tree's oracle row is dropped; oracles of later trees
        are reused under their decremented tree id (their underlying
        :class:`SchemaTree` objects are untouched by the removal, so every
        cached table stays valid).
        """
        with self._build_lock:
            self._oracles = shift_tree_keys(self._oracles, removed_tree_id)

    def install(self, tree_id: int, oracle: TreeDistanceOracle) -> None:
        """Install a deserialized per-tree oracle (snapshot load)."""
        if oracle.tree is not self.repository.tree(tree_id):
            raise LabelingError(
                f"oracle for tree {oracle.tree.name!r} does not belong to "
                f"tree id {tree_id} of repository {self.repository.name!r}"
            )
        with self._build_lock:
            self._oracles[tree_id] = oracle

    def built_tree_ids(self) -> List[int]:
        """Tree ids whose oracles are currently materialized (snapshot write)."""
        return sorted(self._oracles)

    @property
    def built_oracle_count(self) -> int:
        """How many per-tree oracles have been materialized so far."""
        return len(self._oracles)

    def distance(self, first: RepositoryNodeRef, second: RepositoryNodeRef) -> Optional[int]:
        """Path length between two repository nodes, ``None`` across trees."""
        if first.tree_id != second.tree_id:
            return None
        return self.oracle(first.tree_id).distance(first.node_id, second.node_id)

    def lca(self, first: RepositoryNodeRef, second: RepositoryNodeRef) -> Optional[RepositoryNodeRef]:
        """LCA of two repository nodes as a node ref, ``None`` across trees."""
        if first.tree_id != second.tree_id:
            return None
        lca_node = self.oracle(first.tree_id).lca(first.node_id, second.node_id)
        return self.repository.ref(first.tree_id, lca_node)

    def path_edge_ids(self, first: RepositoryNodeRef, second: RepositoryNodeRef) -> Optional[Set[int]]:
        """Path edge set (child node ids) between two nodes of the same tree."""
        if first.tree_id != second.tree_id:
            return None
        return self.oracle(first.tree_id).path_edge_ids(first.node_id, second.node_id)

"""Pre/post-order interval labels for O(1) ancestor queries.

Every node receives an interval ``[start, end]`` such that node ``a`` is an
ancestor of (or equal to) node ``b`` exactly when ``a``'s interval contains
``b``'s.  This is the simplest of the labeling schemes surveyed by Kaplan and
Milo and is used by the structural matcher and as a cross-check for the
Euler-tour distance oracle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import LabelingError, UnknownNodeError
from repro.schema.tree import SchemaTree


class IntervalLabeling:
    """Containment interval labels for one schema tree."""

    def __init__(self, tree: SchemaTree) -> None:
        if tree.node_count == 0:
            raise LabelingError(f"cannot label empty tree {tree.name!r}")
        self.tree = tree
        self._start: List[int] = [0] * tree.node_count
        self._end: List[int] = [0] * tree.node_count
        self._compute()

    def _compute(self) -> None:
        counter = 0
        # Iterative DFS emitting entry (start) and exit (end) ticks.
        stack: List[Tuple[int, bool]] = [(self.tree.root_id, False)]
        while stack:
            node_id, exiting = stack.pop()
            if exiting:
                self._end[node_id] = counter
                counter += 1
                continue
            self._start[node_id] = counter
            counter += 1
            stack.append((node_id, True))
            for child_id in reversed(self.tree.children_ids(node_id)):
                stack.append((child_id, False))

    def label(self, node_id: int) -> Tuple[int, int]:
        """The ``(start, end)`` interval of a node."""
        if not self.tree.has_node(node_id):
            raise UnknownNodeError(node_id, context=f"interval labeling of tree {self.tree.name!r}")
        return (self._start[node_id], self._end[node_id])

    def is_ancestor_or_self(self, ancestor_id: int, descendant_id: int) -> bool:
        """True when ``ancestor_id`` is ``descendant_id`` or one of its ancestors."""
        a_start, a_end = self.label(ancestor_id)
        d_start, d_end = self.label(descendant_id)
        return a_start <= d_start and d_end <= a_end

    def is_ancestor(self, ancestor_id: int, descendant_id: int) -> bool:
        """Strict ancestor test."""
        return ancestor_id != descendant_id and self.is_ancestor_or_self(ancestor_id, descendant_id)

    def are_disjoint(self, first_id: int, second_id: int) -> bool:
        """True when neither node is an ancestor of the other."""
        return not self.is_ancestor_or_self(first_id, second_id) and not self.is_ancestor_or_self(
            second_id, first_id
        )

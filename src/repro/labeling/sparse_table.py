"""Static sparse table for O(1) range-minimum queries.

Classic doubling structure: ``table[k][i]`` stores the index of the minimum in
the window ``[i, i + 2^k)``.  The tree distance oracle uses it over the depth
sequence of an Euler tour, which turns LCA (and hence path length) queries into
two table lookups.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import LabelingError


class SparseTable:
    """Range-minimum query structure over a fixed sequence of comparable values."""

    def __init__(self, values: Sequence[float]) -> None:
        if len(values) == 0:
            raise LabelingError("cannot build a sparse table over an empty sequence")
        self._values = list(values)
        size = len(self._values)
        self._log = [0] * (size + 1)
        for i in range(2, size + 1):
            self._log[i] = self._log[i // 2] + 1
        levels = self._log[size] + 1
        self._table: List[List[int]] = [list(range(size))]
        for level in range(1, levels):
            previous = self._table[level - 1]
            half = 1 << (level - 1)
            width = size - (1 << level) + 1
            row = []
            for i in range(max(0, width)):
                left = previous[i]
                right = previous[i + half]
                row.append(left if self._values[left] <= self._values[right] else right)
            self._table.append(row)

    @classmethod
    def from_built(cls, values: Sequence[float], table: Sequence[Sequence[int]]) -> "SparseTable":
        """Reconstruct a table from previously built levels (snapshot load).

        ``table`` must be the levels produced by a prior construction over the
        same ``values``; only the logarithm lookup is recomputed (a linear
        integer pass, far below the O(n log n) doubling construction).
        """
        if len(values) == 0:
            raise LabelingError("cannot rebuild a sparse table over an empty sequence")
        instance = cls.__new__(cls)
        # Adopt list inputs, keep everything else (array('i') buffers, range
        # for the identity level) live — argmin/minimum only ever index and
        # len() them, and copying per-integer would defeat the packed loaders.
        instance._values = values if not isinstance(values, list) else list(values)
        size = len(instance._values)
        instance._log = [0] * (size + 1)
        for i in range(2, size + 1):
            instance._log[i] = instance._log[i // 2] + 1
        instance._table = [row if not isinstance(row, list) else list(row) for row in table]
        if len(instance._table) != instance._log[size] + 1:
            raise LabelingError(
                f"serialized sparse table has {len(instance._table)} levels, "
                f"expected {instance._log[size] + 1} for size {size}"
            )
        return instance

    def levels(self) -> List[List[int]]:
        """The raw doubling levels (serialized by repository snapshots)."""
        return [list(row) for row in self._table]

    def __len__(self) -> int:
        return len(self._values)

    def argmin(self, low: int, high: int) -> int:
        """Index of the minimum value in the inclusive range ``[low, high]``."""
        if low > high:
            low, high = high, low
        if low < 0 or high >= len(self._values):
            raise LabelingError(f"range [{low}, {high}] is out of bounds for size {len(self._values)}")
        span = high - low + 1
        level = self._log[span]
        left = self._table[level][low]
        right = self._table[level][high - (1 << level) + 1]
        return left if self._values[left] <= self._values[right] else right

    def minimum(self, low: int, high: int) -> float:
        """Minimum value in the inclusive range ``[low, high]``."""
        return self._values[self.argmin(low, high)]

"""Packed evaluation table for the branch-and-bound ``fast_bound``.

``TreeSearchContext.bound`` is the single hottest call of a mapping search —
one evaluation per search-tree node.  For :class:`BellflowerObjective` the
bound is::

    alpha * clamp(optimistic_similarity / node_count)
    + (1 - alpha) * path_similarity(schema, partial_edge_count)

Only the last term depends on the (integer) partial edge count, and a search
over one personal schema asks for a small, dense range of edge counts, so the
whole ``(1 - alpha) * path_similarity(schema, e)`` family is precomputed into
a packed ``array('d')`` indexed by ``e`` and the per-node work collapses to a
multiply, a clamp, an add and one table load.

Bit-identity: every float operation is performed in the same order as
``fast_bound`` — the table entry is literally ``(1 - alpha) *
path_similarity(schema, e)`` (the same two Python expressions), and the
``alpha * clamp(sim) + term`` combination matches ``fast_bound``'s final
expression because float addition of the two products is performed on
identical operands.  The differential suite in ``tests/kernels/`` pins this.
"""

from __future__ import annotations

from array import array

from repro.schema.tree import SchemaTree


class PackedBoundTable:
    """Precomputed ``fast_bound`` terms for one objective × personal schema."""

    __slots__ = ("alpha", "node_count", "_terms", "_term_at")

    def __init__(self, alpha: float, node_count: int, term_at) -> None:
        self.alpha = alpha
        self.node_count = node_count
        self._terms = array("d")
        self._term_at = term_at

    def bound(self, optimistic_similarity: float, partial_target_edge_count: int) -> float:
        """``fast_bound(schema, assigned, remaining, e)`` with the totals pre-added."""
        terms = self._terms
        if partial_target_edge_count >= len(terms):
            term_at = self._term_at
            for edge_count in range(len(terms), partial_target_edge_count + 1):
                terms.append(term_at(edge_count))
        sim_bound = optimistic_similarity / self.node_count
        if sim_bound < 0.0:
            sim_bound = 0.0
        elif sim_bound > 1.0:
            sim_bound = 1.0
        return self.alpha * sim_bound + terms[partial_target_edge_count]


def bellflower_bound_table(objective, personal_schema: SchemaTree):
    """Build a :class:`PackedBoundTable` for a Bellflower-family objective.

    Returns ``None`` when a subclass overrides the pieces the table bakes in
    (``fast_bound`` or ``path_similarity``) — the generic per-call path must
    win in that case — or when the schema is empty (``fast_bound`` special-
    cases ``node_count == 0``).
    """
    from repro.objective.bellflower import BellflowerObjective

    cls = type(objective)
    if (
        cls.fast_bound is not BellflowerObjective.fast_bound
        or cls.path_similarity is not BellflowerObjective.path_similarity
    ):
        return None
    node_count = personal_schema.node_count
    if node_count == 0:
        return None
    alpha = objective.alpha
    path_weight = 1.0 - alpha

    def term_at(edge_count: int) -> float:
        return path_weight * objective.path_similarity(personal_schema, edge_count)

    return PackedBoundTable(alpha, node_count, term_at)

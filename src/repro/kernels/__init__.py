"""Array kernels for the hot matching paths.

This package hosts vectorized implementations of the two inner loops that
dominate a matching run:

* :mod:`repro.kernels.strings` — a batched unrestricted Damerau–Levenshtein
  over numpy code-point matrices, used by the fuzzy batch element matcher to
  score every surviving candidate of one query in a handful of array sweeps
  instead of one Python DP per pair.
* :mod:`repro.kernels.objective` — the branch-and-bound ``fast_bound``
  evaluated over a packed per-edge-count table of precomputed path terms.

Both kernels are *bit-identical* to the scalar implementations they replace
(:mod:`repro.matchers.string_metrics` and
:meth:`repro.objective.bellflower.BellflowerObjective.fast_bound`); the
differential suite in ``tests/kernels/`` pins that property.  numpy is a hard
dependency of the package, but every call site degrades to the scalar path
when a kernel declines (``HAVE_NUMPY`` false, tiny batches, unusual inputs),
so the library keeps working without it.
"""

from repro.kernels.strings import (
    HAVE_NUMPY,
    PackedNameTable,
    batch_fuzzy_scores,
)

__all__ = ["HAVE_NUMPY", "PackedNameTable", "batch_fuzzy_scores"]

"""Batched Damerau–Levenshtein kernel over packed code-point matrices.

The scalar batch matcher scores one query against its prefilter survivors by
running :func:`repro.matchers.string_metrics.bounded_damerau_levenshtein` once
per pair — a Python DP whose interpreter overhead dominates for short element
names.  This module vectorizes that loop **across candidates**: all survivors
are packed into one ``(n, max_len)`` int32 matrix of code points, and a single
DP table of shape ``(len(query) + 2, max_len + 2, n)`` is swept row by row, so
the per-cell work becomes a handful of numpy array operations over the whole
candidate axis.

Bit-identity with the scalar path
---------------------------------
:func:`batch_fuzzy_scores` reproduces, candidate by candidate, the exact
result of::

    fuzzy_similarity(query, key, case_sensitive=True, min_similarity=threshold)

including every branch of that function:

* the length precheck (``1 - (longest - shortest)/longest < threshold``)
  excludes a candidate *before* any DP, exactly like the scalar code —
  without it a candidate whose true distance equals both its edit budget and
  its length gap would receive a sub-threshold score the scalar path reports
  as ``0.0``;
* ``bounded_damerau_levenshtein(a, b, limit)`` equals
  ``min(d(a, b), limit + 1)`` for the *exact* unrestricted distance ``d`` (its
  early abandon is a pure optimization), so the kernel computes the full DP
  and applies the clamp as a comparison against the same
  ``edit_budget``-derived limit;
* scores are formed as ``1.0 - distance / longest`` in float64 — IEEE-754
  identical to the CPython expression — and a candidate enters the result
  dict iff its score is ``> 0.0``, preserving dict contents *and* insertion
  order.

The transposition look-back state is vectorized by observing that
``last_row`` is only ever *read* for characters of the candidate and only
*written* for characters of the query: mapping candidate code points onto the
query's unique-character alphabet (with a sentinel for "not in the query")
turns the dict into a small integer vector indexed per column.  Candidate
rows shorter than the matrix width are padded with ``-1`` — a code point no
string contains — whose cells never influence any read column because the
recurrence only looks left and up.

The kernel *declines* (returns ``None``) rather than guessing when numpy is
unavailable, the batch is too small to amortize array overhead, the query is
empty or over-long, or the threshold is outside ``[0, 1]``; callers then fall
back to the scalar loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - the container bakes numpy in
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Same barrier as the scalar kernel's border rows.  int32 is safe: the
#: largest value a table cell can reach is ``_BIG + 2 * MAX_PACKED_LEN``,
#: comfortably below ``2**31``.
_BIG = 1 << 30

#: Keys longer than this are not packed (mirrors ``_MAX_POOLED_LEN`` in the
#: scalar kernel): element names are short, and one adversarially long name
#: must not force a quadratic-width DP matrix on the whole batch.
MAX_PACKED_LEN = 512

#: Batches smaller than this run the scalar loop; below a handful of
#: candidates the fixed cost of packing and array dispatch exceeds the DP.
MIN_BATCH_SIZE = 8

#: Soft cap on the DP table's slab footprint in bytes.  Candidates are
#: processed in contiguous slabs sized so one ``(la+2, W+2, slab)`` int32
#: table stays under this budget.
_SLAB_BUDGET_BYTES = 48 * 1024 * 1024


def _encode(text: str) -> Optional["np.ndarray"]:
    """Code points of ``text`` as an int32 vector, or ``None`` if unencodable."""
    try:
        raw = text.encode("utf-32-le")
    except UnicodeEncodeError:  # lone surrogates — let the scalar path handle them
        return None
    return np.frombuffer(raw, dtype="<i4").astype(np.int32, copy=False)


class PackedNameTable:
    """All keys of a name index packed into one padded code-point matrix.

    ``codes[i, :lengths[i]]`` holds the code points of key ``i``; the
    remainder of the row is ``-1`` (no string contains a negative code
    point, so padding can never match a query character).
    """

    __slots__ = ("codes", "lengths", "width")

    def __init__(self, codes: "np.ndarray", lengths: "np.ndarray", width: int) -> None:
        self.codes = codes
        self.lengths = lengths
        self.width = width

    @classmethod
    def build(cls, keys: Sequence[str]) -> Optional["PackedNameTable"]:
        """Pack ``keys``; ``None`` when numpy is missing or a key is too long."""
        if not HAVE_NUMPY:
            return None
        width = 0
        for key in keys:
            if len(key) > width:
                width = len(key)
        if width > MAX_PACKED_LEN:
            return None
        codes = np.full((len(keys), width), -1, dtype=np.int32)
        lengths = np.zeros(len(keys), dtype=np.int64)
        for i, key in enumerate(keys):
            if key:
                encoded = _encode(key)
                if encoded is None:
                    return None
                codes[i, : len(key)] = encoded
            lengths[i] = len(key)
        return cls(codes, lengths, width)


def _batch_damerau(
    qidx: "np.ndarray",
    alphabet_size: int,
    cand_mapped: "np.ndarray",
    cand_lens: "np.ndarray",
) -> "np.ndarray":
    """Exact unrestricted Damerau–Levenshtein distances, one DP over all rows.

    ``qidx`` maps each query position to an id in ``[0, alphabet_size)``;
    ``cand_mapped`` maps each candidate cell to the same alphabet with
    ``alphabet_size`` as the "not a query character" sentinel.  Cell
    ``table[i + 1, j + 1, n]`` equals the scalar ``table[i + 1][j + 1]`` of
    :func:`repro.matchers.string_metrics.damerau_levenshtein_distance` for
    candidate ``n`` — same borders, same transposition look-back — so the
    gathered results are the exact distances.
    """
    la = len(qidx)
    count, width = cand_mapped.shape

    table = np.empty((la + 2, width + 2, count), dtype=np.int32)
    table[0] = _BIG
    table[:, 0] = _BIG
    table[1, 1:] = np.arange(width + 1, dtype=np.int32)[:, None]
    table[2:, 1] = np.arange(1, la + 1, dtype=np.int32)[:, None]

    # last_row of the scalar DP, keyed by query-character id; the sentinel
    # slot is never written, so sentinel columns always look back at the
    # all-barrier border row 0 — exactly ``last_row.get(char, 0)``.
    last_row = np.zeros(alphabet_size + 1, dtype=np.intp)
    rows = np.arange(count)
    for i in range(1, la + 1):
        query_char = qidx[i - 1]
        last_match_column = np.zeros(count, dtype=np.intp)
        previous = table[i]
        current = table[i + 1]
        for j in range(1, width + 1):
            column_chars = cand_mapped[:, j - 1]
            row_of_last_match = last_row[column_chars]
            match = column_chars == query_char
            value = previous[j] + np.where(match, np.int32(0), np.int32(1))
            np.minimum(value, current[j] + 1, out=value)
            np.minimum(value, previous[j + 1] + 1, out=value)
            transposition = (
                table[row_of_last_match, last_match_column, rows]
                + (i - row_of_last_match)
                + (j - last_match_column - 1)
            )
            np.minimum(value, transposition, out=value, casting="unsafe")
            current[j + 1] = value
            last_match_column = np.where(match, j, last_match_column)
        last_row[query_char] = i
    return table[la + 1, cand_lens + 1, rows].astype(np.int64)


def batch_fuzzy_scores(
    query: str,
    table: Optional[PackedNameTable],
    candidate_ids: Sequence[int],
    threshold: float,
) -> Optional[Dict[int, float]]:
    """Vectorized equivalent of the scalar per-candidate scoring loop.

    Returns the same dict the scalar loop builds::

        {name_id: fuzzy_similarity(query, keys[name_id], case_sensitive=True,
                                    min_similarity=threshold)
         for name_id in candidate_ids if score > 0.0}

    (same keys, same float bits, same insertion order), or ``None`` when the
    kernel declines and the caller should run the scalar loop instead.
    """
    if not HAVE_NUMPY or table is None:
        return None
    count = len(candidate_ids)
    if count < MIN_BATCH_SIZE:
        return None
    la = len(query)
    if la == 0 or la > MAX_PACKED_LEN:
        # Empty queries hit fuzzy_similarity's longest == 0 / shortest == 0
        # special cases; keep that logic in one place (the scalar path).
        return None
    if not 0.0 <= threshold <= 1.0:
        return None
    qcodes = _encode(query)
    if qcodes is None:
        return None

    alphabet = np.unique(qcodes)
    qidx = np.searchsorted(alphabet, qcodes)
    sentinel = len(alphabet)

    ids = np.asarray(candidate_ids, dtype=np.intp)
    lens = table.lengths[ids]
    width_bound = int(lens.max(initial=0))
    cell_bytes = (la + 2) * (width_bound + 2) * 4
    slab = max(1, min(count, _SLAB_BUDGET_BYTES // max(cell_bytes, 1)))

    scores: Dict[int, float] = {}
    for start in range(0, count, slab):
        part_ids = ids[start : start + slab]
        part_lens = lens[start : start + slab]
        longest = np.maximum(part_lens, la)
        shortest = np.minimum(part_lens, la)
        if threshold > 0.0:
            keep = 1.0 - (longest - shortest) / longest >= threshold
            limits = ((1.0 - threshold) * longest).astype(np.int64) + 1
        else:
            keep = np.ones(len(part_ids), dtype=bool)
            limits = la + part_lens
        distances = np.zeros(len(part_ids), dtype=np.int64)
        kept = np.nonzero(keep)[0]
        if kept.size:
            kept_lens = part_lens[kept]
            width = int(kept_lens.max(initial=0))
            sub = table.codes[part_ids[kept], :width]
            position = np.minimum(np.searchsorted(alphabet, sub), sentinel - 1)
            mapped = np.where(alphabet[position] == sub, position, sentinel)
            distances[kept] = _batch_damerau(qidx, sentinel, mapped, kept_lens)
        part_scores = 1.0 - distances / longest
        include = keep & (distances <= limits) & (part_scores > 0.0)
        for k in np.nonzero(include)[0]:
            scores[int(part_ids[k])] = float(part_scores[k])
    return scores


def scalar_fuzzy_scores(
    query: str,
    keys: Sequence[str],
    candidate_ids: Sequence[int],
    threshold: float,
) -> Dict[int, float]:
    """The scalar reference loop the batch kernel must agree with exactly."""
    from repro.matchers.string_metrics import fuzzy_similarity

    scores: Dict[int, float] = {}
    for name_id in candidate_ids:
        score = fuzzy_similarity(
            query, keys[name_id], case_sensitive=True, min_similarity=threshold
        )
        if score > 0.0:
            scores[name_id] = score
    return scores

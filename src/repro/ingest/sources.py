"""Pluggable corpus sources for the ingestion pipeline.

A *source* enumerates raw schema documents — bytes, not parsed trees — in a
deterministic order.  The fetch stage copies those bytes into the run
directory and records a checkpoint, so every later stage (and every resumed
run) reads from the run directory instead of going back to the source.  Three
shapes cover the corpora the pipeline meets:

* :class:`DirectorySource` — ``.dtd`` / ``.xsd`` files under a local
  directory tree (the shape of a web-crawl landing area), ordered by relative
  POSIX path;
* :class:`ArchiveSource` — the same files inside a ``.zip`` or ``.tar[.gz]``
  archive, ordered by member name, read without extracting to disk;
* :class:`BundledCorpusSource` — the hand-written documents of
  :mod:`repro.workload.corpus`, ordered by document name.

Document ids are ``<source-label>/<relative-name>``: stable across runs (the
pipeline's byte-identity guarantee starts here), unique across sources (the
label disambiguates), and carried through checkpoints, quarantine records and
the final merge order.
"""

from __future__ import annotations

import tarfile
import zipfile
from pathlib import Path
from typing import Iterator, List, NamedTuple, Protocol, runtime_checkable

from repro.errors import IngestError

#: File suffixes the pipeline recognizes, mapped to the parser format name.
SCHEMA_SUFFIXES = {".dtd": "dtd", ".xsd": "xsd"}


class SourceDocument(NamedTuple):
    """One raw document as a source hands it to the fetch stage.

    ``doc_id`` is the stable identity (``<source-label>/<relative-name>``);
    ``format`` is ``"dtd"`` or ``"xsd"``; ``payload`` is the raw bytes
    (decoding is the parse stage's job — a mis-encoded file must reach the
    quarantine, not kill enumeration); ``origin`` names where the bytes came
    from, for quarantine records and status output.
    """

    doc_id: str
    format: str
    payload: bytes
    origin: str


@runtime_checkable
class CorpusSource(Protocol):
    """The surface a fetch-stage source implements."""

    label: str

    def documents(self) -> Iterator[SourceDocument]: ...


def _format_for(name: str) -> str | None:
    suffix = Path(name).suffix.lower()
    return SCHEMA_SUFFIXES.get(suffix)


def _source_label(label: str) -> str:
    if not label or "/" in label:
        raise IngestError(f"source label {label!r} must be non-empty and slash-free")
    return label


class DirectorySource:
    """Every ``.dtd``/``.xsd`` file under a directory tree, sorted by path."""

    def __init__(self, directory: str | Path, label: str | None = None) -> None:
        self.directory = Path(directory)
        self.label = _source_label(label or self.directory.name or "dir")

    def documents(self) -> Iterator[SourceDocument]:
        if not self.directory.is_dir():
            raise IngestError(f"source directory {self.directory} does not exist")
        entries: List[tuple[str, Path, str]] = []
        for path in self.directory.rglob("*"):
            if not path.is_file():
                continue
            format_name = _format_for(path.name)
            if format_name is None:
                continue
            entries.append((path.relative_to(self.directory).as_posix(), path, format_name))
        for relative, path, format_name in sorted(entries):
            try:
                payload = path.read_bytes()
            except OSError as exc:
                raise IngestError(f"cannot read source document {path}: {exc}") from exc
            yield SourceDocument(
                doc_id=f"{self.label}/{relative}",
                format=format_name,
                payload=payload,
                origin=str(path),
            )


class ArchiveSource:
    """Every ``.dtd``/``.xsd`` member of a zip or tar archive, sorted by name."""

    def __init__(self, archive: str | Path, label: str | None = None) -> None:
        self.archive = Path(archive)
        self.label = _source_label(label or self.archive.stem.replace("/", "-") or "archive")

    def documents(self) -> Iterator[SourceDocument]:
        if not self.archive.is_file():
            raise IngestError(f"source archive {self.archive} does not exist")
        if zipfile.is_zipfile(self.archive):
            yield from self._zip_documents()
        elif tarfile.is_tarfile(self.archive):
            yield from self._tar_documents()
        else:
            raise IngestError(f"{self.archive} is neither a zip nor a tar archive")

    def _zip_documents(self) -> Iterator[SourceDocument]:
        with zipfile.ZipFile(self.archive) as archive:
            members = [
                info.filename
                for info in archive.infolist()
                if not info.is_dir() and _format_for(info.filename) is not None
            ]
            for member in sorted(members):
                yield SourceDocument(
                    doc_id=f"{self.label}/{member}",
                    format=_format_for(member) or "",
                    payload=archive.read(member),
                    origin=f"{self.archive}!{member}",
                )

    def _tar_documents(self) -> Iterator[SourceDocument]:
        with tarfile.open(self.archive) as archive:
            members = {
                member.name: member
                for member in archive.getmembers()
                if member.isfile() and _format_for(member.name) is not None
            }
            for name in sorted(members):
                stream = archive.extractfile(members[name])
                if stream is None:  # pragma: no cover - isfile() filtered already
                    continue
                with stream:
                    payload = stream.read()
                yield SourceDocument(
                    doc_id=f"{self.label}/{name}",
                    format=_format_for(name) or "",
                    payload=payload,
                    origin=f"{self.archive}!{name}",
                )


class BundledCorpusSource:
    """The hand-written corpus bundled with :mod:`repro.workload.corpus`."""

    def __init__(self, label: str = "bundled") -> None:
        self.label = _source_label(label)

    def documents(self) -> Iterator[SourceDocument]:
        from repro.workload.corpus import bundled_corpus_documents

        documents = bundled_corpus_documents()
        for name in sorted(documents):
            format_name, text = documents[name]
            yield SourceDocument(
                doc_id=f"{self.label}/{name}.{format_name}",
                format=format_name,
                payload=text.encode("utf-8"),
                origin=f"repro.workload.corpus:{name}",
            )

"""Atomic stage checkpoints and the quarantine for the ingestion pipeline.

Every pipeline stage persists its progress as one JSON document under
``<run>/checkpoints/<stage>.json``, rewritten atomically (temp file +
``os.replace``) after each unit of work.  A killed run therefore leaves each
checkpoint either in its previous state or in the next one — never truncated —
and the pipeline resumes by replaying only the units a checkpoint does not yet
record.  Checkpoints carry no timestamps or host state: two runs over the same
sources produce byte-identical checkpoint files, which is what makes the
snapshot byte-identity gate in ``benchmarks/bench_ingest.py`` enforceable.

Malformed documents never abort a run.  They land in ``<run>/quarantine/`` as
``<encoded-doc-id>.reason.json`` records with a typed reason::

    {"document": ..., "origin": ..., "stage": ...,
     "reason": {"type": "SchemaParseError", "message": ...}}

``type`` is the exception class name — the parsers guarantee a closed set
(:class:`~repro.errors.SchemaParseError` for anything unparseable,
:class:`~repro.errors.SchemaError` for structurally invalid trees) so
downstream tooling can triage quarantines without string-matching messages.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import IngestError
from repro.utils.fileio import write_json_atomic

#: Pipeline stages in execution order.  The list is part of the manifest so a
#: resumed run can detect a stage-set mismatch between code versions.
STAGES = ("fetch", "parse", "validate", "dedupe", "merge")

_CHECKPOINT_FORMAT = "bellflower-ingest-checkpoint"
_CHECKPOINT_VERSION = 1

_UNSAFE_RE = re.compile(r"[^A-Za-z0-9._-]+")


def encode_doc_id(doc_id: str) -> str:
    """A filesystem-safe, collision-free file stem for a document id.

    Document ids contain slashes (``<source>/<relative-path>``); the stem
    keeps a sanitized, truncated tail for human browsability and prefixes a
    content digest of the full id so distinct ids can never collide after
    sanitization.
    """
    digest = hashlib.sha256(doc_id.encode("utf-8")).hexdigest()[:12]
    tail = _UNSAFE_RE.sub("-", doc_id)[-80:].strip("-")
    return f"{digest}-{tail}" if tail else digest


class CheckpointStore:
    """Owns the on-disk layout of one ingestion run directory."""

    def __init__(self, run_dir: str | Path) -> None:
        self.run_dir = Path(run_dir)
        self.fetched_dir = self.run_dir / "fetched"
        self.parsed_dir = self.run_dir / "parsed"
        self.quarantine_dir = self.run_dir / "quarantine"
        self.checkpoints_dir = self.run_dir / "checkpoints"
        self.generations_dir = self.run_dir / "generations"
        self.manifest_path = self.run_dir / "manifest.json"
        self.snapshot_path = self.run_dir / "out.frozen"

    def create_layout(self) -> None:
        for directory in (
            self.run_dir,
            self.fetched_dir,
            self.parsed_dir,
            self.quarantine_dir,
            self.checkpoints_dir,
            self.generations_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # -- manifest -----------------------------------------------------------

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        write_json_atomic(self.manifest_path, manifest)

    def load_manifest(self) -> Dict[str, Any]:
        if not self.manifest_path.is_file():
            raise IngestError(
                f"{self.run_dir} is not an ingestion run directory (no manifest.json)"
            )
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise IngestError(f"cannot load run manifest {self.manifest_path}: {exc}") from exc
        if not isinstance(manifest, dict) or "config" not in manifest:
            raise IngestError(f"run manifest {self.manifest_path} is not a manifest document")
        return manifest

    # -- stage checkpoints --------------------------------------------------

    def checkpoint_path(self, stage: str) -> Path:
        if stage not in STAGES:
            raise IngestError(f"unknown ingestion stage {stage!r}; stages are {', '.join(STAGES)}")
        return self.checkpoints_dir / f"{stage}.json"

    def save_checkpoint(self, stage: str, payload: Dict[str, Any], *, complete: bool) -> None:
        document = {
            "format": _CHECKPOINT_FORMAT,
            "version": _CHECKPOINT_VERSION,
            "stage": stage,
            "complete": complete,
        }
        document.update(payload)
        write_json_atomic(self.checkpoint_path(stage), document)

    def load_checkpoint(self, stage: str) -> Optional[Dict[str, Any]]:
        """The checkpoint for ``stage``, or None if the stage never started.

        A checkpoint that cannot be decoded is treated as absent rather than
        fatal: atomic writes make a truncated file impossible through the
        pipeline itself, so an undecodable file means outside interference and
        the safe response is to redo the stage from its (intact) predecessor.
        """
        path = self.checkpoint_path(stage)
        if not path.is_file():
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(document, dict) or document.get("stage") != stage:
            return None
        if document.get("format") != _CHECKPOINT_FORMAT or document.get("version") != _CHECKPOINT_VERSION:
            return None
        return document

    def stage_complete(self, stage: str) -> bool:
        checkpoint = self.load_checkpoint(stage)
        return bool(checkpoint and checkpoint.get("complete"))

    # -- quarantine ---------------------------------------------------------

    def quarantine(self, doc_id: str, origin: str, stage: str, error: BaseException) -> Dict[str, Any]:
        """Record a typed quarantine reason for ``doc_id`` and return it."""
        record = {
            "document": doc_id,
            "origin": origin,
            "stage": stage,
            "reason": {"type": type(error).__name__, "message": str(error)},
        }
        write_json_atomic(self.quarantine_dir / f"{encode_doc_id(doc_id)}.reason.json", record)
        return record

    def quarantined(self) -> List[Dict[str, Any]]:
        """All quarantine records, ordered by document id."""
        records = []
        for path in sorted(self.quarantine_dir.glob("*.reason.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):  # pragma: no cover - outside interference
                continue
            if isinstance(record, dict):
                records.append(record)
        records.sort(key=lambda record: str(record.get("document", "")))
        return records

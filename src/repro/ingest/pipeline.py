"""The staged, resumable corpus-ingestion pipeline.

Five stages turn raw schema documents into one frozen, query-ready snapshot::

    fetch -> parse -> validate -> dedupe -> merge

* **fetch** copies raw bytes from every source into the run directory, so the
  rest of the pipeline (and any resumed run) never touches the sources again;
* **parse** decodes and parses each document with the ``repro.schema``
  parsers, quarantining anything malformed with a typed reason;
* **validate** rebuilds each parsed tree, checks the structural invariants and
  computes its content digest from per-tree schema fingerprints;
* **dedupe** keeps the first document of each content digest (document order
  is the deterministic fetch order, so "first" is well-defined);
* **merge** streams the kept trees into a frozen ``repro.storage`` snapshot in
  bounded chunks — the first chunk through
  :func:`~repro.storage.builder.freeze_service`, every later chunk through
  :func:`~repro.storage.builder.compact_frozen` — so the whole corpus is never
  materialized in memory at once.

Each stage records progress through :class:`~repro.ingest.checkpoint
.CheckpointStore` after every unit of work.  Because every stage is a
deterministic function of the previous stage's checkpoint, a run killed at any
point and resumed produces a final snapshot byte-identical to an
uninterrupted run — the property ``benchmarks/bench_ingest.py`` gates on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import IngestError, SchemaError, SchemaParseError
from repro.ingest.checkpoint import STAGES, CheckpointStore, encode_doc_id
from repro.ingest.sources import SCHEMA_SUFFIXES, CorpusSource, SourceDocument
from repro.schema.dtd_parser import parse_dtd
from repro.schema.serialization import tree_from_dict, tree_to_dict
from repro.schema.tree import SchemaTree
from repro.schema.validation import validate_tree
from repro.schema.xsd_parser import parse_xsd
from repro.utils.fileio import write_bytes_atomic, write_json_atomic

_MANIFEST_FORMAT = "bellflower-ingest-run"
_MANIFEST_VERSION = 1


@dataclass(frozen=True)
class IngestConfig:
    """Knobs that shape the final snapshot.

    The config is stamped into the run manifest; a resume with a different
    config is refused because it could not reproduce the interrupted run's
    bytes.  Defaults mirror :class:`~repro.service.MatchingService`.
    """

    repository_name: str = "repository"
    element_threshold: float = 0.6
    delta: float = 0.75
    partition_max_fragment_size: int = 20
    max_depth: int = 12
    #: Trees per merge generation: bounds peak memory during the merge stage
    #: and sets the resume granularity (a killed merge redoes at most one
    #: generation).
    merge_chunk_trees: int = 16

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise IngestError("max_depth must be at least 1")
        if self.merge_chunk_trees < 1:
            raise IngestError("merge_chunk_trees must be at least 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "repository_name": self.repository_name,
            "element_threshold": self.element_threshold,
            "delta": self.delta,
            "partition_max_fragment_size": self.partition_max_fragment_size,
            "max_depth": self.max_depth,
            "merge_chunk_trees": self.merge_chunk_trees,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "IngestConfig":
        try:
            return cls(**{key: payload[key] for key in cls().to_dict()})
        except (KeyError, TypeError) as exc:
            raise IngestError(f"invalid ingest config document: {exc}") from exc


class IngestPipeline:
    """Drives one ingestion run rooted at ``run_dir``.

    ``sources`` are required to start a run and to resume one whose fetch
    stage is incomplete; a run that has finished fetching resumes without
    them (everything later reads from the run directory).
    """

    def __init__(
        self,
        run_dir: str | Path,
        sources: Sequence[CorpusSource] = (),
        config: Optional[IngestConfig] = None,
    ) -> None:
        self.store = CheckpointStore(run_dir)
        self.sources = list(sources)
        self.config = config
        labels = [source.label for source in self.sources]
        if len(set(labels)) != len(labels):
            raise IngestError(f"duplicate source labels: {', '.join(sorted(labels))}")

    # -- run lifecycle ------------------------------------------------------

    def run(self, *, resume: bool = False, stop_after: Optional[str] = None) -> Dict[str, Any]:
        """Execute the pipeline (optionally only through ``stop_after``).

        Returns :meth:`status`.  ``stop_after`` names the last stage to run —
        the hook the kill-and-resume tests and benchmark use to interrupt a
        run at a stage boundary deterministically.
        """
        if stop_after is not None and stop_after not in STAGES:
            raise IngestError(
                f"unknown stage {stop_after!r}; stages are {', '.join(STAGES)}"
            )
        if resume:
            manifest = self.store.load_manifest()
            recorded = IngestConfig.from_dict(manifest["config"])
            if self.config is not None and self.config != recorded:
                raise IngestError(
                    "resume config does not match the run manifest; a different "
                    "config cannot reproduce the interrupted run"
                )
            self.config = recorded
        else:
            if self.store.manifest_path.exists():
                raise IngestError(
                    f"{self.store.run_dir} already holds an ingestion run; "
                    "pass resume=True (CLI: `ingest resume`) to continue it"
                )
            if not self.sources:
                raise IngestError("an ingestion run needs at least one source")
            self.config = self.config or IngestConfig()
            self.store.create_layout()
            self.store.write_manifest(
                {
                    "format": _MANIFEST_FORMAT,
                    "version": _MANIFEST_VERSION,
                    "config": self.config.to_dict(),
                    "sources": [source.label for source in self.sources],
                    "stages": list(STAGES),
                }
            )
        self.store.create_layout()

        fetched = self._run_fetch()
        if stop_after != "fetch":
            parsed = self._run_parse(fetched)
            if stop_after != "parse":
                validated = self._run_validate(parsed)
                if stop_after != "validate":
                    deduped = self._run_dedupe(validated)
                    if stop_after != "dedupe":
                        self._run_merge(deduped)
        return self.status()

    def status(self) -> Dict[str, Any]:
        """A JSON-friendly picture of the run: stage progress and outputs."""
        manifest = self.store.load_manifest()
        stages: Dict[str, Any] = {}
        for stage in STAGES:
            checkpoint = self.store.load_checkpoint(stage)
            if checkpoint is None:
                stages[stage] = {"state": "pending"}
                continue
            entry: Dict[str, Any] = {
                "state": "complete" if checkpoint.get("complete") else "in-progress"
            }
            for key in ("documents", "parsed", "kept", "dropped", "generations"):
                if key in checkpoint:
                    entry[key] = len(checkpoint[key])
            if "quarantined" in checkpoint:
                entry["quarantined"] = len(checkpoint["quarantined"])
            if "snapshot_sha256" in checkpoint:
                entry["snapshot_sha256"] = checkpoint["snapshot_sha256"]
            stages[stage] = entry
        snapshot = None
        if self.store.snapshot_path.is_file():
            snapshot = {
                "path": str(self.store.snapshot_path),
                "sha256": hashlib.sha256(self.store.snapshot_path.read_bytes()).hexdigest(),
            }
        return {
            "run_dir": str(self.store.run_dir),
            "config": manifest["config"],
            "sources": manifest.get("sources", []),
            "stages": stages,
            "quarantined": [record["document"] for record in self.store.quarantined()],
            "snapshot": snapshot,
        }

    # -- stage: fetch -------------------------------------------------------

    def _iter_source_documents(self) -> List[SourceDocument]:
        documents: List[SourceDocument] = []
        seen: Dict[str, str] = {}
        for source in self.sources:
            for document in source.documents():
                if document.format not in set(SCHEMA_SUFFIXES.values()):
                    raise IngestError(
                        f"source {source.label!r} produced unknown format "
                        f"{document.format!r} for {document.doc_id}"
                    )
                if document.doc_id in seen:
                    raise IngestError(
                        f"duplicate document id {document.doc_id} "
                        f"(from {seen[document.doc_id]} and {document.origin})"
                    )
                seen[document.doc_id] = document.origin
                documents.append(document)
        return documents

    def _run_fetch(self) -> List[Dict[str, Any]]:
        checkpoint = self.store.load_checkpoint("fetch")
        if checkpoint and checkpoint.get("complete"):
            return checkpoint["documents"]
        done = {
            entry["doc_id"]: entry for entry in (checkpoint or {}).get("documents", [])
        }
        if not self.sources:
            raise IngestError(
                "fetch is incomplete and no sources were supplied; "
                "re-run resume with the original sources"
            )
        records: List[Dict[str, Any]] = []
        for document in self._iter_source_documents():
            file_name = encode_doc_id(document.doc_id)
            target = self.store.fetched_dir / file_name
            digest = hashlib.sha256(document.payload).hexdigest()
            previous = done.get(document.doc_id)
            if previous is None or not target.is_file():
                write_bytes_atomic(target, document.payload)
            elif previous.get("sha256") != digest:
                raise IngestError(
                    f"source document {document.doc_id} changed since the run "
                    "started; a resume cannot reproduce the interrupted run"
                )
            records.append(
                {
                    "doc_id": document.doc_id,
                    "format": document.format,
                    "origin": document.origin,
                    "file": file_name,
                    "sha256": digest,
                }
            )
            if previous is None:
                self.store.save_checkpoint("fetch", {"documents": records}, complete=False)
        self.store.save_checkpoint("fetch", {"documents": records}, complete=True)
        return records

    # -- stage: parse -------------------------------------------------------

    def _run_parse(self, fetched: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        checkpoint = self.store.load_checkpoint("parse")
        if checkpoint and checkpoint.get("complete"):
            return checkpoint["parsed"]
        done = {entry["doc_id"] for entry in (checkpoint or {}).get("parsed", [])}
        quarantined = list((checkpoint or {}).get("quarantined", []))
        quarantined_done = set(quarantined)
        assert self.config is not None
        records: List[Dict[str, Any]] = []
        for entry in fetched:
            doc_id = entry["doc_id"]
            parsed_file = f"{entry['file']}.json"
            parsed_path = self.store.parsed_dir / parsed_file
            if doc_id in quarantined_done:
                continue
            if doc_id in done and parsed_path.is_file():
                previous = next(
                    record
                    for record in (checkpoint or {}).get("parsed", [])
                    if record["doc_id"] == doc_id
                )
                records.append(previous)
                continue
            payload = (self.store.fetched_dir / entry["file"]).read_bytes()
            schema_name = doc_id
            for suffix in SCHEMA_SUFFIXES:
                if schema_name.lower().endswith(suffix):
                    schema_name = schema_name[: -len(suffix)]
                    break
            try:
                text = payload.decode("utf-8")
                if entry["format"] == "dtd":
                    trees = parse_dtd(text, schema_name=schema_name, max_depth=self.config.max_depth)
                else:
                    trees = parse_xsd(text, schema_name=schema_name, max_depth=self.config.max_depth)
            except (UnicodeDecodeError, SchemaParseError) as exc:
                self.store.quarantine(doc_id, entry["origin"], "parse", exc)
                quarantined.append(doc_id)
                quarantined_done.add(doc_id)
                self.store.save_checkpoint(
                    "parse", {"parsed": records, "quarantined": quarantined}, complete=False
                )
                continue
            write_json_atomic(
                parsed_path,
                {"doc_id": doc_id, "trees": [tree_to_dict(tree) for tree in trees]},
            )
            records.append({"doc_id": doc_id, "file": parsed_file, "trees": len(trees)})
            self.store.save_checkpoint(
                "parse", {"parsed": records, "quarantined": quarantined}, complete=False
            )
        self.store.save_checkpoint(
            "parse", {"parsed": records, "quarantined": quarantined}, complete=True
        )
        return records

    def _load_parsed_trees(self, parsed_file: str) -> List[SchemaTree]:
        path = self.store.parsed_dir / parsed_file
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise IngestError(f"cannot load parsed document {path}: {exc}") from exc
        return [tree_from_dict(payload) for payload in document["trees"]]

    # -- stage: validate ----------------------------------------------------

    def _run_validate(self, parsed: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        from repro.service.fingerprint import schema_fingerprint

        checkpoint = self.store.load_checkpoint("validate")
        if checkpoint and checkpoint.get("complete"):
            return checkpoint["documents"]
        previous_records = {
            entry["doc_id"]: entry for entry in (checkpoint or {}).get("documents", [])
        }
        quarantined = list((checkpoint or {}).get("quarantined", []))
        quarantined_done = set(quarantined)
        records: List[Dict[str, Any]] = []
        for entry in parsed:
            doc_id = entry["doc_id"]
            if doc_id in quarantined_done:
                continue
            if doc_id in previous_records:
                records.append(previous_records[doc_id])
                continue
            origin = entry.get("origin", entry["file"])
            try:
                trees = self._load_parsed_trees(entry["file"])
                for tree in trees:
                    validate_tree(tree)
            except SchemaError as exc:
                self.store.quarantine(doc_id, origin, "validate", exc)
                quarantined.append(doc_id)
                quarantined_done.add(doc_id)
                self.store.save_checkpoint(
                    "validate", {"documents": records, "quarantined": quarantined}, complete=False
                )
                continue
            fingerprints = [schema_fingerprint(tree) for tree in trees]
            digest = hashlib.sha256("\n".join(fingerprints).encode("utf-8")).hexdigest()
            records.append(
                {"doc_id": doc_id, "file": entry["file"], "digest": digest, "trees": len(trees)}
            )
            self.store.save_checkpoint(
                "validate", {"documents": records, "quarantined": quarantined}, complete=False
            )
        self.store.save_checkpoint(
            "validate", {"documents": records, "quarantined": quarantined}, complete=True
        )
        return records

    # -- stage: dedupe ------------------------------------------------------

    def _run_dedupe(self, validated: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        checkpoint = self.store.load_checkpoint("dedupe")
        if checkpoint and checkpoint.get("complete"):
            return checkpoint["kept"]
        # Dedupe is a pure, cheap function of the validate checkpoint, so it
        # has no per-document resume granularity — it writes one complete
        # checkpoint.  First occurrence (in deterministic fetch order) wins.
        first_by_digest: Dict[str, str] = {}
        kept: List[Dict[str, Any]] = []
        dropped: List[Dict[str, Any]] = []
        for entry in validated:
            digest = entry["digest"]
            if digest in first_by_digest:
                dropped.append(
                    {
                        "doc_id": entry["doc_id"],
                        "digest": digest,
                        "duplicate_of": first_by_digest[digest],
                    }
                )
                continue
            first_by_digest[digest] = entry["doc_id"]
            kept.append(entry)
        self.store.save_checkpoint("dedupe", {"kept": kept, "dropped": dropped}, complete=True)
        return kept

    # -- stage: merge -------------------------------------------------------

    def _merge_plan(self, kept: List[Dict[str, Any]]) -> List[List[Dict[str, Any]]]:
        """Deterministic chunking of kept documents into merge generations."""
        assert self.config is not None
        chunks: List[List[Dict[str, Any]]] = []
        current: List[Dict[str, Any]] = []
        current_trees = 0
        for entry in kept:
            current.append(entry)
            current_trees += int(entry.get("trees", 1))
            if current_trees >= self.config.merge_chunk_trees:
                chunks.append(current)
                current = []
                current_trees = 0
        if current:
            chunks.append(current)
        return chunks

    def _run_merge(self, kept: List[Dict[str, Any]]) -> Dict[str, Any]:
        from repro.schema.repository import SchemaRepository
        from repro.service import MatchingService
        from repro.storage.builder import compact_frozen, freeze_service

        assert self.config is not None
        checkpoint = self.store.load_checkpoint("merge")
        if checkpoint and checkpoint.get("complete"):
            return checkpoint
        if not kept:
            raise IngestError("no documents survived dedupe; nothing to merge")

        plan = self._merge_plan(kept)
        recorded: List[Dict[str, Any]] = (checkpoint or {}).get("generations", [])
        generations: List[Dict[str, Any]] = []
        for index, chunk in enumerate(plan):
            documents = [entry["doc_id"] for entry in chunk]
            file_name = f"gen-{index:04d}.frozen"
            path = self.store.generations_dir / file_name
            if (
                index < len(recorded)
                and recorded[index].get("documents") == documents
                and path.is_file()
            ):
                # This generation was fully written before the interruption
                # (the checkpoint records a generation only after its file is
                # complete on disk), so its bytes are already the right ones.
                generations.append(recorded[index])
                continue
            trees: List[SchemaTree] = []
            for entry in chunk:
                trees.extend(self._load_parsed_trees(entry["file"]))
            if index == 0:
                repository = SchemaRepository(name=self.config.repository_name)
                repository.add_trees(trees)
                service = MatchingService(
                    repository,
                    element_threshold=self.config.element_threshold,
                    delta=self.config.delta,
                    partition_max_fragment_size=self.config.partition_max_fragment_size,
                )
                freeze_service(service, path)
            else:
                previous = self.store.generations_dir / generations[index - 1]["file"]
                compact_frozen(previous, path, add_trees=trees)
            generations.append(
                {"file": file_name, "documents": documents, "trees": len(trees)}
            )
            self.store.save_checkpoint(
                "merge", {"generations": generations}, complete=False
            )

        final_bytes = (self.store.generations_dir / generations[-1]["file"]).read_bytes()
        write_bytes_atomic(self.store.snapshot_path, final_bytes)
        payload = {
            "generations": generations,
            "snapshot": self.store.snapshot_path.name,
            "snapshot_sha256": hashlib.sha256(final_bytes).hexdigest(),
        }
        self.store.save_checkpoint("merge", payload, complete=True)
        return payload

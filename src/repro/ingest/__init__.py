"""Real-corpus ingestion: staged, resumable, quarantining, frozen-output.

The pipeline (:class:`IngestPipeline`) turns raw schema documents from
pluggable sources into one frozen :mod:`repro.storage` snapshot through five
checkpointed stages (fetch, parse, validate, dedupe, merge).  A killed run
resumes mid-stage and still produces byte-identical output; malformed
documents are quarantined with typed reason records instead of aborting the
run.  See ``docs/ARCHITECTURE.md`` ("Ingestion pipeline") for the layout of a
run directory.
"""

from repro.ingest.checkpoint import STAGES, CheckpointStore, encode_doc_id
from repro.ingest.pipeline import IngestConfig, IngestPipeline
from repro.ingest.sources import (
    ArchiveSource,
    BundledCorpusSource,
    CorpusSource,
    DirectorySource,
    SourceDocument,
)

__all__ = [
    "STAGES",
    "ArchiveSource",
    "BundledCorpusSource",
    "CheckpointStore",
    "CorpusSource",
    "DirectorySource",
    "IngestConfig",
    "IngestPipeline",
    "SourceDocument",
    "encode_doc_id",
]

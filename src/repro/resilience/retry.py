"""Retry policies and circuit breakers for the shard fan-out.

Both primitives are deliberately boring and deterministic:

* :class:`RetryPolicy` computes capped exponential backoff with *seeded*
  jitter — the jitter fraction is a CRC32 hash of ``(seed, key, attempt)``,
  not a random draw, so two runs with the same policy produce the same
  schedule (Python's ``hash()`` is salted per process and unusable here).
* :class:`CircuitBreaker` is the classic three-state machine
  (closed → open → half-open) with an injectable clock so the cooldown can
  be driven by a fake clock in tests.

Neither knows anything about shards; :mod:`repro.resilience.fanout` wires
them to per-shard tasks.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Optional


def seeded_fraction(seed: int, *parts: object) -> float:
    """A deterministic pseudo-random fraction in ``[0, 1)`` from seed + parts.

    Shared by jitter and probabilistic fault injection so every stochastic
    choice in the resilience layer replays from its seed.
    """
    token = ":".join([str(seed), *[str(part) for part in parts]]).encode("utf-8")
    return (zlib.crc32(token) % 10_000) / 10_000.0


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``backoff_ms(attempt, key)`` is the delay *before* retry ``attempt``
    (0-based: the delay between the first failure and the second try is
    ``backoff_ms(0, ...)``).  Jitter multiplies the capped delay by a factor
    in ``[1 - jitter, 1]`` derived from ``(seed, key, attempt)``.
    """

    max_attempts: int = 3
    base_delay_ms: float = 10.0
    max_delay_ms: float = 200.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {self.max_attempts}")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_ms(self, attempt: int, key: str = "") -> float:
        """Delay in milliseconds before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, got {attempt}")
        delay = min(self.max_delay_ms, self.base_delay_ms * (self.multiplier ** attempt))
        if self.jitter:
            delay *= 1.0 - self.jitter * seeded_fraction(self.seed, key, attempt)
        return delay


@dataclass(frozen=True)
class BreakerPolicy:
    """Configuration for the per-shard circuit breakers."""

    failure_threshold: int = 3
    cooldown_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(f"failure_threshold must be positive, got {self.failure_threshold}")
        if self.cooldown_seconds < 0:
            raise ValueError(f"cooldown_seconds must be non-negative, got {self.cooldown_seconds}")

    def make(self, clock: Callable[[], float] = time.monotonic) -> "CircuitBreaker":
        return CircuitBreaker(
            failure_threshold=self.failure_threshold,
            cooldown_seconds=self.cooldown_seconds,
            clock=clock,
        )


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    States: **closed** (calls flow; consecutive failures counted), **open**
    (calls rejected until the cooldown elapses), **half-open** (exactly one
    probe call allowed; success closes the breaker, failure re-opens it).
    Thread-safe — the fan-out records outcomes from worker threads.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be positive, got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            # Report the transition an allow() would take, so observers see
            # "half-open" once the cooldown has elapsed.
            if self._state == self.OPEN and self._cooldown_elapsed():
                return self.HALF_OPEN
            return self._state

    def _cooldown_elapsed(self) -> bool:
        return self._opened_at is not None and self._clock() >= self._opened_at + self.cooldown_seconds

    def allow(self) -> bool:
        """Whether a call may proceed right now (claims the probe slot if half-open)."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if not self._cooldown_elapsed():
                    return False
                self._state = self.HALF_OPEN
                self._probe_in_flight = True
                return True
            # Half-open: a single probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN or self._consecutive_failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(state={self.state!r}, failures={self._consecutive_failures})"

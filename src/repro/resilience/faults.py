"""Deterministic fault injection.

A :class:`FaultPlan` is a seeded *schedule* of faults, keyed by an injection
key (the sharded service uses ``"shard-<id>"``, the chaos executor uses
``"task-<index>"``) crossed with a per-key call counter.  Because the plan is
data (JSON-serialisable) and every stochastic choice derives from the plan's
seed via :func:`~repro.resilience.retry.seeded_fraction`, a chaos trial is
fully described by ``(plan, seed)`` and replays bit-identically — no flaky
sleeps, no process-random state.

Three fault kinds:

* ``delay`` — sleep ``delay_ms`` before running the real call (a straggler);
* ``error`` — raise :class:`~repro.errors.InjectedFaultError` instead of
  calling (a crash);
* ``hang`` — sleep ``hang_ms`` (the plan-level stand-in for "forever") before
  running the real call (a stuck worker; only meaningful under a hedge or
  deadline that can route around it).

Which calls a spec fires on is controlled by ``calls`` (``"all"``, an explicit
index list, ``{"every": n, "offset": r}``, or ``{"first": n}``) optionally
intersected with a seeded ``probability``.

Faults are injected *at the call boundary* — before the wrapped function
runs.  A faulted call therefore never half-executes: in the sharded service a
failing shard has not yet touched the shared top-k pool, which is what keeps
"healthy shards are bit-identical to a healthy run" provable.
"""

from __future__ import annotations

import json
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import InjectedFaultError
from repro.resilience.retry import seeded_fraction
from repro.utils.executor import DelegatingExecutor, TaskExecutor

_FAULT_KINDS = ("delay", "error", "hang")
_CallSelector = Union[str, Tuple[int, ...], Dict[str, int]]


def _normalise_calls(calls: object) -> _CallSelector:
    if calls == "all":
        return "all"
    if isinstance(calls, dict):
        if set(calls) == {"first"}:
            spec = {"first": int(calls["first"])}
            if spec["first"] < 1:
                raise ValueError(f"calls.first must be positive, got {spec['first']}")
            return spec
        if set(calls) <= {"every", "offset"} and "every" in calls:
            spec = {"every": int(calls["every"]), "offset": int(calls.get("offset", 0))}
            if spec["every"] < 1:
                raise ValueError(f"calls.every must be positive, got {spec['every']}")
            if not 0 <= spec["offset"] < spec["every"]:
                raise ValueError("calls.offset must be in [0, every)")
            return spec
        raise ValueError(f"unsupported calls selector: {calls!r}")
    if isinstance(calls, (list, tuple)):
        return tuple(sorted(int(index) for index in calls))
    raise ValueError(f"unsupported calls selector: {calls!r}")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *which key*, *which calls*, *what happens*."""

    key: str  # injection key; "*" matches every key
    kind: str  # "delay" | "error" | "hang"
    delay_ms: float = 0.0
    message: str = "injected fault"
    calls: _CallSelector = "all"
    probability: Optional[float] = None  # seeded coin, intersected with `calls`

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {_FAULT_KINDS}, got {self.kind!r}")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be non-negative, got {self.delay_ms}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        object.__setattr__(self, "calls", _normalise_calls(self.calls))

    def matches(self, key: str, call_index: int, seed: int) -> bool:
        if self.key != "*" and self.key != key:
            return False
        calls = self.calls
        if calls == "all":
            selected = True
        elif isinstance(calls, dict):
            if "first" in calls:
                selected = call_index < calls["first"]
            else:
                selected = call_index % calls["every"] == calls["offset"]
        else:
            selected = call_index in calls
        if not selected:
            return False
        if self.probability is None:
            return True
        return seeded_fraction(seed, self.key, key, call_index) < self.probability

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"key": self.key, "kind": self.kind}
        if self.delay_ms:
            payload["delay_ms"] = self.delay_ms
        if self.message != "injected fault":
            payload["message"] = self.message
        if self.calls != "all":
            payload["calls"] = list(self.calls) if isinstance(self.calls, tuple) else dict(self.calls)
        if self.probability is not None:
            payload["probability"] = self.probability
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"fault spec must be an object, got {type(payload).__name__}")
        unknown = set(payload) - {"key", "kind", "delay_ms", "message", "calls", "probability"}
        if unknown:
            raise ValueError(f"unknown fault spec fields: {sorted(unknown)}")
        return cls(
            key=str(payload["key"]),
            kind=str(payload["kind"]),
            delay_ms=float(payload.get("delay_ms", 0.0)),
            message=str(payload.get("message", "injected fault")),
            calls=payload.get("calls", "all"),
            probability=payload.get("probability"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, JSON-serialisable schedule of faults.

    ``hang_ms`` bounds what a ``hang`` fault sleeps for — a finite stand-in
    for "forever" so an unattended soak test cannot wedge a worker thread
    permanently.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    hang_ms: float = 60_000.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.hang_ms < 0:
            raise ValueError(f"hang_ms must be non-negative, got {self.hang_ms}")

    def fault_for(self, key: str, call_index: int) -> Optional[FaultSpec]:
        """The first spec that fires for this (key, call) — first match wins."""
        for spec in self.specs:
            if spec.matches(key, call_index, self.seed):
                return spec
        return None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"specs": [spec.to_dict() for spec in self.specs]}
        if self.seed:
            payload["seed"] = self.seed
        if self.hang_ms != 60_000.0:
            payload["hang_ms"] = self.hang_ms
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError(f"fault plan must be an object, got {type(payload).__name__}")
        unknown = set(payload) - {"specs", "seed", "hang_ms"}
        if unknown:
            raise ValueError(f"unknown fault plan fields: {sorted(unknown)}")
        specs = payload.get("specs", [])
        if not isinstance(specs, list):
            raise ValueError("fault plan 'specs' must be a list")
        return cls(
            specs=tuple(FaultSpec.from_dict(spec) for spec in specs),
            seed=int(payload.get("seed", 0)),
            hang_ms=float(payload.get("hang_ms", 60_000.0)),
        )


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file (see :meth:`FaultPlan.to_dict`)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot load fault plan from {path}: {exc}") from exc
    return FaultPlan.from_dict(payload)


class FaultInjector:
    """Applies a :class:`FaultPlan` at call boundaries, counting calls per key.

    Thread-safe: the per-key call counters are the only mutable state and are
    guarded by a lock, so concurrent fan-out attempts observe a consistent
    call numbering (attempt *order* under concurrency is scheduler-dependent,
    but each key's calls are numbered 0, 1, 2, … exactly once each).
    """

    def __init__(self, plan: FaultPlan, *, sleep: Callable[[float], None] = time.sleep) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = defaultdict(int)
        self.injected: Dict[str, int] = defaultdict(int)  # per-kind tally, for assertions

    def next_call(self, key: str) -> int:
        with self._lock:
            index = self._counts[key]
            self._counts[key] = index + 1
            return index

    def call(self, key: str, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)``, first applying any scheduled fault for ``key``."""
        spec = self.plan.fault_for(key, self.next_call(key))
        if spec is not None:
            with self._lock:
                self.injected[spec.kind] += 1
            if spec.kind == "error":
                raise InjectedFaultError(f"{spec.message} (key={key})")
            if spec.kind == "delay":
                self._sleep(spec.delay_ms / 1000.0)
            else:  # hang
                self._sleep(self.plan.hang_ms / 1000.0)
        return fn(*args, **kwargs)


class ChaosExecutor(DelegatingExecutor):
    """A :class:`TaskExecutor` wrapper that routes every task through a
    :class:`FaultInjector`.

    Keys default to ``"task-<index>"`` (the item's position in the ``map``
    call); pass ``key_fn(item, index)`` to key faults by item content instead.
    In-process only: the injector's shared call counters do not survive
    pickling, so wrap serial or thread executors, not process pools.
    """

    name = "chaos"

    def __init__(
        self,
        inner: TaskExecutor,
        injector: FaultInjector,
        key_fn: Optional[Callable[[object, int], str]] = None,
    ) -> None:
        super().__init__(inner)
        self.injector = injector
        self.key_fn = key_fn or (lambda _item, index: f"task-{index}")

    def map(self, fn: Callable, items: Sequence) -> List:
        injector, key_fn = self.injector, self.key_fn

        def run(pair):
            index, item = pair
            return injector.call(key_fn(item, index), fn, item)

        # repro: allow[RPA003] ChaosExecutor is in-process by contract (the
        # injector's shared call counters do not survive pickling — see class
        # docstring); it only ever wraps serial or thread executors
        return self.inner.map(run, list(enumerate(items)))

"""Retry/hedge/failover runner for per-shard fan-out tasks.

:class:`ResilientFanout` is the execution engine behind the sharded service's
resilient mode.  For every task (one shard of one query) it runs the attempt
loop below on an orchestration thread, with the actual shard calls on a
separate attempt pool (two pools so a slow attempt can never starve the
orchestration of *other* shards):

1. check the shard's :class:`~repro.resilience.retry.CircuitBreaker` — an
   open breaker skips the shard immediately (``"breaker-open"``);
2. submit the primary attempt; if a ``hedge_delay_ms`` is configured and the
   primary has not finished by then, submit one duplicate attempt — first
   success wins and the straggler is cancelled/abandoned;
3. on failure, record it to the breaker, sleep the
   :class:`~repro.resilience.retry.RetryPolicy` backoff, and retry up to
   ``max_attempts`` times;
4. a request :class:`~repro.resilience.deadline.Deadline` bounds every wait —
   an expired deadline abandons the task (``"deadline"``).

The caller receives a :class:`TaskOutcome` per task, in task order, and
decides what a skipped shard means (the sharded service degrades the answer
to the surviving shards and marks it ``degraded``).

Correctness note: hedged/retried attempts are safe to duplicate because shard
queries are pure reads and the shared top-k pool deduplicates by mapping
signature — two attempts of the same shard offer the same scores, so the
merged ranking is unchanged whichever copy wins.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.resilience.deadline import Deadline
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import BreakerPolicy, CircuitBreaker, RetryPolicy
from repro.utils.counters import CounterSet, ThreadSafeCounterSet


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything the resilient fan-out needs to know, as data.

    ``hedge_delay_ms=None`` disables hedging; ``breaker=None`` disables the
    circuit breakers; ``fault_plan`` injects a deterministic fault schedule
    into every shard call (testing/soak only).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    hedge_delay_ms: Optional[float] = None
    breaker: Optional[BreakerPolicy] = field(default_factory=BreakerPolicy)
    fault_plan: Optional[FaultPlan] = None
    max_workers: int = 16

    def __post_init__(self) -> None:
        if self.hedge_delay_ms is not None and self.hedge_delay_ms < 0:
            raise ValueError(f"hedge_delay_ms must be non-negative, got {self.hedge_delay_ms}")
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {self.max_workers}")

    def describe(self) -> dict:
        return {
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "base_delay_ms": self.retry.base_delay_ms,
                "max_delay_ms": self.retry.max_delay_ms,
            },
            "hedge_delay_ms": self.hedge_delay_ms,
            "breaker": None
            if self.breaker is None
            else {
                "failure_threshold": self.breaker.failure_threshold,
                "cooldown_seconds": self.breaker.cooldown_seconds,
            },
            "fault_plan": bool(self.fault_plan),
        }


@dataclass
class TaskOutcome:
    """What happened to one fan-out task."""

    task_id: int
    ok: bool
    result: Any = None
    attempts: int = 0
    skipped_reason: Optional[str] = None  # "breaker-open" | "retries-exhausted" | "deadline"
    error: Optional[str] = None


class ResilientFanout:
    """Runs per-shard tasks with retries, hedging and circuit breaking.

    One instance per sharded service: the breakers and the fault injector's
    call counters live across queries.  Thread pools are lazy and sized so
    hedging cannot deadlock — the attempt pool holds twice the orchestration
    slots (primary + at most one hedge per in-flight task).
    """

    def __init__(
        self,
        policy: ResiliencePolicy,
        task_space: int,
        counters: Optional[CounterSet] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy
        self.counters = counters if counters is not None else ThreadSafeCounterSet()
        self._sleep = sleep
        self.breakers: List[Optional[CircuitBreaker]] = [
            policy.breaker.make(clock) if policy.breaker is not None else None
            for _ in range(task_space)
        ]
        self.injector: Optional[FaultInjector] = (
            FaultInjector(policy.fault_plan) if policy.fault_plan is not None else None
        )
        self._lock = threading.Lock()
        self._orchestra: Optional[ThreadPoolExecutor] = None
        self._attempts: Optional[ThreadPoolExecutor] = None

    # -- pools ----------------------------------------------------------------

    def _ensure_pools(self) -> Tuple[ThreadPoolExecutor, ThreadPoolExecutor]:
        with self._lock:
            if self._orchestra is None:
                workers = self.policy.max_workers
                self._orchestra = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-fanout"
                )
                self._attempts = ThreadPoolExecutor(
                    max_workers=2 * workers, thread_name_prefix="repro-attempt"
                )
            return self._orchestra, self._attempts

    def close(self) -> None:
        with self._lock:
            orchestra, attempts = self._orchestra, self._attempts
            self._orchestra = self._attempts = None
        for pool in (orchestra, attempts):
            if pool is not None:
                pool.shutdown(wait=False)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Tuple[int, Any]],
        deadline: Optional[Deadline] = None,
    ) -> List[TaskOutcome]:
        """Run ``fn(payload)`` for every ``(task_id, payload)``; outcomes in task order.

        ``task_id`` indexes the breaker table (the sharded service passes the
        shard id) and may repeat across tasks (several queries to one shard).
        """
        if not tasks:
            return []
        if len(tasks) == 1:
            task_id, payload = tasks[0]
            return [self._run_one(fn, task_id, payload, deadline)]
        orchestra, _ = self._ensure_pools()
        futures = [
            orchestra.submit(self._run_one, fn, task_id, payload, deadline)
            for task_id, payload in tasks
        ]
        return [future.result() for future in futures]

    def _call(self, fn: Callable[[Any], Any], task_id: int, payload: Any) -> Any:
        if self.injector is not None:
            return self.injector.call(f"shard-{task_id}", fn, payload)
        return fn(payload)

    def _run_one(
        self,
        fn: Callable[[Any], Any],
        task_id: int,
        payload: Any,
        deadline: Optional[Deadline],
    ) -> TaskOutcome:
        breaker = self.breakers[task_id] if task_id < len(self.breakers) else None
        retry = self.policy.retry
        attempts = 0
        last_error: Optional[str] = None
        while attempts < retry.max_attempts:
            if deadline is not None and deadline.expired():
                return TaskOutcome(
                    task_id, ok=False, attempts=attempts, skipped_reason="deadline", error=last_error
                )
            if breaker is not None and not breaker.allow():
                self.counters.increment("breaker_skips")
                return TaskOutcome(
                    task_id, ok=False, attempts=attempts, skipped_reason="breaker-open", error=last_error
                )
            if attempts:
                self.counters.increment("shard_retries")
                pause = retry.backoff_ms(attempts - 1, key=f"shard-{task_id}") / 1000.0
                if deadline is not None:
                    pause = min(pause, max(0.0, deadline.remaining()))
                if pause > 0:
                    self._sleep(pause)
            attempts += 1
            outcome = self._attempt_with_hedge(fn, task_id, payload, deadline)
            outcome.attempts = attempts
            if outcome.ok:
                if breaker is not None:
                    breaker.record_success()
                return outcome
            last_error = outcome.error or last_error
            if outcome.skipped_reason == "deadline":
                outcome.error = last_error
                return outcome
            if breaker is not None:
                breaker.record_failure()
                if breaker.state == CircuitBreaker.OPEN:
                    self.counters.increment("breaker_opens")
            self.counters.increment("shard_attempt_failures")
        return TaskOutcome(
            task_id,
            ok=False,
            attempts=attempts,
            skipped_reason="retries-exhausted",
            error=last_error,
        )

    def _attempt_with_hedge(
        self,
        fn: Callable[[Any], Any],
        task_id: int,
        payload: Any,
        deadline: Optional[Deadline],
    ) -> TaskOutcome:
        """One logical attempt: a primary call, optionally raced by one hedge."""
        _, attempts_pool = self._ensure_pools()
        primary: Future = attempts_pool.submit(self._call, fn, task_id, payload)
        pending = {primary}
        hedge: Optional[Future] = None
        hedge_delay = self.policy.hedge_delay_ms
        last_error: Optional[str] = None
        while pending:
            timeout: Optional[float] = None
            if hedge is None and hedge_delay is not None:
                timeout = hedge_delay / 1000.0
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    for straggler in pending:
                        straggler.cancel()
                    return TaskOutcome(task_id, ok=False, skipped_reason="deadline", error=last_error)
                timeout = remaining if timeout is None else min(timeout, remaining)
            done, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                pending.discard(future)
                error = future.exception()
                if error is None:
                    for straggler in pending:
                        straggler.cancel()
                    if hedge is not None and future is hedge:
                        self.counters.increment("hedges_won")
                    return TaskOutcome(task_id, ok=True, result=future.result())
                last_error = f"{type(error).__name__}: {error}"
            if not done and hedge is None and hedge_delay is not None:
                # The primary is a straggler: race a duplicate against it.
                hedge = attempts_pool.submit(self._call, fn, task_id, payload)
                pending.add(hedge)
                self.counters.increment("hedges_launched")
        return TaskOutcome(task_id, ok=False, error=last_error or "all attempts failed")

    def breaker_states(self) -> List[Optional[str]]:
        return [None if breaker is None else breaker.state for breaker in self.breakers]

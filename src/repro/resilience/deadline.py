"""Cooperative deadlines for anytime query results.

A :class:`Deadline` is an absolute point on a monotonic clock.  It is created
once per request (from the wire-level ``timeout_ms``) and handed down through
the service layer into the search engine, which polls :meth:`Deadline.expired`
at its expansion points.  Polling is cheap (one clock read and one compare)
and cooperative: nothing is interrupted, the engine simply stops expanding and
returns whatever incumbents it has — a *partial* result, clearly marked.

The clock is injectable so tests can drive expiry deterministically instead
of sleeping: pass any zero-argument callable returning seconds.  Pickling
(for process-pool executors) snapshots the *remaining* time and re-anchors it
against the worker's own monotonic clock — monotonic readings are not
comparable across processes, remaining durations are.
"""

from __future__ import annotations

import time
from typing import Callable


class Deadline:
    """An absolute expiry point on a monotonic clock."""

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, expires_at: float, clock: Callable[[], float] = time.monotonic) -> None:
        self._expires_at = float(expires_at)
        self._clock = clock

    @classmethod
    def after_ms(cls, timeout_ms: float, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``timeout_ms`` milliseconds from now."""
        if timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be positive, got {timeout_ms}")
        return cls(clock() + timeout_ms / 1000.0, clock)

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self._expires_at - self._clock()

    # -- pickling (process-pool executors) -----------------------------------
    # The injected clock may be a closure and monotonic readings are process
    # local, so a pickled deadline travels as its remaining duration and is
    # re-anchored on the receiving side's standard monotonic clock.  Transfer
    # latency eats into the budget slightly late (the remaining time is
    # measured at pickle time), which errs on the permissive side.

    def __reduce__(self):
        return (_rehydrate_deadline, (self.remaining(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


def _rehydrate_deadline(remaining: float) -> Deadline:
    return Deadline(time.monotonic() + remaining)

"""Resilience primitives for the query path.

The serving stack (ROADMAP item 3) needs three things a correctness-first
search library does not provide on its own:

* **Deadlines with anytime results** — :class:`Deadline` is carried through
  :class:`~repro.api.envelope.MatchOptions` into the search engine, which
  checks it cooperatively and returns its current incumbents as a *partial*
  result instead of running to completion.
* **Retry, hedging and failover** — :class:`RetryPolicy`,
  :class:`CircuitBreaker` and :class:`ResilientFanout` let the sharded
  service survive slow or dead shards: stragglers are hedged, failures are
  retried with capped exponential backoff, and a persistently failing shard
  is skipped (the answer *degrades* to the surviving shards instead of
  failing outright).
* **Deterministic fault injection** — :class:`FaultPlan`,
  :class:`FaultInjector` and :class:`ChaosExecutor` describe a seeded
  schedule of delays/errors/hangs keyed by injection key × call count, which
  is what makes the two layers above testable (and benchmarkable) without
  flaky sleeps.

Everything here is deterministic by construction: jitter and probabilistic
faults derive from seeded CRC32 hashes, never from process-random state, so
a failing chaos trial can be replayed from its seed alone.
"""

from repro.resilience.deadline import Deadline
from repro.resilience.faults import (
    ChaosExecutor,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    load_fault_plan,
)
from repro.resilience.fanout import ResiliencePolicy, ResilientFanout, TaskOutcome
from repro.resilience.retry import BreakerPolicy, CircuitBreaker, RetryPolicy

__all__ = [
    "BreakerPolicy",
    "ChaosExecutor",
    "CircuitBreaker",
    "Deadline",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ResiliencePolicy",
    "ResilientFanout",
    "RetryPolicy",
    "TaskOutcome",
    "load_fault_plan",
]

"""Command-line interface for the Bellflower matcher.

Nine subcommands cover the typical usage of the library without writing code:

``match``
    Match a personal schema (given as a nested JSON specification) against a
    directory of ``.xsd`` / ``.dtd`` files or a previously generated repository
    JSON file, and print the ranked mappings.

``generate``
    Generate a synthetic schema repository (the stand-in for the paper's
    web-harvested collection) and write it to a JSON file that ``match`` and the
    benchmarks can reuse.

``experiment``
    Run one of the registered paper experiments (``table1``, ``figure4``,
    ``figure5``, ``figure6``, ``ablations``) and print its table.

``snapshot``
    Build a :class:`~repro.service.MatchingService` over a repository, eagerly
    materialize all derived state (name/trigram index, distance oracles,
    repository partition) and persist everything as one snapshot file.

``query``
    Load a snapshot (or a shard set via ``--shards``) and answer a single
    personal-schema query (what ``match`` does, minus rebuilding the derived
    state) — or a whole batch of them from a JSON-lines file (``--batch``).

``serve``
    Load a snapshot (or a shard set) and answer a stream of queries: one JSON
    document per stdin line, one JSON result per stdout line, until EOF —
    or, with ``--port``, a concurrent asyncio JSONL TCP server for many
    simultaneous clients.  ``{"add": ...}`` and ``{"remove": ...}`` lines
    mutate the live repository incrementally; ``{"batch": [...]}`` answers
    many queries in one request; typed v1 envelopes (``{"v": 1, ...}``, see
    :mod:`repro.api`) are accepted on the same stream.

``shard``
    Manage shard sets: ``split`` partitions a repository into N per-shard
    snapshots tied together by a manifest, ``status`` inspects a manifest,
    ``rebalance`` re-splits an existing set with a new shard count or router.

``ingest``
    Run the staged corpus-ingestion pipeline (``run``), inspect a run
    directory (``status``) or continue an interrupted run (``resume``).  The
    output is a frozen snapshot that ``query``/``serve`` load directly.

``trace``
    Synthesize a Zipf-skewed query trace (``synth``) or replay a trace file
    against a snapshot or shard set (``replay``), reporting the canonical
    ranking digest that must be bit-identical across backends.

Examples
--------
::

    python -m repro.cli generate --nodes 5000 --out repo.json
    python -m repro.cli match --repository repo.json \\
        --personal '{"book": ["title", "author"]}' --variant medium --top 5
    python -m repro.cli match --schema-dir ./schemas --personal '{"contact": ["name", "email"]}'
    python -m repro.cli experiment table1 --scale quick
    python -m repro.cli snapshot --repository repo.json --out repo.snapshot.json
    python -m repro.cli query --snapshot repo.snapshot.json \\
        --personal '{"person": ["name", "email"]}' --top 5
    python -m repro.cli shard split --repository repo.json --shards 4 \\
        --router size-balanced --out-dir ./shards
    python -m repro.cli shard status --manifest ./shards/manifest.json
    python -m repro.cli query --shards ./shards/manifest.json --batch queries.jsonl --workers 4
    echo '{"personal": {"person": ["name", "email"]}}' | \\
        python -m repro.cli serve --shards ./shards/manifest.json --workers 4
    python -m repro.cli ingest run --run-dir ./run --bundled --source-dir ./schemas
    python -m repro.cli ingest resume --run-dir ./run --bundled --source-dir ./schemas
    python -m repro.cli trace synth --out trace.json --length 200 --seed 7
    python -m repro.cli trace replay --trace trace.json --snapshot run/out.frozen
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.schema.builder import TreeBuilder
from repro.schema.dtd_parser import parse_dtd_file
from repro.schema.repository import SchemaRepository
from repro.schema.serialization import load_repository, save_repository
from repro.schema.xsd_parser import parse_xsd_file
from repro.system.bellflower import Bellflower
from repro.system.variants import available_variant_names, clustering_variant
from repro.workload.generator import RepositoryGenerator, RepositoryProfile


def _load_schema_directory(directory: Path) -> SchemaRepository:
    """Parse every .xsd/.dtd file under ``directory`` into one repository."""
    repository = SchemaRepository(name=directory.name or "schemas")
    documents = sorted(
        [path for path in directory.rglob("*") if path.suffix.lower() in (".xsd", ".dtd")]
    )
    if not documents:
        raise ReproError(f"no .xsd or .dtd files found under {directory}")
    for path in documents:
        if path.suffix.lower() == ".xsd":
            trees = parse_xsd_file(path)
        else:
            trees = parse_dtd_file(path)
        repository.add_trees(trees)
    return repository


def _load_repository_argument(args: argparse.Namespace) -> SchemaRepository:
    if args.repository:
        return load_repository(Path(args.repository))
    if args.schema_dir:
        return _load_schema_directory(Path(args.schema_dir))
    raise ReproError("either --repository or --schema-dir is required")


def _personal_schema_from_json(text: str):
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"--personal is not valid JSON: {exc}") from exc
    return _personal_schema_from_spec(spec)


def _print_result(repository, personal, result, top: int, delta: float, variant_name: str) -> None:
    summary = result.summary()
    print(
        f"repository: {repository.tree_count} trees, {repository.node_count} nodes; "
        f"mapping elements: {result.candidates.total()}; variant: {variant_name}"
    )
    print(
        f"useful clusters: {summary['useful_clusters']}, search space: {summary['search_space']}, "
        f"partial mappings: {summary['partial_mappings']}, mappings >= {delta}: {summary['mappings']}"
    )
    for rank, mapping in enumerate(result.mappings[:top], start=1):
        tree = repository.tree(mapping.tree_id)
        print(f"#{rank} Δ={mapping.score:.3f} in {tree.name}")
        for node_id, element in sorted(mapping.assignment.items()):
            path = "/".join(tree.root_path_names(element.ref.node_id))
            print(f"    {personal.node(node_id).name} -> /{path}")


def _command_match(args: argparse.Namespace) -> int:
    repository = _load_repository_argument(args)
    personal = _personal_schema_from_json(args.personal)
    variant = clustering_variant(args.variant)
    system = Bellflower(
        repository,
        clusterer=variant.make_clusterer(),
        element_threshold=args.element_threshold,
        delta=args.delta,
        variant_name=variant.name,
    )
    result = system.match(personal)
    _print_result(repository, personal, result, args.top, args.delta, variant.name)
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    profile = RepositoryProfile(
        target_node_count=args.nodes,
        min_tree_size=args.min_tree_size,
        max_tree_size=args.max_tree_size,
        seed=args.seed,
        name=f"synthetic-{args.nodes}",
    )
    repository = RepositoryGenerator(profile).generate()
    save_repository(repository, Path(args.out))
    print(
        f"wrote {repository.node_count} nodes in {repository.tree_count} trees to {args.out} "
        f"(seed {args.seed})"
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.config import ExperimentConfig, build_workload
    from repro.experiments.harness import registry

    config = ExperimentConfig.paper_scale() if args.scale == "paper" else ExperimentConfig.quick()
    spec = registry.get(args.name)
    workload = build_workload(config)
    result = spec.runner(config, workload)
    render = getattr(result, "render", None)
    print(f"=== {args.name}: {spec.description}")
    if callable(render):
        print(render())
    return 0


def _make_service(repository, args: argparse.Namespace):
    from repro.service import MatchingService

    return MatchingService(
        repository,
        variant=getattr(args, "variant", "partition"),
        element_threshold=args.element_threshold,
        delta=args.delta,
        partition_max_fragment_size=args.max_fragment_size,
    )


def _make_executor(workers: int, kind: str = "thread"):
    from repro.utils.executor import ProcessPoolTaskExecutor, ThreadPoolTaskExecutor

    if workers <= 1:
        return None
    if kind == "process":
        return ProcessPoolTaskExecutor(workers)
    return ThreadPoolTaskExecutor(workers)


def _command_snapshot(args: argparse.Namespace) -> int:
    from repro.service import write_snapshot

    if not args.out:
        raise ReproError("snapshot requires --out (or use 'snapshot freeze/inspect')")
    repository = _load_repository_argument(args)
    service = _make_service(repository, args)
    payload = write_snapshot(service, Path(args.out))
    print(
        f"wrote snapshot of {repository.node_count} nodes in {repository.tree_count} trees "
        f"to {args.out} (variant {service.variant_name}, "
        f"{len(payload['oracles'])} oracles, {len(payload['name_indexes'])} name indexes)"
    )
    return 0


def _command_snapshot_freeze(args: argparse.Namespace) -> int:
    from repro.storage import freeze_snapshot_file

    header = freeze_snapshot_file(Path(args.snapshot), Path(args.out))
    meta = header["repository"]
    print(
        f"froze {meta['node_count']} nodes in {meta['tree_count']} trees to {args.out} "
        f"({len(header['segments'])} segments, {len(header['indexes'])} name indexes, "
        f"digest {meta['digest']})"
    )
    return 0


def _command_snapshot_inspect(args: argparse.Namespace) -> int:
    """Header-only inspection: no tree, oracle or index is ever materialized."""
    import json as json_module

    from repro.storage import is_frozen_file, open_frozen

    path = Path(args.snapshot)
    if is_frozen_file(path):
        snapshot = open_frozen(path, cached=False)
        header = snapshot.header
        meta = header["repository"]
        print(f"frozen snapshot {path}")
        print(f"  format:  {header['format']} v{header['version']}")
        print(
            f"  forest:  {meta['tree_count']} trees, {meta['node_count']} nodes "
            f"(largest {meta['largest_tree']}, smallest {meta['smallest_tree']}), "
            f"digest {meta['digest']}"
        )
        config = header.get("config", {})
        print(
            f"  config:  variant={config.get('variant')!r} "
            f"element_threshold={config.get('element_threshold')} delta={config.get('delta')}"
        )
        print(f"  indexes: {len(header.get('indexes', []))}")
        partition = header.get("partition")
        print(
            "  partition: none"
            if partition is None
            else f"  partition: max_fragment_size={partition['max_fragment_size']} "
            f"reclustering={partition['reclustering']!r}"
        )
        print(f"  segments ({len(header['segments'])}):")
        for entry in header["segments"]:
            print(
                f"    {entry['name']:<28} {entry['kind']:<6} "
                f"count={entry['count']:<10} bytes={entry['length']:<10} offset={entry['offset']}"
            )
        return 0
    try:
        payload = json_module.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot inspect {path}: {exc}") from exc
    trees = payload.get("repository", {}).get("trees", [])
    config = payload.get("config", {})
    print(f"JSON snapshot {path}")
    print(f"  format:  {payload.get('format')} v{payload.get('version')}")
    print(
        f"  forest:  {len(trees)} trees, "
        f"{sum(len(tree.get('nodes', [])) for tree in trees)} nodes"
    )
    print(
        f"  config:  variant={config.get('variant')!r} "
        f"element_threshold={config.get('element_threshold')} delta={config.get('delta')}"
    )
    print(f"  indexes: {len(payload.get('name_indexes', []))}")
    print(f"  oracles: {len(payload.get('oracles', {}))}")
    return 0


def _resilience_from_args(args: argparse.Namespace):
    """Build the sharded fan-out's :class:`~repro.resilience.ResiliencePolicy`.

    ``None`` (strict mode — any shard failure propagates) unless at least one
    of ``--retries``, ``--hedge-ms`` or ``--fault-plan`` was given.
    """
    from repro.resilience import FaultPlan, ResiliencePolicy, RetryPolicy, load_fault_plan

    retries = getattr(args, "retries", None)
    hedge_ms = getattr(args, "hedge_ms", None)
    plan_path = getattr(args, "fault_plan", None)
    if retries is None and hedge_ms is None and plan_path is None:
        return None
    plan: Optional[FaultPlan] = None
    if plan_path is not None:
        try:
            plan = load_fault_plan(Path(plan_path))
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
    try:
        retry = RetryPolicy() if retries is None else RetryPolicy(max_attempts=retries)
        return ResiliencePolicy(retry=retry, hedge_delay_ms=hedge_ms, fault_plan=plan)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc


def _load_service_argument(args: argparse.Namespace):
    """Load the service a ``query``/``serve`` invocation names.

    ``--snapshot`` loads a single :class:`~repro.service.MatchingService`;
    ``--shards`` loads a :class:`~repro.shard.ShardedMatchingService` from a
    shard-set manifest.  Exactly one must be given.  ``--cache-size``
    overrides the persisted query-cache capacity in both cases.

    Resilience flags (``--retries``, ``--hedge-ms``, ``--fault-plan``) turn
    on the shard layer's retry/hedge/failover fan-out.  Against a single
    snapshot only ``--fault-plan`` applies: the per-cluster executor is
    wrapped in a :class:`~repro.resilience.ChaosExecutor` so injected delays
    and errors exercise the unsharded pipeline deterministically.
    """
    from repro.service import load_snapshot
    from repro.shard import load_shard_set

    snapshot = getattr(args, "snapshot", None)
    shards = getattr(args, "shards", None)
    if bool(snapshot) == bool(shards):
        raise ReproError("pass exactly one of --snapshot or --shards")
    executor = _make_executor(args.workers, args.executor)
    cache_size = getattr(args, "cache_size", None)
    resilience = _resilience_from_args(args)
    if snapshot:
        if getattr(args, "retries", None) is not None or getattr(args, "hedge_ms", None) is not None:
            raise ReproError("--retries and --hedge-ms require --shards (shard-level failover)")
        if resilience is not None and resilience.fault_plan is not None:
            from repro.resilience import ChaosExecutor, FaultInjector
            from repro.utils.executor import SerialExecutor

            executor = ChaosExecutor(
                executor if executor is not None else SerialExecutor(),
                FaultInjector(resilience.fault_plan),
            )
        return load_snapshot(Path(snapshot), executor=executor, query_cache_size=cache_size)
    return load_shard_set(
        Path(shards), executor=executor, query_cache_size=cache_size, resilience=resilience
    )


def _close_service(service) -> None:
    """Release what a CLI-owned service holds on the way out.

    The sharded ``close()`` stops fan-out pools and unpublishes shared-memory
    segments; the task executor the CLI created in :func:`_make_executor` is
    shut down explicitly — a process pool left to interpreter teardown races
    concurrent.futures' atexit hook into spurious fd errors on stderr.
    """
    close = getattr(service, "close", None)
    if callable(close):
        close()
    task_executor = getattr(service, "_task_executor", None)
    executor = task_executor() if callable(task_executor) else getattr(service, "executor", None)
    if executor is not None:
        executor.close()


def _personal_schema_from_spec(spec, name: str = "personal"):
    from repro.api.dispatch import personal_schema_from_spec

    return personal_schema_from_spec(spec, name=name)


def _load_batch_file(path_text: str):
    """Read a batch of personal-schema specs: one JSON object per line."""
    if path_text == "-":
        lines = sys.stdin.read().splitlines()
    else:
        path = Path(path_text)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise ReproError(f"cannot read batch file {path}: {exc}") from exc
    schemas = []
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            spec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"batch line {line_number} is not valid JSON: {exc}") from exc
        schemas.append(_personal_schema_from_spec(spec, name=f"batch-{line_number}"))
    if not schemas:
        raise ReproError("batch file contains no queries")
    return schemas


def _deadline_kwargs(args: argparse.Namespace) -> dict:
    """The ``deadline=`` kwarg ``--timeout-ms`` asks for (``{}`` when unbounded)."""
    timeout_ms = getattr(args, "timeout_ms", None)
    if timeout_ms is None:
        return {}
    from repro.api.validation import validate_timeout_ms
    from repro.resilience import Deadline

    return {"deadline": Deadline.after_ms(validate_timeout_ms(timeout_ms))}


def _match_many(service, schemas, delta, top_k, deadline_kwargs=None):
    """Batch entry point that also serves foreign matchers (no ``match_many``)."""
    extra = deadline_kwargs or {}
    batcher = getattr(service, "match_many", None)
    if batcher is not None:
        return batcher(schemas, delta=delta, top_k=top_k, **extra)
    return [service.match(schema, delta=delta, top_k=top_k, **extra) for schema in schemas]


def _command_query(args: argparse.Namespace) -> int:
    # Usage errors fail before the (potentially expensive) service load.
    if bool(args.personal) == bool(args.batch):
        raise ReproError("pass exactly one of --personal or --batch")
    if args.top < 0:
        raise ReproError(f"top must be non-negative, got {args.top}")
    deadline_kwargs = _deadline_kwargs(args)
    service = _load_service_argument(args)
    try:
        return _run_query(service, args, deadline_kwargs)
    finally:
        _close_service(service)


def _run_query(service, args: argparse.Namespace, deadline_kwargs) -> int:
    if args.batch:
        schemas = _load_batch_file(args.batch)
        results = _match_many(service, schemas, args.delta, args.top_k, deadline_kwargs)
        for personal, result in zip(schemas, results):
            document = {
                "mappings": [
                    _mapping_to_dict(service.repository, personal, mapping)
                    for mapping in result.mappings[: args.top]
                ],
                "mapping_count": len(result.mappings),
            }
            if getattr(result, "partial", False):
                document["partial"] = True
            if getattr(result, "degraded", False):
                document["degraded"] = True
                document["skipped_shards"] = sorted(getattr(result, "skipped_shards", ()))
            print(json.dumps(document))
        if hasattr(service, "match_many"):
            # Both bundled services deduplicate batches by fingerprint now
            # (the sharded front-end since PR 4, the base service since the
            # API unification); foreign matchers without match_many get no
            # summary because their counters mean something else.
            counters = service.counters
            print(
                f"batch: {len(schemas)} queries, "
                f"{counters.get('duplicate_queries')} duplicates, "
                f"{counters.get('query_cache_hits')} cache hits",
                file=sys.stderr,
            )
        return 0
    personal = _personal_schema_from_json(args.personal)
    result = service.match(personal, delta=args.delta, top_k=args.top_k, **deadline_kwargs)
    _print_result(
        service.repository,
        personal,
        result,
        args.top,
        service.delta if args.delta is None else args.delta,
        getattr(service, "variant_name", None) or result.variant_name,
    )
    if getattr(result, "partial", False):
        print("note: deadline expired — ranking is partial (best mappings found in time)")
    if getattr(result, "degraded", False):
        skipped = ", ".join(str(s) for s in getattr(result, "skipped_shards", ()))
        print(f"note: degraded — shards [{skipped}] were unreachable and are not covered")
    return 0


def _mapping_to_dict(repository, personal, mapping) -> dict:
    from repro.api.dispatch import legacy_mapping_dict

    return legacy_mapping_dict(repository, personal, mapping)


def _serve_defaults(args: argparse.Namespace):
    from repro.api.dispatch import ServeDefaults

    return ServeDefaults(
        top=args.top, top_k=args.top_k, timeout_ms=getattr(args, "timeout_ms", None)
    )


def serve_loop(service, lines, out, args: argparse.Namespace) -> int:
    """The JSON-lines request loop: one response per request line, no matter what.

    A thin adapter over the shared :class:`repro.api.dispatch.RequestDispatcher`
    — the same dispatcher the asyncio TCP server uses, so the stdin and TCP
    transports speak literally the same protocol: the legacy dict dialect
    (``{"personal" | "batch" | "add" | "remove" | "stats"}``) *and* v1
    envelopes (any line carrying ``{"v": 1, "kind": ...}``).

    Robustness contract: *nothing* a client sends — invalid JSON, a JSON line
    that is not an object (``[1, 2]``, ``"hello"``), a structurally broken
    schema specification, or an unexpected exception anywhere inside request
    handling — may ever escape as a traceback and kill the server.  Every
    failure is reported as an ``{"error": ...}`` JSON envelope (with the
    exception class in ``"type"`` for unexpected errors) and the loop moves on
    to the next line.
    """
    from repro.api.dispatch import RequestDispatcher

    dispatcher = RequestDispatcher(service, _serve_defaults(args))
    for line in lines:
        line = line.strip()
        if not line:
            continue
        print(json.dumps(dispatcher.handle_line(line)), file=out, flush=True)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Serve queries over stdin (default) or a concurrent TCP port (``--port``).

    Request documents: ``{"personal": {...}, "delta"?, "top"?, "top_k"?}``
    runs a query (``top_k`` bounds the *search* to the k best mappings with
    cross-cluster pruning; ``top`` only trims the printed list);
    ``{"add": {...}, "name"?}`` registers a new tree incrementally;
    ``{"remove": <tree_id>}`` unregisters one; ``{"stats": true}`` reports the
    service counters.  Typed v1 envelopes (``{"v": 1, "kind": "match" |
    "batch" | "mutation" | "stats", ...}`` — see :mod:`repro.api.envelope`)
    are accepted on the same stream.  One JSON response per line; malformed
    or failing requests produce an ``{"error": ...}`` response instead of
    terminating the loop (see :func:`serve_loop`).

    Tree ids are positional: removing a tree shifts every later tree's id
    down by one (see :meth:`SchemaRepository.remove_tree`), so ids returned by
    earlier ``add`` responses are invalidated by any ``remove``.  Mutation
    responses therefore echo the stable tree *name* alongside the positional
    id, and v1 removals may target ``tree_name`` instead of ``tree_id``.

    With ``--shards`` the same protocol runs against a sharded service:
    ``batch`` requests dedup + fan out across shards, ``stats`` adds a
    ``per_shard`` breakdown, and mutations route through the shard layer
    (merged tree ids).

    With ``--port`` the process listens on a TCP socket instead of stdin:
    many clients connect concurrently (JSON lines per connection, one
    ``{"v": 1, "kind": "ready"}`` greeting each), request handling is
    offloaded to a thread pool with at most ``--max-in-flight`` requests
    executing at once, and SIGINT/SIGTERM shut the server down gracefully.
    """
    service = _load_service_argument(args)
    try:
        return _run_serve(service, args)
    finally:
        _close_service(service)


def _run_serve(service, args: argparse.Namespace) -> int:
    if args.port is not None:
        from repro.api.server import run_server

        def _announce(server):
            print(
                json.dumps(
                    {
                        "serving": {"host": server.host, "port": server.port},
                        "trees": service.repository.tree_count,
                        "nodes": service.repository.node_count,
                    }
                ),
                flush=True,
            )

        try:
            return run_server(
                service,
                host=args.host,
                port=args.port,
                defaults=_serve_defaults(args),
                max_in_flight=args.max_in_flight,
                drain_timeout=args.drain_timeout,
                on_ready=_announce,
            )
        except ValueError as exc:
            # Bad server parameters (e.g. --max-in-flight 0): the clean
            # `error: ...` + exit 2 contract, not a traceback.
            raise ReproError(str(exc)) from exc
        except OSError as exc:
            raise ReproError(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    print(
        json.dumps(
            {"ready": True, "trees": service.repository.tree_count, "nodes": service.repository.node_count}
        ),
        flush=True,
    )
    return serve_loop(service, sys.stdin, sys.stdout, args)


def _make_router_argument(router_name: str, max_fragment_size: int):
    from repro.shard import make_router

    params = {}
    if router_name == "cluster-affinity":
        # The affinity weights mirror the partition the shards serve, so the
        # router reuses the service's fragment-size cap.
        params["max_fragment_size"] = max_fragment_size
    return make_router(router_name, params)


def _command_shard_split(args: argparse.Namespace) -> int:
    from repro.shard import ShardedMatchingService, write_shard_set

    repository = _load_repository_argument(args)
    router = _make_router_argument(args.router, args.max_fragment_size)
    service = ShardedMatchingService.from_repository(
        repository,
        args.shards,
        router=router,
        element_threshold=args.element_threshold,
        delta=args.delta,
        query_cache_size=args.cache_size,
        partition_max_fragment_size=args.max_fragment_size,
    )
    manifest = write_shard_set(service, Path(args.out_dir))
    sizes = ", ".join(
        f"shard {index}: {entry['trees']} trees/{entry['nodes']} nodes"
        for index, entry in enumerate(manifest["shards"])
    )
    print(
        f"split {repository.tree_count} trees ({repository.node_count} nodes) into "
        f"{args.shards} shards with router {args.router} ({sizes}); "
        f"manifest at {Path(args.out_dir) / 'manifest.json'}"
    )
    return 0


def _command_shard_status(args: argparse.Namespace) -> int:
    from repro.shard import load_manifest

    manifest = load_manifest(Path(args.manifest))
    router = manifest.get("router", {})
    trees = len(manifest.get("assignment", []))
    nodes = sum(int(entry.get("nodes", 0)) for entry in manifest["shards"])
    print(
        f"shard set: {manifest['shard_count']} shards, {trees} trees, {nodes} nodes; "
        f"router {router.get('policy')!r} {router.get('params') or {}}; "
        f"global version {manifest.get('global_version')}"
    )
    for index, entry in enumerate(manifest["shards"]):
        print(
            f"  shard {index}: {entry.get('trees')} trees, {entry.get('nodes')} nodes "
            f"({entry['path']})"
        )
    return 0


def _command_shard_rebalance(args: argparse.Namespace) -> int:
    from repro.shard import rebalance_shard_set

    router = None
    if args.router is not None:
        router = _make_router_argument(args.router, args.max_fragment_size)
    manifest = rebalance_shard_set(
        Path(args.manifest),
        shard_count=args.shards,
        router=router,
        out_directory=args.out_dir,
    )
    target = Path(args.out_dir) if args.out_dir else Path(args.manifest).parent
    print(
        f"rebalanced to {manifest['shard_count']} shards "
        f"(router {manifest['router']['policy']}, global version {manifest['global_version']}); "
        f"manifest at {target / 'manifest.json'}"
    )
    return 0


def _ingest_sources(args: argparse.Namespace):
    from repro.ingest import ArchiveSource, BundledCorpusSource, DirectorySource

    sources = []
    if getattr(args, "bundled", False):
        sources.append(BundledCorpusSource())
    for directory in getattr(args, "source_dir", None) or ():
        sources.append(DirectorySource(Path(directory)))
    for archive in getattr(args, "archive", None) or ():
        sources.append(ArchiveSource(Path(archive)))
    return sources


def _ingest_pipeline(args: argparse.Namespace, *, with_config: bool):
    from repro.ingest import IngestConfig, IngestPipeline

    config = None
    if with_config:
        config = IngestConfig(
            repository_name=args.name,
            element_threshold=args.element_threshold,
            delta=args.delta,
            partition_max_fragment_size=args.max_fragment_size,
            max_depth=args.max_depth,
            merge_chunk_trees=args.chunk_trees,
        )
    return IngestPipeline(Path(args.run_dir), _ingest_sources(args), config)


def _print_ingest_status(status: dict) -> None:
    print(f"ingestion run {status['run_dir']} (sources: {', '.join(status['sources'])})")
    for stage, entry in status["stages"].items():
        counts = ", ".join(
            f"{key}={value}"
            for key, value in entry.items()
            if key not in ("state", "snapshot_sha256")
        )
        print(f"  {stage:<9} {entry['state']}" + (f"  ({counts})" if counts else ""))
    if status["quarantined"]:
        print(f"  quarantined documents ({len(status['quarantined'])}):")
        for doc_id in status["quarantined"]:
            print(f"    {doc_id}")
    snapshot = status.get("snapshot")
    if snapshot:
        print(f"  snapshot: {snapshot['path']} (sha256 {snapshot['sha256']})")
    else:
        print("  snapshot: not yet written")


def _command_ingest_run(args: argparse.Namespace) -> int:
    pipeline = _ingest_pipeline(args, with_config=True)
    _print_ingest_status(pipeline.run(stop_after=args.stop_after))
    return 0


def _command_ingest_resume(args: argparse.Namespace) -> int:
    # No config flags here: the run manifest is authoritative, and a resume
    # under a different config could not reproduce the interrupted run.
    pipeline = _ingest_pipeline(args, with_config=False)
    _print_ingest_status(pipeline.run(resume=True, stop_after=args.stop_after))
    return 0


def _command_ingest_status(args: argparse.Namespace) -> int:
    pipeline = _ingest_pipeline(args, with_config=False)
    _print_ingest_status(pipeline.status())
    return 0


def _parse_optional_floats(text: str, flag: str):
    values = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part == "default":
            values.append(None)
            continue
        try:
            values.append(float(part))
        except ValueError as exc:
            raise ReproError(f"{flag} entries must be numbers or 'default': {part!r}") from exc
    if not values:
        raise ReproError(f"{flag} must list at least one value")
    return values


def _parse_optional_ints(text: str, flag: str):
    values = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part in ("default", "all"):
            values.append(None)
            continue
        try:
            values.append(int(part))
        except ValueError as exc:
            raise ReproError(f"{flag} entries must be integers, 'default' or 'all': {part!r}") from exc
    if not values:
        raise ReproError(f"{flag} must list at least one value")
    return values


def _command_trace_synth(args: argparse.Namespace) -> int:
    from repro.workload.trace import save_trace, synthesize_zipf_trace

    trace = synthesize_zipf_trace(
        args.length,
        args.seed,
        name=args.name,
        skew=args.skew,
        deltas=_parse_optional_floats(args.deltas, "--deltas"),
        top_ks=_parse_optional_ints(args.top_ks, "--top-ks"),
    )
    save_trace(trace, Path(args.out))
    print(
        f"wrote trace {trace.name!r}: {len(trace.queries)} queries "
        f"({trace.unique_query_count()} unique) to {args.out} (seed {args.seed})"
    )
    return 0


def _command_trace_replay(args: argparse.Namespace) -> int:
    from repro.workload.trace import load_trace, replay_trace

    trace = load_trace(Path(args.trace))
    service = _load_service_argument(args)
    try:
        report = replay_trace(trace, service, use_match_many=not args.single)
    finally:
        _close_service(service)
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0
    print(
        f"replayed {report['queries']} queries ({report['unique_queries']} unique, "
        f"{report['option_groups']} option groups) from trace {report['trace']!r}"
    )
    if report["partial"] or report["degraded"]:
        print(f"  partial: {report['partial']}, degraded: {report['degraded']}")
    print(f"  ranking digest: {report['ranking_digest']}")
    return 0


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The resilience flags ``query`` and ``serve`` share."""
    parser.add_argument(
        "--timeout-ms", type=int, default=None, dest="timeout_ms",
        help="per-query search deadline in milliseconds; on expiry the best mappings "
        "found so far are returned, marked partial (default: unbounded)",
    )
    parser.add_argument(
        "--retries", type=int, default=None,
        help="with --shards: attempts per shard query before the shard is skipped "
        "and the answer degrades to the surviving shards (default: fail fast)",
    )
    parser.add_argument(
        "--hedge-ms", type=float, default=None, dest="hedge_ms",
        help="with --shards: launch one duplicate shard attempt if the primary has "
        "not answered after this many milliseconds; first result wins",
    )
    parser.add_argument(
        "--fault-plan", default=None, dest="fault_plan",
        help="JSON fault-plan file injecting deterministic delays/errors/hangs "
        "into shard calls (--shards) or per-cluster tasks (--snapshot); testing only",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bellflower: clustered XML schema matching (ICDE 2006 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    match_parser = subparsers.add_parser("match", help="match a personal schema against a repository")
    match_parser.add_argument("--personal", required=True, help="personal schema as nested JSON, e.g. '{\"book\": [\"title\", \"author\"]}'")
    match_parser.add_argument("--repository", help="repository JSON file written by 'generate'")
    match_parser.add_argument("--schema-dir", help="directory of .xsd/.dtd files to match against")
    match_parser.add_argument("--variant", default="medium", choices=available_variant_names(), help="clustering variant")
    match_parser.add_argument("--delta", type=float, default=0.7, help="objective-function threshold")
    match_parser.add_argument("--element-threshold", type=float, default=0.45, help="element-matcher threshold")
    match_parser.add_argument("--top", type=int, default=10, help="number of mappings to print")
    match_parser.set_defaults(handler=_command_match)

    generate_parser = subparsers.add_parser("generate", help="generate a synthetic schema repository")
    generate_parser.add_argument("--nodes", type=int, default=2500, help="target number of schema nodes")
    generate_parser.add_argument("--min-tree-size", type=int, default=20)
    generate_parser.add_argument("--max-tree-size", type=int, default=220)
    generate_parser.add_argument("--seed", type=int, default=20060403)
    generate_parser.add_argument("--out", required=True, help="output JSON file")
    generate_parser.set_defaults(handler=_command_generate)

    experiment_parser = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment_parser.add_argument("name", help="experiment id (table1, figure4, figure5, figure6, ablations)")
    experiment_parser.add_argument("--scale", choices=("quick", "paper"), default="quick")
    experiment_parser.set_defaults(handler=_command_experiment)

    service_variants = ["partition", *available_variant_names()]
    snapshot_parser = subparsers.add_parser(
        "snapshot", help="build a matching service and persist it (repository + derived state)"
    )
    snapshot_parser.add_argument("--repository", help="repository JSON file written by 'generate'")
    snapshot_parser.add_argument("--schema-dir", help="directory of .xsd/.dtd files to serve")
    snapshot_parser.add_argument("--variant", default="partition", choices=service_variants, help="clustering configuration ('partition' is the precomputable default)")
    snapshot_parser.add_argument("--element-threshold", type=float, default=0.45)
    snapshot_parser.add_argument("--delta", type=float, default=0.7)
    snapshot_parser.add_argument("--max-fragment-size", type=int, default=20, help="partition fragment size cap")
    snapshot_parser.add_argument("--out", help="output snapshot file")
    snapshot_parser.set_defaults(handler=_command_snapshot)

    snapshot_subparsers = snapshot_parser.add_subparsers(dest="snapshot_command", required=False)
    freeze_parser = snapshot_subparsers.add_parser(
        "freeze", help="convert a JSON snapshot into a frozen (mmap) snapshot"
    )
    freeze_parser.add_argument("--snapshot", required=True, help="JSON snapshot file to convert")
    freeze_parser.add_argument("--out", required=True, help="output frozen snapshot file")
    freeze_parser.set_defaults(handler=_command_snapshot_freeze)
    inspect_parser = snapshot_subparsers.add_parser(
        "inspect", help="print a snapshot's header and segment table (no full load)"
    )
    inspect_parser.add_argument("--snapshot", required=True, help="snapshot file (JSON or frozen)")
    inspect_parser.set_defaults(handler=_command_snapshot_inspect)

    query_parser = subparsers.add_parser("query", help="answer queries from a snapshot or shard set")
    query_parser.add_argument("--snapshot", help="snapshot file written by 'snapshot'")
    query_parser.add_argument("--shards", help="shard-set manifest written by 'shard split'")
    query_parser.add_argument("--personal", help="personal schema as nested JSON")
    query_parser.add_argument(
        "--batch",
        help="JSON-lines file of personal schemas ('-' for stdin); prints one JSON result per line",
    )
    query_parser.add_argument("--delta", type=float, default=None, help="override the snapshot's δ")
    query_parser.add_argument("--top", type=int, default=10, help="number of mappings to print")
    query_parser.add_argument(
        "--top-k", type=int, default=None, dest="top_k",
        help="bound the search to the k best mappings (enables cross-cluster pruning; default: all mappings >= δ)",
    )
    query_parser.add_argument("--workers", type=int, default=1, help="per-cluster generation workers")
    query_parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="worker backend when --workers > 1 (process sidesteps the GIL for CPU-bound searches)",
    )
    query_parser.add_argument(
        "--cache-size", type=int, default=None, dest="cache_size",
        help="query-cache capacity override (entries; 0 disables; default: the snapshot's setting)",
    )
    _add_resilience_arguments(query_parser)
    query_parser.set_defaults(handler=_command_query)

    serve_parser = subparsers.add_parser(
        "serve", help="serve JSON-line queries from stdin (or TCP with --port) against a snapshot or shard set"
    )
    serve_parser.add_argument("--snapshot", help="snapshot file written by 'snapshot'")
    serve_parser.add_argument("--shards", help="shard-set manifest written by 'shard split'")
    serve_parser.add_argument(
        "--port", type=int, default=None,
        help="serve a concurrent asyncio JSONL TCP server on this port instead of stdin (0 picks a free port)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address for --port")
    serve_parser.add_argument(
        "--max-in-flight", type=int, default=8, dest="max_in_flight",
        help="bound on concurrently executing requests across all TCP connections",
    )
    serve_parser.add_argument("--top", type=int, default=10, help="default mappings per response")
    serve_parser.add_argument(
        "--top-k", type=int, default=None, dest="top_k",
        help="default search bound per query (requests may override with \"top_k\")",
    )
    serve_parser.add_argument("--workers", type=int, default=1, help="per-cluster generation workers")
    serve_parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="worker backend when --workers > 1 (process sidesteps the GIL for CPU-bound searches)",
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=None, dest="cache_size",
        help="query-cache capacity override (entries; 0 disables; default: the snapshot's setting)",
    )
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=5.0, dest="drain_timeout",
        help="seconds in-flight requests get to finish after SIGINT/SIGTERM (--port mode)",
    )
    _add_resilience_arguments(serve_parser)
    serve_parser.set_defaults(handler=_command_serve)

    shard_parser = subparsers.add_parser("shard", help="manage shard sets (split, status, rebalance)")
    shard_subparsers = shard_parser.add_subparsers(dest="shard_command", required=True)
    router_names = ["round-robin", "size-balanced", "cluster-affinity"]

    split_parser = shard_subparsers.add_parser(
        "split", help="partition a repository into per-shard snapshots plus a manifest"
    )
    split_parser.add_argument("--repository", help="repository JSON file written by 'generate'")
    split_parser.add_argument("--schema-dir", help="directory of .xsd/.dtd files to serve")
    split_parser.add_argument("--shards", type=int, required=True, help="number of shards")
    split_parser.add_argument(
        "--router", default="size-balanced", choices=router_names, help="tree placement policy"
    )
    split_parser.add_argument("--element-threshold", type=float, default=0.45)
    split_parser.add_argument("--delta", type=float, default=0.7)
    split_parser.add_argument("--max-fragment-size", type=int, default=20, help="partition fragment size cap")
    split_parser.add_argument(
        "--cache-size", type=int, default=64, dest="cache_size",
        help="query-cache capacity recorded in the shard snapshots",
    )
    split_parser.add_argument("--out-dir", required=True, dest="out_dir", help="directory for the shard set")
    split_parser.set_defaults(handler=_command_shard_split)

    status_parser = shard_subparsers.add_parser("status", help="inspect a shard-set manifest")
    status_parser.add_argument("--manifest", required=True, help="manifest written by 'shard split'")
    status_parser.set_defaults(handler=_command_shard_status)

    rebalance_parser = shard_subparsers.add_parser(
        "rebalance", help="re-split an existing shard set (results are preserved exactly)"
    )
    rebalance_parser.add_argument("--manifest", required=True, help="manifest written by 'shard split'")
    rebalance_parser.add_argument("--shards", type=int, default=None, help="new shard count (default: keep)")
    rebalance_parser.add_argument(
        "--router", default=None, choices=router_names, help="new placement policy (default: keep)"
    )
    rebalance_parser.add_argument("--max-fragment-size", type=int, default=20, help="cluster-affinity weight granularity")
    rebalance_parser.add_argument(
        "--out-dir", default=None, dest="out_dir",
        help="write the new set here instead of rewriting in place",
    )
    rebalance_parser.set_defaults(handler=_command_shard_rebalance)

    ingest_parser = subparsers.add_parser(
        "ingest", help="staged corpus ingestion into a frozen snapshot (run, status, resume)"
    )
    ingest_subparsers = ingest_parser.add_subparsers(dest="ingest_command", required=True)

    def _add_ingest_source_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--run-dir", required=True, dest="run_dir", help="ingestion run directory")
        sub.add_argument(
            "--source-dir", action="append", dest="source_dir", default=[],
            help="directory tree of .dtd/.xsd files (repeatable)",
        )
        sub.add_argument(
            "--archive", action="append", default=[],
            help="zip or tar archive of .dtd/.xsd files (repeatable)",
        )
        sub.add_argument(
            "--bundled", action="store_true",
            help="include the bundled hand-written corpus (repro.workload.corpus)",
        )
        sub.add_argument(
            "--stop-after", default=None, dest="stop_after",
            choices=("fetch", "parse", "validate", "dedupe", "merge"),
            help="stop at this stage boundary (resume later); default: run to completion",
        )

    ingest_run_parser = ingest_subparsers.add_parser(
        "run", help="start a new ingestion run (fetch, parse, validate, dedupe, merge)"
    )
    _add_ingest_source_arguments(ingest_run_parser)
    ingest_run_parser.add_argument("--name", default="repository", help="repository name in the snapshot")
    ingest_run_parser.add_argument("--element-threshold", type=float, default=0.45)
    ingest_run_parser.add_argument("--delta", type=float, default=0.7)
    ingest_run_parser.add_argument("--max-fragment-size", type=int, default=20, help="partition fragment size cap")
    ingest_run_parser.add_argument("--max-depth", type=int, default=12, dest="max_depth", help="parser nesting cap")
    ingest_run_parser.add_argument(
        "--chunk-trees", type=int, default=16, dest="chunk_trees",
        help="trees per merge generation (memory bound and resume granularity)",
    )
    ingest_run_parser.set_defaults(handler=_command_ingest_run)

    ingest_status_parser = ingest_subparsers.add_parser("status", help="inspect an ingestion run directory")
    ingest_status_parser.add_argument("--run-dir", required=True, dest="run_dir", help="ingestion run directory")
    ingest_status_parser.set_defaults(handler=_command_ingest_status)

    ingest_resume_parser = ingest_subparsers.add_parser(
        "resume", help="continue an interrupted run (config comes from the run manifest)"
    )
    _add_ingest_source_arguments(ingest_resume_parser)
    ingest_resume_parser.set_defaults(handler=_command_ingest_resume)

    trace_parser = subparsers.add_parser(
        "trace", help="synthesize or replay query traces (synth, replay)"
    )
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command", required=True)

    trace_synth_parser = trace_subparsers.add_parser(
        "synth", help="synthesize a seeded Zipf-skewed query trace"
    )
    trace_synth_parser.add_argument("--out", required=True, help="output trace JSON file")
    trace_synth_parser.add_argument("--length", type=int, default=100, help="number of queries")
    trace_synth_parser.add_argument("--seed", type=int, default=20060403)
    trace_synth_parser.add_argument("--skew", type=float, default=1.1, help="zipf exponent (weight 1/rank^skew)")
    trace_synth_parser.add_argument(
        "--deltas", default="default",
        help="comma-separated δ values per query ('default' uses the backend's δ)",
    )
    trace_synth_parser.add_argument(
        "--top-ks", default="default,5", dest="top_ks",
        help="comma-separated top-k values per query ('default'/'all' means unbounded)",
    )
    trace_synth_parser.add_argument("--name", default=None, help="trace name (default: derived)")
    trace_synth_parser.set_defaults(handler=_command_trace_synth)

    trace_replay_parser = trace_subparsers.add_parser(
        "replay", help="replay a trace against a snapshot or shard set"
    )
    trace_replay_parser.add_argument("--trace", required=True, help="trace JSON file")
    trace_replay_parser.add_argument("--snapshot", help="snapshot file (JSON or frozen)")
    trace_replay_parser.add_argument("--shards", help="shard-set manifest written by 'shard split'")
    trace_replay_parser.add_argument(
        "--single", action="store_true",
        help="replay query-by-query through match() instead of the deduping match_many() batch path",
    )
    trace_replay_parser.add_argument("--json", action="store_true", help="print the full JSON report")
    trace_replay_parser.add_argument("--workers", type=int, default=1, help="per-cluster generation workers")
    trace_replay_parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="worker backend when --workers > 1",
    )
    trace_replay_parser.add_argument(
        "--cache-size", type=int, default=None, dest="cache_size",
        help="query-cache capacity override (entries; 0 disables)",
    )
    trace_replay_parser.set_defaults(handler=_command_trace_replay)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

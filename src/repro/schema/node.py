"""Schema nodes (the paper's *elements*) and their local properties.

A node carries the localized properties used by element matchers: its ``name``,
its ``kind`` (XML element vs. attribute), an optional simple ``datatype`` and a
free-form property bag (the paper's ``H`` function assigning (property, value)
pairs to particles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional


class NodeKind(str, Enum):
    """The syntactic kind of a schema particle."""

    ELEMENT = "element"
    ATTRIBUTE = "attribute"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class DataType(str, Enum):
    """Simplified XSD datatypes understood by the data-type matcher.

    The set is intentionally coarse: schema matching only needs a compatibility
    signal between types (e.g. ``int`` is close to ``decimal`` but far from
    ``date``), not full XSD facet semantics.
    """

    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    BOOLEAN = "boolean"
    DATE = "date"
    DATETIME = "dateTime"
    TIME = "time"
    ANY_URI = "anyURI"
    ID = "ID"
    IDREF = "IDREF"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_XSD_TYPE_ALIASES: Dict[str, DataType] = {
    "string": DataType.STRING,
    "normalizedstring": DataType.STRING,
    "token": DataType.STRING,
    "nmtoken": DataType.STRING,
    "cdata": DataType.STRING,
    "pcdata": DataType.STRING,
    "int": DataType.INTEGER,
    "integer": DataType.INTEGER,
    "long": DataType.INTEGER,
    "short": DataType.INTEGER,
    "byte": DataType.INTEGER,
    "nonnegativeinteger": DataType.INTEGER,
    "positiveinteger": DataType.INTEGER,
    "unsignedint": DataType.INTEGER,
    "unsignedlong": DataType.INTEGER,
    "decimal": DataType.DECIMAL,
    "float": DataType.DECIMAL,
    "double": DataType.DECIMAL,
    "boolean": DataType.BOOLEAN,
    "date": DataType.DATE,
    "datetime": DataType.DATETIME,
    "time": DataType.TIME,
    "gyear": DataType.DATE,
    "anyuri": DataType.ANY_URI,
    "id": DataType.ID,
    "idref": DataType.IDREF,
    "idrefs": DataType.IDREF,
}


def parse_datatype(raw: Optional[str]) -> DataType:
    """Map a raw XSD/DTD type name (possibly prefixed, e.g. ``xs:int``) to a DataType."""
    if not raw:
        return DataType.UNKNOWN
    name = raw.strip()
    if ":" in name:
        name = name.rsplit(":", 1)[1]
    name = name.replace("#", "").lower()
    return _XSD_TYPE_ALIASES.get(name, DataType.UNKNOWN)


@dataclass
class SchemaNode:
    """A single schema particle (XML element or attribute declaration).

    Attributes
    ----------
    name:
        The element/attribute name as written in the schema document.
    kind:
        Whether the particle is an element or an attribute.
    datatype:
        Coarse simple type of the particle's content; ``UNKNOWN`` for complex
        content.
    properties:
        Free-form (property, value) pairs — the paper's ``H`` function.  The
        parsers store things like ``minOccurs``/``maxOccurs`` and documentation
        strings here; matchers may exploit them.
    node_id:
        Identifier assigned by the owning :class:`~repro.schema.tree.SchemaTree`
        (preorder position).  ``-1`` until the node is attached to a tree.
    """

    name: str
    kind: NodeKind = NodeKind.ELEMENT
    datatype: DataType = DataType.UNKNOWN
    properties: Dict[str, Any] = field(default_factory=dict)
    node_id: int = -1

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("a schema node requires a non-empty name")
        self.name = str(self.name)
        if isinstance(self.kind, str) and not isinstance(self.kind, NodeKind):
            self.kind = NodeKind(self.kind)
        if isinstance(self.datatype, str) and not isinstance(self.datatype, DataType):
            self.datatype = DataType(self.datatype)

    @property
    def is_attribute(self) -> bool:
        return self.kind is NodeKind.ATTRIBUTE

    def property(self, name: str, default: Any = None) -> Any:
        """Return a property value from the ``H`` bag (``None``/default if absent)."""
        return self.properties.get(name, default)

    def copy(self) -> "SchemaNode":
        """A detached copy (node_id reset) suitable for insertion into another tree."""
        return SchemaNode(
            name=self.name,
            kind=self.kind,
            datatype=self.datatype,
            properties=dict(self.properties),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaNode(id={self.node_id}, name={self.name!r}, kind={self.kind.value})"

"""DTD ingestion.

Most of the schemas in the paper's web-harvested repository are DTDs.  This is
a small, dependency-free DTD parser covering the declarations that matter for
schema matching:

* ``<!ELEMENT name (content-model)>`` — children extracted from the content
  model (sequence/choice/occurrence markers are irrelevant for matching, only
  the set of child element names matters);
* ``<!ATTLIST name attr TYPE default ...>`` — attributes attached to their
  element;
* comments and parameter entities are tolerated (entities are expanded when
  declared inline, otherwise ignored).

Each element that is never used as a child of another element is considered a
possible document root and yields one schema tree, mirroring the paper's note
that "one schema can have multiple roots, each represented with one tree".
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SchemaParseError
from repro.schema.node import DataType, NodeKind, SchemaNode, parse_datatype
from repro.schema.tree import SchemaTree

_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.:-]+)\s+(.*?)>", re.DOTALL)
_ATTLIST_RE = re.compile(r"<!ATTLIST\s+([\w.:-]+)\s+(.*?)>", re.DOTALL)
_ENTITY_RE = re.compile(r"<!ENTITY\s+%\s+([\w.:-]+)\s+\"(.*?)\"\s*>", re.DOTALL)
_NAME_RE = re.compile(r"[\w.:-]+")
_ATTDEF_RE = re.compile(
    r"([\w.:-]+)\s+"                                   # attribute name
    r"(CDATA|ID|IDREF|IDREFS|NMTOKEN|NMTOKENS|ENTITY|ENTITIES|NOTATION|\([^)]*\))\s+"
    r"(#REQUIRED|#IMPLIED|#FIXED\s+\"[^\"]*\"|\"[^\"]*\"|'[^']*')",
    re.DOTALL,
)

_RESERVED_CONTENT_WORDS = {"EMPTY", "ANY", "#PCDATA"}


class DtdParser:
    """Convert a DTD document into a list of :class:`SchemaTree` objects."""

    def __init__(self, max_depth: int = 12) -> None:
        if max_depth < 1:
            raise SchemaParseError("max_depth must be at least 1")
        self.max_depth = max_depth

    def parse(self, text: str, schema_name: str = "dtd") -> List[SchemaTree]:
        text = _COMMENT_RE.sub("", text)
        text = self._expand_entities(text)

        elements: Dict[str, List[str]] = {}
        for match in _ELEMENT_RE.finditer(text):
            name, content = match.group(1), match.group(2)
            elements[name] = self._children_from_content(content)

        if not elements:
            raise SchemaParseError(f"DTD {schema_name!r} declares no elements")

        attributes: Dict[str, List[Tuple[str, DataType]]] = {}
        for match in _ATTLIST_RE.finditer(text):
            owner, body = match.group(1), match.group(2)
            declared = attributes.setdefault(owner, [])
            for attr in _ATTDEF_RE.finditer(body):
                attr_name, attr_type = attr.group(1), attr.group(2)
                datatype = DataType.STRING if attr_type.startswith("(") else parse_datatype(attr_type)
                declared.append((attr_name, datatype))

        roots = self._find_roots(elements)
        trees = []
        for root_name in roots:
            tree = SchemaTree(name=f"{schema_name}#{root_name}")
            self._build(tree, None, root_name, elements, attributes, depth=0, lineage=set())
            trees.append(tree)
        return trees

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _expand_entities(text: str) -> str:
        entities = {name: value for name, value in _ENTITY_RE.findall(text)}
        if not entities:
            return text
        # Expand up to a fixed number of rounds to resolve nested entities
        # without risking infinite loops on malicious input.
        for _ in range(5):
            changed = False
            for name, value in entities.items():
                token = f"%{name};"
                if token in text:
                    text = text.replace(token, value)
                    changed = True
            if not changed:
                break
        return text

    @staticmethod
    def _children_from_content(content: str) -> List[str]:
        """Element names referenced in a content model, in order of appearance."""
        children: List[str] = []
        seen: Set[str] = set()
        for token in _NAME_RE.findall(content):
            if token in _RESERVED_CONTENT_WORDS or token == "PCDATA":
                continue
            if token not in seen:
                seen.add(token)
                children.append(token)
        return children

    @staticmethod
    def _find_roots(elements: Dict[str, List[str]]) -> List[str]:
        """Declared elements that never occur as a child of another element."""
        referenced: Set[str] = set()
        for children in elements.values():
            referenced.update(children)
        roots = [name for name in elements if name not in referenced]
        # A fully cyclic DTD has no unreferenced element; fall back to the first
        # declaration so we still produce one tree.
        return roots or [next(iter(elements))]

    def _build(
        self,
        tree: SchemaTree,
        parent_id: Optional[int],
        name: str,
        elements: Dict[str, List[str]],
        attributes: Dict[str, List[Tuple[str, DataType]]],
        depth: int,
        lineage: Set[str],
    ) -> None:
        has_children = bool(elements.get(name))
        datatype = DataType.UNKNOWN if has_children else DataType.STRING
        node = SchemaNode(name=name, kind=NodeKind.ELEMENT, datatype=datatype)
        if parent_id is None:
            node_id = tree.add_root(node).node_id
        else:
            node_id = tree.add_child(parent_id, node).node_id

        for attr_name, attr_type in attributes.get(name, []):
            tree.add_child(node_id, SchemaNode(name=attr_name, kind=NodeKind.ATTRIBUTE, datatype=attr_type))

        if depth >= self.max_depth or name in lineage:
            return
        for child_name in elements.get(name, []):
            if child_name in elements:
                self._build(tree, node_id, child_name, elements, attributes, depth + 1, lineage | {name})
            else:
                # Child referenced but never declared: keep it as a leaf so the
                # name still participates in matching.
                tree.add_child(node_id, SchemaNode(name=child_name, kind=NodeKind.ELEMENT, datatype=DataType.STRING))


def parse_dtd(text: str, schema_name: str = "dtd", max_depth: int = 12) -> List[SchemaTree]:
    """Parse a DTD document (string) into schema trees, one per root element."""
    return DtdParser(max_depth=max_depth).parse(text, schema_name=schema_name)


def parse_dtd_file(path: str | Path, max_depth: int = 12) -> List[SchemaTree]:
    """Parse a DTD file into schema trees.

    Every failure mode — unreadable file, non-UTF-8 bytes, a document that
    declares no elements — surfaces as :class:`SchemaParseError` naming the
    file, never a leaked ``OSError``/``UnicodeDecodeError``: the ingestion
    pipeline's quarantine catches parse errors by type and records their
    reason, so the parser must own its whole error surface.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SchemaParseError(f"cannot read DTD file {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise SchemaParseError(f"DTD file {path} is not valid UTF-8: {exc}") from exc
    return parse_dtd(text, schema_name=path.stem, max_depth=max_depth)

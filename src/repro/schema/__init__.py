"""Schema data model: nodes, edges, graphs, trees, repositories and parsers.

This package implements Definition 1 of the paper (the *schema graph*
``PS = (N, E, I, H)``) together with the tree specialization that the rest of
the system operates on, the repository (a forest of schema trees), a fluent
builder, XSD and DTD ingestion, JSON serialization and structural statistics.
"""

from repro.schema.node import DataType, NodeKind, SchemaNode
from repro.schema.graph import SchemaEdge, SchemaGraph
from repro.schema.tree import SchemaTree
from repro.schema.repository import RepositoryNodeRef, SchemaRepository
from repro.schema.builder import TreeBuilder
from repro.schema.xsd_parser import parse_xsd, parse_xsd_file
from repro.schema.dtd_parser import parse_dtd, parse_dtd_file
from repro.schema.serialization import (
    repository_from_dict,
    repository_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.schema.stats import RepositoryStatistics, TreeStatistics
from repro.schema.validation import validate_repository, validate_tree

__all__ = [
    "DataType",
    "NodeKind",
    "RepositoryNodeRef",
    "RepositoryStatistics",
    "SchemaEdge",
    "SchemaGraph",
    "SchemaNode",
    "SchemaRepository",
    "SchemaTree",
    "TreeBuilder",
    "TreeStatistics",
    "parse_dtd",
    "parse_dtd_file",
    "parse_xsd",
    "parse_xsd_file",
    "repository_from_dict",
    "repository_to_dict",
    "tree_from_dict",
    "tree_to_dict",
    "validate_repository",
    "validate_tree",
]

"""JSON-friendly serialization of schema trees and repositories.

Large synthetic repositories can be generated once, persisted, and reloaded by
benchmarks so every clustering variant runs against byte-identical input.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from repro.errors import SchemaError
from repro.schema.node import DataType, NodeKind, SchemaNode
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree

_FORMAT_VERSION = 1


def tree_to_dict(tree: SchemaTree) -> Dict[str, Any]:
    """Serialize a tree into plain dictionaries (node order = node id order)."""
    nodes: List[Dict[str, Any]] = []
    for node_id in tree.node_ids():
        node = tree.node(node_id)
        nodes.append(
            {
                "name": node.name,
                "kind": node.kind.value,
                "datatype": node.datatype.value,
                "parent": tree.parent_id(node_id) if tree.parent_id(node_id) is not None else -1,
                "properties": dict(node.properties),
            }
        )
    return {"version": _FORMAT_VERSION, "name": tree.name, "nodes": nodes}


#: Enum members by serialized value — resolving through these dicts instead of
#: the Enum constructor halves node deserialization time on large forests.
_KIND_BY_VALUE = {kind.value: kind for kind in NodeKind}
_DATATYPE_BY_VALUE = {datatype.value: datatype for datatype in DataType}


def tree_from_dict(payload: Dict[str, Any]) -> SchemaTree:
    """Rebuild a tree serialized by :func:`tree_to_dict`.

    Loading is the hot path of both the CLI ``--repository`` option and the
    service snapshots, so nodes are validated up front and attached through
    the trusted bulk path instead of one ``add_child`` call at a time.
    """
    if payload.get("version") != _FORMAT_VERSION:
        raise SchemaError(f"unsupported schema tree format version: {payload.get('version')!r}")
    tree = SchemaTree(name=payload.get("name", "schema"))
    nodes: List[SchemaNode] = []
    parents: List[int] = []
    for index, node_payload in enumerate(payload.get("nodes", [])):
        name = node_payload["name"]
        if not name or not str(name).strip():
            raise SchemaError("serialized tree contains a node without a name")
        kind_value = node_payload.get("kind", "element")
        kind = _KIND_BY_VALUE.get(kind_value) or NodeKind(kind_value)
        datatype_value = node_payload.get("datatype", "unknown")
        datatype = _DATATYPE_BY_VALUE.get(datatype_value) or DataType(datatype_value)
        node = SchemaNode.__new__(SchemaNode)
        node.name = str(name)
        node.kind = kind
        node.datatype = datatype
        properties = node_payload.get("properties")
        node.properties = dict(properties) if properties else {}
        node.node_id = -1
        parent = node_payload.get("parent", -1)
        if parent == -1:
            if index != 0:
                raise SchemaError("serialized tree has a non-first root node")
        elif not 0 <= parent < index:
            raise SchemaError("serialized tree references a parent that does not precede the child")
        nodes.append(node)
        parents.append(parent)
    if not nodes:
        raise SchemaError("serialized tree contains no nodes")
    tree._bulk_attach(nodes, parents)
    return tree


def repository_to_dict(repository: SchemaRepository) -> Dict[str, Any]:
    """Serialize a repository (forest) into plain dictionaries."""
    return {
        "version": _FORMAT_VERSION,
        "name": repository.name,
        "trees": [tree_to_dict(tree) for tree in repository.trees()],
    }


def repository_from_dict(payload: Dict[str, Any]) -> SchemaRepository:
    """Rebuild a repository serialized by :func:`repository_to_dict`."""
    if payload.get("version") != _FORMAT_VERSION:
        raise SchemaError(f"unsupported repository format version: {payload.get('version')!r}")
    repository = SchemaRepository(name=payload.get("name", "repository"))
    for tree_payload in payload.get("trees", []):
        repository.add_tree(tree_from_dict(tree_payload))
    return repository


def save_repository(repository: SchemaRepository, path: str | Path) -> None:
    """Write a repository to a JSON file."""
    Path(path).write_text(json.dumps(repository_to_dict(repository)), encoding="utf-8")


def load_repository(path: str | Path) -> SchemaRepository:
    """Load a repository from a JSON file written by :func:`save_repository`."""
    return repository_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

"""XML Schema (XSD) ingestion.

The paper's repository was built by harvesting DTDs and XML Schemas from the
web and flattening each into one or more schema trees (one tree per global
element declaration, i.e. per possible document root).  This module performs
the same flattening with the standard library's ``xml.etree`` parser:

* global ``xs:element`` declarations become tree roots;
* ``xs:complexType`` content (sequences, choices, groups — order semantics are
  irrelevant for matching) contributes child elements;
* ``xs:attribute`` declarations become attribute nodes;
* named complex types are resolved by reference;
* element references (``ref=``) are expanded with cycle protection, and
  recursion is cut at a configurable depth because the paper only uses
  non-recursive schemas.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import SchemaParseError
from repro.schema.node import DataType, NodeKind, SchemaNode, parse_datatype
from repro.schema.tree import SchemaTree

_XS = "{http://www.w3.org/2001/XMLSchema}"


def _local(tag: str) -> str:
    """Strip the namespace prefix from an ElementTree tag."""
    return tag.split("}", 1)[1] if "}" in tag else tag


def _strip_prefix(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    return name.rsplit(":", 1)[-1]


class _XsdDocument:
    """Indexes the global declarations of one XSD document."""

    def __init__(self, root: ET.Element) -> None:
        if _local(root.tag) != "schema":
            raise SchemaParseError(f"expected an xs:schema document, found <{_local(root.tag)}>")
        self.root = root
        self.global_elements: Dict[str, ET.Element] = {}
        self.complex_types: Dict[str, ET.Element] = {}
        self.groups: Dict[str, ET.Element] = {}
        self.attribute_groups: Dict[str, ET.Element] = {}
        for child in root:
            tag = _local(child.tag)
            name = child.get("name")
            if not name:
                continue
            if tag == "element":
                self.global_elements[name] = child
            elif tag == "complexType":
                self.complex_types[name] = child
            elif tag == "group":
                self.groups[name] = child
            elif tag == "attributeGroup":
                self.attribute_groups[name] = child


class XsdParser:
    """Convert an XSD document into a list of :class:`SchemaTree` objects.

    Parameters
    ----------
    max_depth:
        Hard limit on element nesting, protecting against recursive type
        definitions (the paper restricts itself to non-recursive schemas).
    """

    def __init__(self, max_depth: int = 12) -> None:
        if max_depth < 1:
            raise SchemaParseError("max_depth must be at least 1")
        self.max_depth = max_depth

    def parse(self, text: str, schema_name: str = "xsd") -> List[SchemaTree]:
        # ``ValueError`` covers expat's non-ParseError rejections — most
        # notably a str payload carrying an ``encoding=`` declaration — so
        # callers (the ingestion quarantine in particular) can rely on every
        # malformed document raising the one typed SchemaParseError.
        try:
            root = ET.fromstring(text)
        except (ET.ParseError, ValueError) as exc:
            raise SchemaParseError(f"invalid XML in schema {schema_name!r}: {exc}") from exc
        document = _XsdDocument(root)
        if not document.global_elements:
            raise SchemaParseError(f"schema {schema_name!r} declares no global elements")
        trees = []
        for element_name, declaration in document.global_elements.items():
            tree = SchemaTree(name=f"{schema_name}#{element_name}")
            self._build_element(document, declaration, tree, parent_id=None, depth=0, expanding=set())
            trees.append(tree)
        return trees

    # -- recursive construction -------------------------------------------------

    def _build_element(
        self,
        document: _XsdDocument,
        declaration: ET.Element,
        tree: SchemaTree,
        parent_id: Optional[int],
        depth: int,
        expanding: set,
    ) -> None:
        ref = _strip_prefix(declaration.get("ref"))
        if ref is not None:
            target = document.global_elements.get(ref)
            if target is None or ref in expanding or depth >= self.max_depth:
                # Unknown or recursive reference: keep a leaf placeholder node so
                # the name still participates in matching.
                self._attach(tree, parent_id, ref or "element", DataType.UNKNOWN, {})
                return
            self._build_element(document, target, tree, parent_id, depth, expanding | {ref})
            return

        name = declaration.get("name")
        if not name:
            raise SchemaParseError("element declaration without a name or ref attribute")
        properties = {}
        for occurs in ("minOccurs", "maxOccurs"):
            if declaration.get(occurs) is not None:
                properties[occurs] = declaration.get(occurs)

        type_name = _strip_prefix(declaration.get("type"))
        inline_complex = declaration.find(f"{_XS}complexType")
        datatype = DataType.UNKNOWN
        complex_type: Optional[ET.Element] = None
        if inline_complex is not None:
            complex_type = inline_complex
        elif type_name is not None and type_name in document.complex_types:
            complex_type = document.complex_types[type_name]
        else:
            datatype = parse_datatype(type_name)
            inline_simple = declaration.find(f"{_XS}simpleType")
            if inline_simple is not None:
                restriction = inline_simple.find(f"{_XS}restriction")
                if restriction is not None:
                    datatype = parse_datatype(restriction.get("base"))

        node_id = self._attach(tree, parent_id, name, datatype, properties)
        if complex_type is not None and depth < self.max_depth:
            guard = type_name or f"~inline:{name}"
            if guard in expanding:
                return
            self._build_complex_type(document, complex_type, tree, node_id, depth + 1, expanding | {guard})

    def _build_complex_type(
        self,
        document: _XsdDocument,
        complex_type: ET.Element,
        tree: SchemaTree,
        parent_id: int,
        depth: int,
        expanding: set,
    ) -> None:
        for child in complex_type:
            tag = _local(child.tag)
            if tag in ("sequence", "choice", "all"):
                self._build_particle(document, child, tree, parent_id, depth, expanding)
            elif tag == "attribute":
                self._build_attribute(child, tree, parent_id)
            elif tag == "attributeGroup":
                group_name = _strip_prefix(child.get("ref"))
                group = document.attribute_groups.get(group_name or "")
                if group is not None:
                    for attribute in group.findall(f"{_XS}attribute"):
                        self._build_attribute(attribute, tree, parent_id)
            elif tag in ("complexContent", "simpleContent"):
                extension = child.find(f"{_XS}extension") or child.find(f"{_XS}restriction")
                if extension is not None:
                    base_name = _strip_prefix(extension.get("base"))
                    base = document.complex_types.get(base_name or "")
                    if base is not None and (base_name or "") not in expanding:
                        self._build_complex_type(
                            document, base, tree, parent_id, depth, expanding | {base_name or ""}
                        )
                    self._build_complex_type(document, extension, tree, parent_id, depth, expanding)

    def _build_particle(
        self,
        document: _XsdDocument,
        particle: ET.Element,
        tree: SchemaTree,
        parent_id: int,
        depth: int,
        expanding: set,
    ) -> None:
        for child in particle:
            tag = _local(child.tag)
            if tag == "element":
                self._build_element(document, child, tree, parent_id, depth, expanding)
            elif tag in ("sequence", "choice", "all"):
                self._build_particle(document, child, tree, parent_id, depth, expanding)
            elif tag == "group":
                group_name = _strip_prefix(child.get("ref"))
                group = document.groups.get(group_name or "")
                if group is not None and (group_name or "") not in expanding:
                    self._build_particle(
                        document, group, tree, parent_id, depth, expanding | {group_name or ""}
                    )
            elif tag == "any":
                self._attach(tree, parent_id, "any", DataType.UNKNOWN, {})

    def _build_attribute(self, declaration: ET.Element, tree: SchemaTree, parent_id: int) -> None:
        name = declaration.get("name") or _strip_prefix(declaration.get("ref"))
        if not name:
            return
        properties = {}
        if declaration.get("use"):
            properties["use"] = declaration.get("use")
        datatype = parse_datatype(declaration.get("type"))
        node = SchemaNode(name=name, kind=NodeKind.ATTRIBUTE, datatype=datatype, properties=properties)
        tree.add_child(parent_id, node)

    @staticmethod
    def _attach(tree: SchemaTree, parent_id: Optional[int], name: str, datatype: DataType, properties: Dict[str, str]) -> int:
        node = SchemaNode(name=name, kind=NodeKind.ELEMENT, datatype=datatype, properties=properties)
        if parent_id is None:
            return tree.add_root(node).node_id
        return tree.add_child(parent_id, node).node_id


def parse_xsd(text: str, schema_name: str = "xsd", max_depth: int = 12) -> List[SchemaTree]:
    """Parse an XSD document (string) into schema trees, one per global element."""
    return XsdParser(max_depth=max_depth).parse(text, schema_name=schema_name)


def parse_xsd_file(path: str | Path, max_depth: int = 12) -> List[SchemaTree]:
    """Parse an XSD file into schema trees.

    Mirrors :func:`repro.schema.dtd_parser.parse_dtd_file`: unreadable files
    and non-UTF-8 bytes raise :class:`SchemaParseError` naming the file, so
    callers catch one typed error for the entire parse surface.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SchemaParseError(f"cannot read XSD file {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise SchemaParseError(f"XSD file {path} is not valid UTF-8: {exc}") from exc
    return parse_xsd(text, schema_name=path.stem, max_depth=max_depth)

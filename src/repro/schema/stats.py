"""Structural statistics over schema trees and repositories.

The experiment reports describe their workloads in the same vocabulary the
paper uses (number of trees, number of elements, average/maximum tree size,
depth distribution), and the workload generator uses these statistics in its
own tests to demonstrate that synthetic repositories have realistic shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.schema.node import NodeKind
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree


@dataclass(frozen=True)
class TreeStatistics:
    """Shape summary of one schema tree."""

    name: str
    node_count: int
    element_count: int
    attribute_count: int
    leaf_count: int
    height: int
    max_fanout: int
    average_fanout: float
    average_depth: float

    @classmethod
    def of(cls, tree: SchemaTree) -> "TreeStatistics":
        elements = sum(1 for node in tree.nodes() if node.kind is NodeKind.ELEMENT)
        attributes = tree.node_count - elements
        fanouts = [len(tree.children_ids(node_id)) for node_id in tree.node_ids()]
        internal_fanouts = [f for f in fanouts if f > 0]
        depths = [tree.depth(node_id) for node_id in tree.node_ids()]
        return cls(
            name=tree.name,
            node_count=tree.node_count,
            element_count=elements,
            attribute_count=attributes,
            leaf_count=len(tree.leaves()),
            height=tree.height(),
            max_fanout=max(fanouts) if fanouts else 0,
            average_fanout=(sum(internal_fanouts) / len(internal_fanouts)) if internal_fanouts else 0.0,
            average_depth=(sum(depths) / len(depths)) if depths else 0.0,
        )


@dataclass(frozen=True)
class RepositoryStatistics:
    """Shape summary of a repository (forest)."""

    name: str
    tree_count: int
    node_count: int
    element_count: int
    attribute_count: int
    min_tree_size: int
    max_tree_size: int
    average_tree_size: float
    max_height: int
    distinct_names: int

    @classmethod
    def of(cls, repository: SchemaRepository) -> "RepositoryStatistics":
        tree_sizes: List[int] = []
        elements = 0
        attributes = 0
        max_height = 0
        names = set()
        for tree in repository.trees():
            tree_sizes.append(tree.node_count)
            max_height = max(max_height, tree.height())
            for node in tree.nodes():
                names.add(node.name.lower())
                if node.kind is NodeKind.ELEMENT:
                    elements += 1
                else:
                    attributes += 1
        return cls(
            name=repository.name,
            tree_count=repository.tree_count,
            node_count=repository.node_count,
            element_count=elements,
            attribute_count=attributes,
            min_tree_size=min(tree_sizes) if tree_sizes else 0,
            max_tree_size=max(tree_sizes) if tree_sizes else 0,
            average_tree_size=(sum(tree_sizes) / len(tree_sizes)) if tree_sizes else 0.0,
            max_height=max_height,
            distinct_names=len(names),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "trees": self.tree_count,
            "nodes": self.node_count,
            "elements": self.element_count,
            "attributes": self.attribute_count,
            "min_tree_size": self.min_tree_size,
            "max_tree_size": self.max_tree_size,
            "average_tree_size": round(self.average_tree_size, 2),
            "max_height": self.max_height,
            "distinct_names": self.distinct_names,
        }

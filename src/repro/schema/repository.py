"""The schema repository: a forest of schema trees with global node ids.

The paper's repository ``R`` is "a collection of a large number of trees, i.e.,
a forest" harvested from the web.  ``SchemaRepository`` registers trees,
assigns each a ``tree_id``, and exposes a *global node id* space so that
mapping elements, clusters and mappings can refer to any repository node with a
single integer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

from repro.errors import SchemaError, UnknownNodeError, UnknownTreeError
from repro.schema.node import SchemaNode
from repro.schema.tree import SchemaTree


class RepositoryNodeRef(NamedTuple):
    """A reference to one repository node.

    ``global_id`` is unique across the whole repository; ``tree_id`` and
    ``node_id`` locate the node inside its tree.  Mapping elements are
    represented as node refs throughout the matching pipeline.

    A ``NamedTuple`` rather than a frozen dataclass: refs are created by the
    hundred thousand (every index build, clustering pass and snapshot load),
    and tuple construction is several times cheaper than ``object.__setattr__``
    per frozen-dataclass field while keeping the same ordering, hashing and
    immutability semantics.
    """

    global_id: int
    tree_id: int
    node_id: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeRef(g={self.global_id}, tree={self.tree_id}, node={self.node_id})"


def shift_tree_keys(mapping: Dict[int, "T"], removed_tree_id: int) -> Dict[int, "T"]:
    """Re-key a per-tree table after :meth:`SchemaRepository.remove_tree`.

    Drops the removed tree's entry and slides entries of later trees down by
    one, mirroring the repository's id reassignment.  Every derived structure
    keyed by tree id (distance-oracle rows, partition fragments, …) must apply
    exactly this transform on removal — sharing it keeps the
    incremental-equals-rebuild invariant in one place.
    """
    shifted: Dict[int, "T"] = {}
    for tree_id, value in mapping.items():
        if tree_id == removed_tree_id:
            continue
        shifted[tree_id - 1 if tree_id > removed_tree_id else tree_id] = value
    return shifted


class SchemaRepository:
    """A forest of :class:`SchemaTree` objects with a global node id space.

    Global ids are assigned contiguously per tree in registration order, so the
    repository can translate between global and (tree, node) coordinates with
    O(log #trees) arithmetic (bisection over tree offsets).
    """

    def __init__(self, name: str = "repository") -> None:
        self.name = name
        self._trees: List[SchemaTree] = []
        self._offsets: List[int] = []
        self._total_nodes = 0
        self._version = 0
        # Per-case-mode name indexes, built lazily by the batch element
        # matchers (see repro.matchers.index.RepositoryNameIndex) and
        # invalidated whenever the forest mutates (add or remove).
        self._name_index_cache: Dict[bool, object] = {}

    # -- construction -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped by every ``add_tree``/``remove_tree``.

        Derived state (name indexes, oracles, partitions) records the version
        it was built against; a mismatch means the state is stale.  Unlike a
        node count, the version also detects equal-size mutations (remove one
        tree, add another of the same size).
        """
        return self._version

    def _invalidate_derived_state(self) -> None:
        self._version += 1
        self._name_index_cache.clear()

    # -- pickling (process executors) -----------------------------------------
    # Per-cluster task payloads shipped to worker processes reach the
    # repository through the distance oracle.  The lazily built name indexes
    # are only used by the element-matching stage, which always runs in the
    # parent process, so a pickled repository travels without them (they would
    # dominate the payload size otherwise).

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_name_index_cache"] = {}
        # A shared-memory view wraps an OS segment handle; workers reach the
        # published tables through the oracle/service pickle redirects, never
        # through a copied view object.
        state.pop("_shared_view", None)
        return state

    def add_tree(self, tree: SchemaTree) -> int:
        """Register a tree and return its assigned ``tree_id``."""
        if tree.node_count == 0:
            raise SchemaError(f"cannot register empty tree {tree.name!r}")
        if tree.tree_id != -1:
            raise SchemaError(
                f"tree {tree.name!r} is already registered (tree_id={tree.tree_id})"
            )
        tree.tree_id = len(self._trees)
        self._trees.append(tree)
        self._offsets.append(self._total_nodes)
        self._total_nodes += tree.node_count
        self._invalidate_derived_state()
        return tree.tree_id

    def add_trees(self, trees: Iterable[SchemaTree]) -> List[int]:
        return [self.add_tree(tree) for tree in trees]

    def remove_tree(self, tree_id: int) -> SchemaTree:
        """Unregister a tree and return it.

        Trees registered after the removed one slide down: their ``tree_id``
        decreases by one and their nodes' global ids decrease by the removed
        tree's node count.  The resulting repository is indistinguishable from
        one freshly built by adding the surviving trees in order, which is what
        makes incremental updates provably equivalent to a full rebuild (see
        :mod:`repro.service`).  The returned tree has ``tree_id`` reset to
        ``-1`` and may be registered again (here or in another repository).
        """
        removed = self.tree(tree_id)
        del self._trees[tree_id]
        removed.tree_id = -1
        for shifted in self._trees[tree_id:]:
            shifted.tree_id -= 1
        self._offsets = []
        total = 0
        for tree in self._trees:
            self._offsets.append(total)
            total += tree.node_count
        self._total_nodes = total
        self._invalidate_derived_state()
        return removed

    # -- sizes ----------------------------------------------------------------

    @property
    def tree_count(self) -> int:
        return len(self._trees)

    @property
    def node_count(self) -> int:
        return self._total_nodes

    def __len__(self) -> int:
        return self._total_nodes

    # -- tree access ----------------------------------------------------------

    def tree(self, tree_id: int) -> SchemaTree:
        if not 0 <= tree_id < len(self._trees):
            raise UnknownTreeError(tree_id, context=f"repository {self.name!r}")
        return self._trees[tree_id]

    def trees(self) -> Iterator[SchemaTree]:
        return iter(self._trees)

    def tree_offset(self, tree_id: int) -> int:
        """Global id of the first node of ``tree_id``."""
        self.tree(tree_id)
        return self._offsets[tree_id]

    # -- node addressing -------------------------------------------------------

    def global_id(self, tree_id: int, node_id: int) -> int:
        tree = self.tree(tree_id)
        if not tree.has_node(node_id):
            raise UnknownNodeError(node_id, context=f"tree {tree_id} of repository {self.name!r}")
        return self._offsets[tree_id] + node_id

    def ref(self, tree_id: int, node_id: int) -> RepositoryNodeRef:
        return RepositoryNodeRef(
            global_id=self.global_id(tree_id, node_id), tree_id=tree_id, node_id=node_id
        )

    def locate(self, global_id: int) -> RepositoryNodeRef:
        """Translate a global node id back into a (tree, node) reference."""
        if not 0 <= global_id < self._total_nodes:
            raise UnknownNodeError(global_id, context=f"repository {self.name!r}")
        low, high = 0, len(self._offsets) - 1
        while low < high:
            middle = (low + high + 1) // 2
            if self._offsets[middle] <= global_id:
                low = middle
            else:
                high = middle - 1
        tree_id = low
        node_id = global_id - self._offsets[tree_id]
        return RepositoryNodeRef(global_id=global_id, tree_id=tree_id, node_id=node_id)

    def node(self, ref_or_global_id: RepositoryNodeRef | int) -> SchemaNode:
        ref = self.locate(ref_or_global_id) if isinstance(ref_or_global_id, int) else ref_or_global_id
        return self.tree(ref.tree_id).node(ref.node_id)

    def node_refs(self) -> Iterator[RepositoryNodeRef]:
        """Iterate over every node of the repository as a :class:`RepositoryNodeRef`."""
        for tree in self._trees:
            offset = self._offsets[tree.tree_id]
            for node_id in tree.node_ids():
                yield RepositoryNodeRef(global_id=offset + node_id, tree_id=tree.tree_id, node_id=node_id)

    def iter_nodes(self) -> Iterator[Tuple[RepositoryNodeRef, SchemaNode]]:
        for tree in self._trees:
            offset = self._offsets[tree.tree_id]
            for node_id in tree.node_ids():
                yield (
                    RepositoryNodeRef(global_id=offset + node_id, tree_id=tree.tree_id, node_id=node_id),
                    tree.node(node_id),
                )

    # -- queries ----------------------------------------------------------------

    def cached_name_indexes(self) -> Dict[bool, object]:
        """Snapshot of the currently cached name indexes, keyed by case mode.

        The service layer reads this before a mutation so it can derive the
        post-mutation indexes incrementally (see
        :meth:`repro.matchers.index.RepositoryNameIndex.with_tree_added`)
        instead of letting the next query rebuild them from scratch.
        """
        return dict(self._name_index_cache)

    def install_name_index(self, index) -> None:
        """Install an externally built name index into the cache.

        The index must have been built against (or incrementally updated to)
        the repository's current :attr:`version`; installing a stale index
        would silently corrupt every batch matching run, so that is an error.
        """
        if getattr(index, "repository_version", None) != self._version:
            raise SchemaError(
                f"cannot install a name index built for repository version "
                f"{getattr(index, 'repository_version', None)!r} into repository "
                f"{self.name!r} at version {self._version}"
            )
        self._name_index_cache[bool(index.case_sensitive)] = index

    def name_index(self, case_sensitive: bool = False):
        """The repository's cached name index (see :mod:`repro.matchers.index`).

        Groups nodes by (optionally case-folded) name for batch element
        matching; built lazily on first use and invalidated by every mutation
        (:meth:`add_tree` / :meth:`remove_tree`).  Node names are assumed
        stable after insertion —
        renaming a :class:`SchemaNode` in place is not supported and would
        leave this index (and the matcher caches built on it) stale.  Imported
        lazily to keep the schema layer free of a static dependency on the
        matcher layer.
        """
        from repro.matchers.index import RepositoryNameIndex

        return RepositoryNameIndex.for_repository(self, case_sensitive=case_sensitive)

    def find_by_name(self, name: str, case_sensitive: bool = False) -> List[RepositoryNodeRef]:
        """All repository nodes with the given name (served by the name index)."""
        target = name if case_sensitive else name.lower()
        index = self.name_index(case_sensitive=case_sensitive)
        name_id = index.id_for(target)
        return [] if name_id is None else list(index.refs_for_id(name_id))

    def distance(self, first: RepositoryNodeRef, second: RepositoryNodeRef) -> Optional[int]:
        """Tree distance between two repository nodes, ``None`` across trees.

        Nodes in different trees are unreachable from each other — the paper's
        clustering distance treats them as infinitely far apart, so clusters can
        never span trees.
        """
        if first.tree_id != second.tree_id:
            return None
        return self.tree(first.tree_id).distance(first.node_id, second.node_id)

    def summary(self) -> Dict[str, int]:
        """Headline sizes used by reports (trees, nodes, max tree size)."""
        sizes = [tree.node_count for tree in self._trees]
        return {
            "trees": self.tree_count,
            "nodes": self.node_count,
            "largest_tree": max(sizes) if sizes else 0,
            "smallest_tree": min(sizes) if sizes else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaRepository(name={self.name!r}, trees={self.tree_count}, nodes={self.node_count})"

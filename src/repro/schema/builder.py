"""A fluent builder for schema trees.

Personal schemas in the paper are small hand-written trees (e.g. ``book`` with
``title`` and ``author`` children).  ``TreeBuilder`` makes such trees trivial to
express in code and in tests, including a nested-dictionary shorthand.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import SchemaError
from repro.schema.node import DataType, NodeKind, SchemaNode, parse_datatype
from repro.schema.tree import SchemaTree

NestedSpec = Union[str, Mapping[str, Any], Sequence[Any]]


class TreeBuilder:
    """Incrementally build a :class:`SchemaTree`.

    Example
    -------
    >>> builder = TreeBuilder("personal")
    >>> root = builder.root("book")
    >>> _ = builder.child(root, "title", datatype="string")
    >>> _ = builder.child(root, "author")
    >>> tree = builder.build()
    >>> tree.node_count
    3
    """

    def __init__(self, name: str = "schema") -> None:
        self._tree = SchemaTree(name=name)
        self._built = False

    def root(self, name: str, *, kind: NodeKind | str = NodeKind.ELEMENT, datatype: DataType | str | None = None, **properties: Any) -> int:
        """Create the root node and return its node id."""
        node = self._make_node(name, kind, datatype, properties)
        return self._tree.add_root(node).node_id

    def child(self, parent_id: int, name: str, *, kind: NodeKind | str = NodeKind.ELEMENT, datatype: DataType | str | None = None, **properties: Any) -> int:
        """Create a child of ``parent_id`` and return its node id."""
        node = self._make_node(name, kind, datatype, properties)
        return self._tree.add_child(parent_id, node).node_id

    def attribute(self, parent_id: int, name: str, *, datatype: DataType | str | None = None, **properties: Any) -> int:
        """Shorthand for adding an attribute node."""
        return self.child(parent_id, name, kind=NodeKind.ATTRIBUTE, datatype=datatype, **properties)

    def build(self) -> SchemaTree:
        """Finalize and return the tree.  The builder cannot be reused afterwards."""
        if self._built:
            raise SchemaError("TreeBuilder.build() may only be called once")
        if self._tree.node_count == 0:
            raise SchemaError("cannot build an empty schema tree")
        self._built = True
        return self._tree

    @staticmethod
    def _make_node(name: str, kind: NodeKind | str, datatype: DataType | str | None, properties: Mapping[str, Any]) -> SchemaNode:
        if isinstance(datatype, DataType):
            resolved_type = datatype
        else:
            resolved_type = parse_datatype(datatype) if datatype else DataType.UNKNOWN
        resolved_kind = kind if isinstance(kind, NodeKind) else NodeKind(kind)
        return SchemaNode(name=name, kind=resolved_kind, datatype=resolved_type, properties=dict(properties))

    # -- declarative construction ------------------------------------------------

    @classmethod
    def from_nested(cls, spec: Mapping[str, NestedSpec], name: str = "schema") -> SchemaTree:
        """Build a tree from a nested-dictionary specification.

        The specification maps the root name to its children.  Children can be a
        string (leaf), a list of specs, or a mapping for deeper nesting:

        >>> tree = TreeBuilder.from_nested({"book": ["title", {"author": ["name"]}]})
        >>> sorted(tree.names())
        ['author', 'book', 'name', 'title']
        """
        if len(spec) != 1:
            raise SchemaError("a nested tree specification must have exactly one root")
        builder = cls(name=name)
        (root_name, children), = spec.items()
        root_id = builder.root(root_name)
        builder._add_nested_children(root_id, children)
        return builder.build()

    def _add_nested_children(self, parent_id: int, children: NestedSpec | None) -> None:
        if children is None:
            return
        if isinstance(children, str):
            self.child(parent_id, children)
            return
        if isinstance(children, Mapping):
            for child_name, grandchildren in children.items():
                child_id = self.child(parent_id, child_name)
                self._add_nested_children(child_id, grandchildren)
            return
        if isinstance(children, Sequence):
            for entry in children:
                if isinstance(entry, str):
                    self.child(parent_id, entry)
                elif isinstance(entry, Mapping):
                    for child_name, grandchildren in entry.items():
                        child_id = self.child(parent_id, child_name)
                        self._add_nested_children(child_id, grandchildren)
                else:
                    raise SchemaError(f"unsupported nested specification entry: {entry!r}")
            return
        raise SchemaError(f"unsupported nested specification: {children!r}")


def personal_schema(spec: Mapping[str, NestedSpec], name: str = "personal") -> SchemaTree:
    """Convenience wrapper used by examples: build a personal schema from a dict."""
    return TreeBuilder.from_nested(spec, name=name)

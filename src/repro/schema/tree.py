"""Rooted schema trees.

The paper restricts its experiments to XML schemas representable as trees, with
the repository being a forest of such trees.  ``SchemaTree`` is the workhorse
data structure: it stores parent/children relations explicitly, offers the
traversals the matchers and the clusterer need, and identifies every edge by
its *child* node id (each non-root node has exactly one incoming edge), which
makes unions of paths — needed to compute ``|Et|`` of a mapping subtree — cheap
set operations.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SchemaError, UnknownNodeError
from repro.schema.graph import SchemaGraph
from repro.schema.node import DataType, NodeKind, SchemaNode


class SchemaTree:
    """A rooted, ordered tree of :class:`~repro.schema.node.SchemaNode` objects.

    Node ids are assigned consecutively in insertion order (the builder and the
    parsers insert in document order, so ids follow a preorder-like sequence).
    The tree id is ``-1`` until the tree is registered in a
    :class:`~repro.schema.repository.SchemaRepository`.
    """

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self.tree_id: int = -1
        self._nodes: List[SchemaNode] = []
        self._parent: List[int] = []
        self._children: List[List[int]] = []
        self._depth: List[int] = []
        self._root_id: Optional[int] = None

    # -- construction -------------------------------------------------------

    def add_root(self, node: SchemaNode) -> SchemaNode:
        """Install ``node`` as the root.  A tree has exactly one root."""
        if self._root_id is not None:
            raise SchemaError(f"tree {self.name!r} already has a root")
        return self._attach(node, parent_id=-1)

    def add_child(self, parent_id: int, node: SchemaNode) -> SchemaNode:
        """Attach ``node`` as the last child of ``parent_id``."""
        if not self.has_node(parent_id):
            raise UnknownNodeError(parent_id, context=f"schema tree {self.name!r}")
        return self._attach(node, parent_id=parent_id)

    def _attach(self, node: SchemaNode, parent_id: int) -> SchemaNode:
        node.node_id = len(self._nodes)
        self._nodes.append(node)
        self._parent.append(parent_id)
        self._children.append([])
        if parent_id == -1:
            self._root_id = node.node_id
            self._depth.append(0)
        else:
            self._children[parent_id].append(node.node_id)
            self._depth.append(self._depth[parent_id] + 1)
        return node

    def _bulk_attach(self, nodes: Sequence[SchemaNode], parents: Sequence[int]) -> None:
        """Trusted bulk attach (deserialization fast path).

        The caller guarantees the invariants :meth:`add_root`/:meth:`add_child`
        would enforce one node at a time: the tree is empty, exactly the first
        parent is ``-1`` and every other parent precedes its child.  Appending
        to the parallel arrays directly skips ~3 method calls and a bounds
        check per node, which is the difference between repository loading
        being bound by JSON parsing or by Python call overhead.
        """
        if self._nodes:
            raise SchemaError(f"bulk attach requires an empty tree, {self.name!r} has nodes")
        tree_nodes, tree_parent = self._nodes, self._parent
        tree_children, tree_depth = self._children, self._depth
        for node_id, (node, parent_id) in enumerate(zip(nodes, parents)):
            node.node_id = node_id
            tree_nodes.append(node)
            tree_parent.append(parent_id)
            tree_children.append([])
            if parent_id == -1:
                self._root_id = node_id
                tree_depth.append(0)
            else:
                tree_children[parent_id].append(node_id)
                tree_depth.append(tree_depth[parent_id] + 1)

    # -- basic accessors -----------------------------------------------------

    @property
    def root_id(self) -> int:
        if self._root_id is None:
            raise SchemaError(f"tree {self.name!r} has no root")
        return self._root_id

    @property
    def root(self) -> SchemaNode:
        return self._nodes[self.root_id]

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges; in a rooted tree this is ``node_count - 1``."""
        return max(0, len(self._nodes) - 1)

    def has_node(self, node_id: int) -> bool:
        return 0 <= node_id < len(self._nodes)

    def node(self, node_id: int) -> SchemaNode:
        if not self.has_node(node_id):
            raise UnknownNodeError(node_id, context=f"schema tree {self.name!r}")
        return self._nodes[node_id]

    def nodes(self) -> Iterator[SchemaNode]:
        return iter(self._nodes)

    def node_ids(self) -> range:
        return range(len(self._nodes))

    def parent_id(self, node_id: int) -> Optional[int]:
        """Parent node id, or ``None`` for the root."""
        if not self.has_node(node_id):
            raise UnknownNodeError(node_id, context=f"schema tree {self.name!r}")
        parent = self._parent[node_id]
        return None if parent == -1 else parent

    def children_ids(self, node_id: int) -> List[int]:
        if not self.has_node(node_id):
            raise UnknownNodeError(node_id, context=f"schema tree {self.name!r}")
        return list(self._children[node_id])

    def depth(self, node_id: int) -> int:
        """Number of edges from the root (root has depth 0)."""
        if not self.has_node(node_id):
            raise UnknownNodeError(node_id, context=f"schema tree {self.name!r}")
        return self._depth[node_id]

    def is_leaf(self, node_id: int) -> bool:
        return not self._children[node_id]

    def leaves(self) -> List[int]:
        return [node_id for node_id in self.node_ids() if self.is_leaf(node_id)]

    def height(self) -> int:
        """Maximum depth over all nodes (0 for a single-node tree)."""
        if not self._nodes:
            return 0
        return max(self._depth)

    # -- traversals ----------------------------------------------------------

    def preorder(self, start_id: Optional[int] = None) -> Iterator[int]:
        """Depth-first preorder traversal of node ids."""
        if not self._nodes:
            return
        stack = [self.root_id if start_id is None else start_id]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self._children[current]))

    def postorder(self, start_id: Optional[int] = None) -> Iterator[int]:
        """Depth-first postorder traversal of node ids."""
        order = list(self.preorder(start_id))
        visited: List[int] = []
        # Children always appear after their parent in preorder; emitting the
        # reversed "parent before children, right-to-left" preorder yields a
        # valid postorder.
        stack = [self.root_id if start_id is None else start_id]
        while stack:
            current = stack.pop()
            visited.append(current)
            stack.extend(self._children[current])
        return reversed(visited)

    def breadth_first(self) -> Iterator[int]:
        if not self._nodes:
            return
        queue = deque([self.root_id])
        while queue:
            current = queue.popleft()
            yield current
            queue.extend(self._children[current])

    def subtree_ids(self, node_id: int) -> List[int]:
        """All node ids in the subtree rooted at ``node_id`` (inclusive)."""
        return list(self.preorder(node_id))

    def subtree_size(self, node_id: int) -> int:
        return len(self.subtree_ids(node_id))

    # -- ancestry and paths ---------------------------------------------------

    def ancestors(self, node_id: int) -> List[int]:
        """Ancestor ids from parent up to the root (empty for the root)."""
        result = []
        current = self.parent_id(node_id)
        while current is not None:
            result.append(current)
            current = self.parent_id(current)
        return result

    def ancestor_or_self_set(self, node_id: int) -> Set[int]:
        return {node_id, *self.ancestors(node_id)}

    def is_ancestor(self, ancestor_id: int, descendant_id: int) -> bool:
        """True when ``ancestor_id`` lies on the root path of ``descendant_id``."""
        if not self.has_node(ancestor_id):
            raise UnknownNodeError(ancestor_id, context=f"schema tree {self.name!r}")
        current: Optional[int] = descendant_id
        while current is not None:
            if current == ancestor_id:
                return True
            current = self.parent_id(current)
        return False

    def lowest_common_ancestor(self, first_id: int, second_id: int) -> int:
        """Naive LCA by root-path comparison.

        The :mod:`repro.labeling` package provides an O(1) oracle for hot paths;
        this method is the reference implementation used for validation and for
        one-off queries.
        """
        first_path = [first_id, *self.ancestors(first_id)]
        second_ancestors = self.ancestor_or_self_set(second_id)
        for candidate in first_path:
            if candidate in second_ancestors:
                return candidate
        raise SchemaError(
            f"nodes {first_id} and {second_id} of tree {self.name!r} share no ancestor"
        )

    def distance(self, first_id: int, second_id: int) -> int:
        """Path length (number of edges) between two nodes of this tree."""
        lca = self.lowest_common_ancestor(first_id, second_id)
        return self._depth[first_id] + self._depth[second_id] - 2 * self._depth[lca]

    def path_node_ids(self, first_id: int, second_id: int) -> List[int]:
        """Node ids along the unique simple path from ``first_id`` to ``second_id``."""
        lca = self.lowest_common_ancestor(first_id, second_id)
        up: List[int] = []
        current = first_id
        while current != lca:
            up.append(current)
            current = self._parent[current]
        down: List[int] = []
        current = second_id
        while current != lca:
            down.append(current)
            current = self._parent[current]
        return [*up, lca, *reversed(down)]

    def path_edge_ids(self, first_id: int, second_id: int) -> Set[int]:
        """Edges on the path between two nodes, identified by their child node id.

        Every non-root node has exactly one parent edge, so the child node id is
        a canonical edge identifier.  Mapping subtrees (the ``t`` of a schema
        mapping) are unions of such edge sets, which keeps the ``|Et|`` term of
        the objective function exact and cheap.
        """
        nodes = self.path_node_ids(first_id, second_id)
        edges: Set[int] = set()
        for previous, current in zip(nodes, nodes[1:]):
            if self._parent[current] == previous:
                edges.add(current)
            elif self._parent[previous] == current:
                edges.add(previous)
            else:  # pragma: no cover - impossible on a consistent tree
                raise SchemaError(
                    f"nodes {previous} and {current} are not adjacent in tree {self.name!r}"
                )
        return edges

    # -- conversion ----------------------------------------------------------

    def to_graph(self) -> SchemaGraph:
        """Materialize the tree as a general :class:`SchemaGraph` (Definition 1)."""
        graph = SchemaGraph(name=self.name)
        for node in self._nodes:
            graph.add_node(node.copy())
        for node_id in self.node_ids():
            parent = self.parent_id(node_id)
            if parent is not None:
                graph.add_edge(parent, node_id)
        return graph

    def names(self) -> List[str]:
        return [node.name for node in self._nodes]

    def find_by_name(self, name: str, case_sensitive: bool = True) -> List[int]:
        """Node ids whose name matches ``name``."""
        if case_sensitive:
            return [node.node_id for node in self._nodes if node.name == name]
        lowered = name.lower()
        return [node.node_id for node in self._nodes if node.name.lower() == lowered]

    def root_path_names(self, node_id: int) -> List[str]:
        """Names from the root down to ``node_id`` (a human-readable location path)."""
        ids = [node_id, *self.ancestors(node_id)]
        return [self._nodes[i].name for i in reversed(ids)]

    def __len__(self) -> int:
        return self.node_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaTree(name={self.name!r}, nodes={self.node_count})"

"""The general schema graph of the paper's Definition 1.

``SchemaGraph`` implements the quadruple ``PS = (N, E, I, H)``: a set of nodes,
a set of edges, an incidence function associating each edge with its source and
target node, and property bags on nodes and edges.  The rest of the library
works on the :class:`~repro.schema.tree.SchemaTree` specialization (the paper
restricts its experiments to trees), but the graph class is the common
foundation and provides generic path utilities.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownNodeError
from repro.schema.node import SchemaNode


@dataclass
class SchemaEdge:
    """A directed edge between two schema nodes (parent → child in trees).

    The incidence function ``I`` of Definition 1 is realised by the
    ``source_id``/``target_id`` pair.
    """

    edge_id: int
    source_id: int
    target_id: int
    properties: Dict[str, Any] = field(default_factory=dict)

    def endpoints(self) -> Tuple[int, int]:
        return (self.source_id, self.target_id)

    def other(self, node_id: int) -> int:
        """The endpoint that is not ``node_id`` (undirected view of the edge)."""
        if node_id == self.source_id:
            return self.target_id
        if node_id == self.target_id:
            return self.source_id
        raise SchemaError(f"node {node_id} is not an endpoint of edge {self.edge_id}")


class SchemaGraph:
    """A schema graph: nodes, edges, incidence and property functions.

    Nodes are added first and receive consecutive integer ids; edges connect
    existing nodes.  The graph view is *undirected* for path purposes (the
    paper's paths are alternating node/edge sequences irrespective of edge
    direction) while each edge still remembers its source and target.
    """

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._nodes: List[SchemaNode] = []
        self._edges: List[SchemaEdge] = []
        self._adjacency: Dict[int, List[int]] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, node: SchemaNode) -> SchemaNode:
        """Attach ``node`` to the graph, assigning the next node id."""
        if node.node_id != -1 and node.node_id < len(self._nodes):
            existing = self._nodes[node.node_id] if node.node_id < len(self._nodes) else None
            if existing is node:
                return node
        node.node_id = len(self._nodes)
        self._nodes.append(node)
        self._adjacency[node.node_id] = []
        return node

    def add_edge(self, source_id: int, target_id: int, **properties: Any) -> SchemaEdge:
        """Connect two existing nodes; returns the new :class:`SchemaEdge`."""
        for node_id in (source_id, target_id):
            if not self.has_node(node_id):
                raise UnknownNodeError(node_id, context=f"schema graph {self.name!r}")
        if source_id == target_id:
            raise SchemaError(f"self-loop on node {source_id} is not a valid schema edge")
        edge = SchemaEdge(edge_id=len(self._edges), source_id=source_id, target_id=target_id, properties=dict(properties))
        self._edges.append(edge)
        self._adjacency[source_id].append(edge.edge_id)
        self._adjacency[target_id].append(edge.edge_id)
        return edge

    # -- inspection ---------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def has_node(self, node_id: int) -> bool:
        return 0 <= node_id < len(self._nodes)

    def node(self, node_id: int) -> SchemaNode:
        if not self.has_node(node_id):
            raise UnknownNodeError(node_id, context=f"schema graph {self.name!r}")
        return self._nodes[node_id]

    def nodes(self) -> Iterator[SchemaNode]:
        return iter(self._nodes)

    def edge(self, edge_id: int) -> SchemaEdge:
        if not 0 <= edge_id < len(self._edges):
            raise SchemaError(f"edge id {edge_id} is not part of schema graph {self.name!r}")
        return self._edges[edge_id]

    def edges(self) -> Iterator[SchemaEdge]:
        return iter(self._edges)

    def incident_edges(self, node_id: int) -> List[SchemaEdge]:
        if not self.has_node(node_id):
            raise UnknownNodeError(node_id, context=f"schema graph {self.name!r}")
        return [self._edges[eid] for eid in self._adjacency[node_id]]

    def neighbors(self, node_id: int) -> List[int]:
        return [edge.other(node_id) for edge in self.incident_edges(node_id)]

    def degree(self, node_id: int) -> int:
        return len(self._adjacency.get(node_id, []))

    def nodes_by_name(self, name: str) -> List[SchemaNode]:
        """All nodes whose name equals ``name`` exactly (case-sensitive)."""
        return [node for node in self._nodes if node.name == name]

    # -- paths ---------------------------------------------------------------

    def shortest_path(self, source_id: int, target_id: int) -> Optional[List[int]]:
        """Node-id sequence of a shortest path, or ``None`` if disconnected.

        Breadth-first search over the undirected view; adequate for the graph
        sizes handled here (the tree specialization overrides distance queries
        with the O(1) labeling oracle).
        """
        for node_id in (source_id, target_id):
            if not self.has_node(node_id):
                raise UnknownNodeError(node_id, context=f"schema graph {self.name!r}")
        if source_id == target_id:
            return [source_id]
        previous: Dict[int, int] = {source_id: source_id}
        queue = deque([source_id])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor in previous:
                    continue
                previous[neighbor] = current
                if neighbor == target_id:
                    path = [neighbor]
                    while path[-1] != source_id:
                        path.append(previous[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbor)
        return None

    def path_length(self, source_id: int, target_id: int) -> Optional[int]:
        """Number of edges on a shortest path, or ``None`` if disconnected."""
        path = self.shortest_path(source_id, target_id)
        if path is None:
            return None
        return len(path) - 1

    def connected_components(self) -> List[List[int]]:
        """Node-id lists of the graph's connected components (undirected)."""
        seen: set[int] = set()
        components: List[List[int]] = []
        for node in self._nodes:
            if node.node_id in seen:
                continue
            component: List[int] = []
            queue = deque([node.node_id])
            seen.add(node.node_id)
            while queue:
                current = queue.popleft()
                component.append(current)
                for neighbor in self.neighbors(current):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
            components.append(sorted(component))
        return components

    def is_tree(self) -> bool:
        """True when the graph is connected and acyclic (|E| = |N| - 1)."""
        if self.node_count == 0:
            return False
        return self.edge_count == self.node_count - 1 and len(self.connected_components()) == 1

    # -- misc ----------------------------------------------------------------

    def subgraph_nodes(self, node_ids: Iterable[int]) -> "SchemaGraph":
        """A new graph induced by ``node_ids`` (edges with both endpoints inside)."""
        wanted = set(node_ids)
        for node_id in wanted:
            if not self.has_node(node_id):
                raise UnknownNodeError(node_id, context=f"schema graph {self.name!r}")
        sub = SchemaGraph(name=f"{self.name}:subgraph")
        id_map: Dict[int, int] = {}
        for node_id in sorted(wanted):
            clone = self._nodes[node_id].copy()
            sub.add_node(clone)
            id_map[node_id] = clone.node_id
        for edge in self._edges:
            if edge.source_id in wanted and edge.target_id in wanted:
                sub.add_edge(id_map[edge.source_id], id_map[edge.target_id], **edge.properties)
        return sub

    def __len__(self) -> int:
        return self.node_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaGraph(name={self.name!r}, nodes={self.node_count}, edges={self.edge_count})"
